//! The CLI subcommands.

use std::fmt::Write as _;

use culpeo::termination;
use culpeo::{compose, pg, PowerSystemModel};
use culpeo_analyze::{AnalysisInput, PlanSpec, Registry, TraceInput};
use culpeo_capbank::Catalog;
use culpeo_loadgen::{io as trace_io, CurrentTrace};
use culpeo_units::{Farads, Volts};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Command-line usage problem.
    Usage(String),
    /// A file could not be read.
    Io(String, std::io::Error),
    /// A trace file failed to parse.
    Trace(String, trace_io::ParseTraceError),
    /// The system spec failed to parse or validate.
    Spec(String),
}

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(path, e) => write!(f, "cannot read {path}: {e}"),
            CliError::Trace(path, e) => write!(f, "bad trace {path}: {e}"),
            CliError::Spec(msg) => write!(f, "bad system spec: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Loads the power-system model from an optional `--system` JSON path
/// (defaulting to the Capybara reference spec).
pub fn load_model(system_path: Option<&str>) -> Result<PowerSystemModel, CliError> {
    let spec = match system_path {
        None => crate::spec::SystemSpec::capybara(),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| CliError::Io(path.to_string(), e))?;
            serde_json::from_str(&text).map_err(|e| CliError::Spec(e.to_string()))?
        }
    };
    spec.into_model().map_err(|e| CliError::Spec(e.to_string()))
}

/// Loads one trace CSV.
pub fn load_trace(path: &str) -> Result<CurrentTrace, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.to_string(), e))?;
    trace_io::from_csv(&text).map_err(|e| CliError::Trace(path.to_string(), e))
}

/// Output format for the lint report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintFormat {
    /// Rustc-style text, coloured when stdout is a terminal.
    Human,
    /// The versioned JSON document (`--format json`).
    Json,
}

/// `culpeo lint SPEC.json [--trace FILE]… [--plan FILE] [--format json]
/// [--deny-warnings]` — the static lint battery. Returns the rendered
/// report and the exit code: 1 when any error-severity diagnostic fired
/// (or, under `--deny-warnings`, any warning), 0 otherwise.
pub fn lint(
    spec_path: &str,
    trace_paths: &[String],
    plan_path: Option<&str>,
    format: LintFormat,
    deny_warnings: bool,
) -> Result<(String, i32), CliError> {
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| CliError::Io(spec_path.to_string(), e))?;
    let spec: culpeo_analyze::SystemSpec =
        serde_json::from_str(&text).map_err(|e| CliError::Spec(e.to_string()))?;

    let mut traces = Vec::new();
    for path in trace_paths {
        let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.clone(), e))?;
        let raw = trace_io::parse_raw(&text).map_err(|e| CliError::Trace(path.clone(), e))?;
        traces.push(TraceInput::from_raw_file(path.clone(), &raw));
    }

    let plan: Option<PlanSpec> = match plan_path {
        None => None,
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| CliError::Io(path.to_string(), e))?;
            Some(serde_json::from_str(&text).map_err(|e| CliError::Spec(e.to_string()))?)
        }
    };

    let input = AnalysisInput {
        spec: &spec,
        spec_locus: spec_path,
        traces: &traces,
        plan: plan.as_ref(),
        plan_locus: plan_path.unwrap_or("plan"),
    };
    let report = Registry::default_battery().run(&input);
    let rendered = match format {
        LintFormat::Json => {
            // Schema-2 CLI envelope: the schema-1 report document rides
            // in `data`, same as the daemon's `/v1/lint` answer minus
            // the per-request fields (`request_id`, `server_timing`).
            let mut doc = culpeo_api::cli_envelope(&report.render_json());
            doc.push('\n');
            doc
        }
        LintFormat::Human => {
            use std::io::IsTerminal as _;
            let mut out = report.render_human(std::io::stdout().is_terminal());
            if report.is_clean() {
                out = format!("no diagnostics: {spec_path} is clean\n{out}");
            }
            out
        }
    };
    let failing = report.has_errors() || (deny_warnings && report.warning_count() > 0);
    Ok((rendered, i32::from(failing)))
}

/// `culpeo verify SPEC.json --plan PLAN.json [--format json|human]` —
/// sound whole-schedule verification through the `culpeo-verify`
/// abstract interpreter. Exit code 0 only for a proof; `refuted` and
/// `unknown` both exit 1 (same contract as `lint`: a clean exit means
/// the schedule is safe to ship).
pub fn verify(
    spec_path: &str,
    plan_path: &str,
    format: LintFormat,
) -> Result<(String, i32), CliError> {
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| CliError::Io(spec_path.to_string(), e))?;
    let spec: culpeo_analyze::SystemSpec =
        serde_json::from_str(&text).map_err(|e| CliError::Spec(e.to_string()))?;
    let text =
        std::fs::read_to_string(plan_path).map_err(|e| CliError::Io(plan_path.to_string(), e))?;
    let plan: PlanSpec = serde_json::from_str(&text).map_err(|e| CliError::Spec(e.to_string()))?;

    let outcome = culpeo_verify::verify_plan(&spec, &plan);
    let code = i32::from(culpeo_verify::exit_code(&outcome.verdict) != 0);
    let rendered = match format {
        LintFormat::Json => {
            let body = serde_json::to_string(&culpeo_verify::to_response(&outcome))
                .map_err(|e| CliError::Spec(e.to_string()))?;
            let mut doc = culpeo_api::cli_envelope(&body);
            doc.push('\n');
            doc
        }
        LintFormat::Human => render_verify_human(&outcome, plan_path),
    };
    Ok((rendered, code))
}

/// Human rendering for a verification outcome: one verdict line, the
/// witness or blocking interval, then the C04x findings.
fn render_verify_human(outcome: &culpeo_verify::VerifyOutcome, plan_path: &str) -> String {
    use culpeo_verify::Verdict;
    let mut out = String::new();
    match &outcome.verdict {
        Verdict::Proved => {
            let _ = writeln!(
                out,
                "verify: proved — Theorem 1 holds for every launch of every cycle \
                 ({} fixpoint iteration{})",
                outcome.iterations,
                if outcome.iterations == 1 { "" } else { "s" }
            );
        }
        Verdict::Refuted(cex) => {
            let _ = writeln!(
                out,
                "verify: REFUTED — certain exhaustion in cycle {} even under best-case \
                 physics; counterexample (from V_start = {}):",
                cex.cycle, cex.v_start
            );
            for (i, l) in cex.prefix.iter().enumerate() {
                let marker = if i == cex.failing_launch {
                    " <- browns out"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "  t=+{:.3}s {} ({} mJ, V_δ {} V){marker}",
                    l.start_s, l.task, l.energy_mj, l.v_delta
                );
            }
            let _ = writeln!(
                out,
                "  predicted best-case voltage after the failing task: {}",
                cex.v_predicted
            );
        }
        Verdict::Unknown(imp) => {
            let _ = writeln!(
                out,
                "verify: unknown ({}) — cannot prove or refute {plan_path} at this precision",
                imp.kind.tag()
            );
        }
    }
    for f in &outcome.findings {
        let _ = writeln!(
            out,
            "{} {}: {}: {}",
            f.code,
            if f.error { "error" } else { "warning" },
            f.locus,
            f.message
        );
        if let Some(help) = &f.help {
            let _ = writeln!(out, "  help: {help}");
        }
    }
    out
}

/// `culpeo wcec SPEC.json --tasks TASKS.json [--format json|human]` —
/// static worst-case energy certification through the `culpeo-wcec`
/// abstract interpreter. Every task graph in the tasks file gets either
/// a certificate (sound energy/latency interval, worst-case ESR dip on
/// the spec's R_max) or an `unknown` verdict naming the blocking node.
/// Exit code 0 only when every task certifies; any `unknown` exits 1.
pub fn wcec(
    spec_path: &str,
    tasks_path: &str,
    format: LintFormat,
) -> Result<(String, i32), CliError> {
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| CliError::Io(spec_path.to_string(), e))?;
    let spec: culpeo_analyze::SystemSpec =
        serde_json::from_str(&text).map_err(|e| CliError::Spec(e.to_string()))?;
    let model = spec
        .into_model()
        .map_err(|e| CliError::Spec(e.to_string()))?;
    let text =
        std::fs::read_to_string(tasks_path).map_err(|e| CliError::Io(tasks_path.to_string(), e))?;
    let req: culpeo_api::WcecRequest =
        serde_json::from_str(&text).map_err(|e| CliError::Spec(e.to_string()))?;
    if let Some(v) = req.schema_version {
        if v != culpeo_api::SCHEMA_VERSION {
            return Err(CliError::Spec(format!(
                "tasks file declares schema_version {v}, this build speaks {}",
                culpeo_api::SCHEMA_VERSION
            )));
        }
    }
    let response = culpeo_wcec::run_graphs(Some(&model), &req.tasks)
        .map_err(|e| CliError::Spec(e.to_string()))?;
    let code = i32::from(response.exit_code != 0);
    let rendered = match format {
        LintFormat::Json => {
            let body =
                serde_json::to_string(&response).map_err(|e| CliError::Spec(e.to_string()))?;
            let mut doc = culpeo_api::cli_envelope(&body);
            doc.push('\n');
            doc
        }
        LintFormat::Human => render_wcec_human(&response),
    };
    Ok((rendered, code))
}

/// Human rendering for a WCEC run: one row per task, then the tally.
fn render_wcec_human(response: &culpeo_api::WcecResponse) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>22} {:>12} {:>8} {:>8}",
        "task", "verdict", "energy (mJ)", "latency (s)", "V_δ (V)", "paths"
    );
    for row in &response.tasks {
        if let Some(cert) = &row.certificate {
            let _ = writeln!(
                out,
                "{:<16} {:>10} {:>22} {:>12} {:>8} {:>8}",
                row.task,
                row.status,
                format!("[{:.3}, {:.3}]", cert.energy_mj_lo, cert.energy_mj_hi),
                format!("{:.3}", cert.time_s_hi),
                cert.v_delta_v
                    .map_or_else(|| "-".to_string(), |v| format!("{v:.3}")),
                cert.paths
            );
        } else {
            let _ = writeln!(
                out,
                "{:<16} {:>10}   blocked at {}: {}",
                row.task,
                row.status,
                row.blocking.as_deref().unwrap_or("?"),
                row.reason.as_deref().unwrap_or("unknown")
            );
        }
    }
    let _ = writeln!(
        out,
        "----\nwcec: {} certified, {} unknown",
        response.certified, response.unknown
    );
    out
}

/// `culpeo vsafe --trace t.csv [--system spec.json]` — the core report:
/// ESR-aware `V_safe` for one task, alongside the energy-only number.
///
/// The rendering lives in [`culpeo_served::handle::vsafe_report`], shared
/// with the daemon's `/v1/vsafe` endpoint — the two surfaces are
/// byte-identical by construction, not by discipline.
pub fn vsafe(model: &PowerSystemModel, trace: &CurrentTrace) -> String {
    culpeo_served::handle::vsafe_report(model, trace)
}

/// `culpeo serve [--port P] [--workers N] …` — runs the batch analysis
/// daemon until a client POSTs `/v1/shutdown`. Prints the bound address
/// up front (flushed, so wrapper scripts can scrape the port) and returns
/// a drain summary as the report text.
pub fn serve(config: &culpeo_served::ServerConfig) -> Result<(String, i32), CliError> {
    let server = culpeo_served::Server::start(config)
        .map_err(|e| CliError::Io(format!("{}:{}", config.host, config.port), e))?;
    println!("culpeo-served listening on http://{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let summary = server.join();
    Ok((
        format!(
            "culpeo-served drained: {} requests answered, {} cache hits\n",
            summary.requests, summary.cache_hits
        ),
        0,
    ))
}

/// `culpeo store recover DIR [--format json|human]` — runs crash
/// recovery on a telemetry store directory: truncates the torn tail a
/// `kill -9` left behind, quarantines CRC-corrupt segments, and reports
/// what survived. Idempotent — safe to run on a healthy directory.
pub fn store_recover(dir: &str, format: LintFormat) -> Result<(String, i32), CliError> {
    let report =
        culpeo_store::recover(std::path::Path::new(dir)).map_err(|e| store_error(dir, &e))?;
    let rendered = match format {
        LintFormat::Json => {
            let mut doc =
                serde_json::to_string(&report).map_err(|e| CliError::Spec(e.to_string()))?;
            doc.push('\n');
            doc
        }
        LintFormat::Human => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "store recover: {} records over {} segments ({} devices), {} live bytes",
                report.records_recovered,
                report.segments_scanned,
                report.devices,
                report.live_bytes
            );
            let _ = writeln!(
                out,
                "  torn tail truncated: {} bytes",
                report.truncated_bytes
            );
            if report.quarantined.is_empty() {
                let _ = writeln!(out, "  quarantined segments: none");
            } else {
                let _ = writeln!(
                    out,
                    "  quarantined segments: {}",
                    report.quarantined.join(", ")
                );
            }
            out
        }
    };
    Ok((rendered, 0))
}

/// `culpeo store stat DIR [--format json|human]` — read-only scan: what
/// a recovery *would* do. Exits 1 when the directory needs one (a torn
/// tail or a corrupt segment is present), 0 when it is clean — so
/// `store recover && store stat` proves recovery converged.
pub fn store_stat(dir: &str, format: LintFormat) -> Result<(String, i32), CliError> {
    let stat = culpeo_store::scan(std::path::Path::new(dir)).map_err(|e| store_error(dir, &e))?;
    let dirty = stat.torn_bytes > 0 || !stat.corrupt_segments.is_empty();
    let rendered = match format {
        LintFormat::Json => {
            let mut doc =
                serde_json::to_string(&stat).map_err(|e| CliError::Spec(e.to_string()))?;
            doc.push('\n');
            doc
        }
        LintFormat::Human => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "store stat: {} records over {} live segments ({} devices), {} live bytes",
                stat.records, stat.segments, stat.devices, stat.live_bytes
            );
            let _ = writeln!(out, "  torn bytes awaiting recovery: {}", stat.torn_bytes);
            let _ = writeln!(
                out,
                "  segments a recovery would quarantine: {}",
                if stat.corrupt_segments.is_empty() {
                    "none".to_string()
                } else {
                    stat.corrupt_segments.join(", ")
                }
            );
            if !stat.quarantined.is_empty() {
                let _ = writeln!(
                    out,
                    "  already quarantined: {}",
                    stat.quarantined.join(", ")
                );
            }
            let _ = writeln!(
                out,
                "  verdict: {}",
                if dirty { "NEEDS RECOVERY" } else { "clean" }
            );
            out
        }
    };
    Ok((rendered, i32::from(dirty)))
}

/// `culpeo store fill DIR --records N [--seed S]` — appends `N` seeded,
/// acked-durable observation records (the `culpeo-faults` seeded stream,
/// so the bytes are a pure function of the seed). `scripts/store.sh`
/// byte-compares two fills of the same seed and tears one apart.
pub fn store_fill(dir: &str, records: u64, seed: u64) -> Result<(String, i32), CliError> {
    let config = culpeo_store::StoreConfig::default();
    let (store, _) = culpeo_store::Store::open(std::path::Path::new(dir), config)
        .map_err(|e| store_error(dir, &e))?;
    let records = usize::try_from(records)
        .map_err(|_| CliError::Usage("--records is out of range".into()))?;
    for (device, vs, vm, vf) in culpeo_faults::store::seeded_triples(seed, records) {
        store
            .append(device, vs, vm, vf)
            .map_err(|e| store_error(dir, &e))?;
    }
    store.sync().map_err(|e| store_error(dir, &e))?;
    let durable = store.durable_bytes();
    Ok((
        format!("store fill: {records} records durable in {dir} ({durable} bytes)\n"),
        0,
    ))
}

/// Maps a store failure onto the CLI error surface.
fn store_error(dir: &str, e: &culpeo_store::StoreError) -> CliError {
    CliError::Io(dir.to_string(), std::io::Error::other(e.to_string()))
}

/// `culpeo chaos [--seed N] [--threads N] [--format json|human]` — runs
/// the seeded `culpeo-faults` battery across all four fault levels and
/// exits 1 if any scenario fails. For a given seed the report is
/// byte-identical across runs and thread counts.
pub fn chaos(seed: u64, sweep: &culpeo_exec::Sweep, format: LintFormat) -> (String, i32) {
    let report = culpeo_faults::run_battery(seed, sweep);
    let rendered = match format {
        LintFormat::Json => {
            let mut doc = report.render_json();
            doc.push('\n');
            doc
        }
        LintFormat::Human => report.render_table(),
    };
    (rendered, i32::from(!report.all_passed()))
}

/// `culpeo race [--preemptions N] [--seed N] [--format json|human]` —
/// runs the `culpeo-race` interleaving battery: every protocol invariant
/// model-checked up to the preemption bound, every mutant refuted. Exits
/// 0 only when all invariants hold AND all mutants are caught.
///
/// The report depends only on `(seed, preemptions)` — no wall-clock
/// leaks into it — so both output formats are byte-identical across
/// runs; `scripts/race.sh` gates on exactly that.
pub fn race(config: &culpeo_race::battery::BatteryConfig, format: LintFormat) -> (String, i32) {
    let report = culpeo_race::battery::run(config);
    let rendered = match format {
        LintFormat::Json => {
            let mut doc = serde_json::to_string_pretty(&report).expect("battery report serialises");
            doc.push('\n');
            doc
        }
        LintFormat::Human => culpeo_race::battery::render_table(&report),
    };
    (rendered, i32::from(!report.passed()))
}

/// `culpeo check --trace a.csv --trace b.csv …` — per-task verdicts plus
/// the composed `V_safe_multi` for running the tasks back-to-back.
///
/// The per-trace `V_safe` estimates are independent, so they fan out over
/// `sweep`; the report is assembled serially in input order afterwards, so
/// the output text is identical at any thread count.
pub fn check(
    model: &PowerSystemModel,
    traces: &[(String, CurrentTrace)],
    sweep: &culpeo_exec::Sweep,
) -> String {
    let estimates = sweep.map(traces, |_, (_, trace)| pg::compute_vsafe(trace, model));
    let mut out = String::new();
    let mut reqs = Vec::new();
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>12} {:>14}",
        "task", "V_safe", "ESR drop", "verdict"
    );
    for ((path, _), est) in traces.iter().zip(&estimates) {
        let headroom = model.v_high() - est.v_safe;
        let verdict = if headroom >= termination::MARGIN {
            "ok"
        } else if headroom.get() >= 0.0 {
            "marginal"
        } else {
            "NON-TERMINATING"
        };
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>12} {:>14}",
            trimmed(path),
            format!("{}", est.v_safe),
            format!("{}", est.v_delta),
            verdict
        );
        reqs.push(compose::TaskRequirement::from_estimate(est));
    }
    let multi = compose::vsafe_multi(&reqs, model.capacitance(), model.v_off());
    let _ = writeln!(out, "----");
    let _ = writeln!(out, "V_safe_multi (whole sequence, one discharge): {multi}");
    if multi > model.v_high() {
        let _ = writeln!(
            out,
            "  the sequence does NOT fit in one discharge; schedule a recharge"
        );
    }
    out
}

/// `culpeo catalog [--capacitance-mf 45]` — the Figure 3 shortlist: the
/// smallest bank of each technology and whether each could be practical.
pub fn catalog(capacitance_mf: f64) -> Result<String, CliError> {
    if !(capacitance_mf.is_finite() && capacitance_mf > 0.0) {
        return Err(CliError::Usage("--capacitance-mf must be positive".into()));
    }
    let target = Farads::from_milli(capacitance_mf);
    let catalog = Catalog::synthetic();
    let mut out = String::new();
    let _ = writeln!(out, "smallest {capacitance_mf} mF bank per technology:");
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>14} {:>12} {:>12}",
        "technology", "parts", "volume (mm³)", "ESR (Ω)", "DCL (A)"
    );
    for bank in catalog.smallest_per_technology(target) {
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>14.1} {:>12.4} {:>12.3e}",
            bank.technology().label(),
            bank.part_count(),
            bank.volume().get(),
            bank.esr().get(),
            bank.leakage().get()
        );
    }
    Ok(out)
}

/// `culpeo vsafe-table --trace t.csv` — `V_safe` across starting states:
/// how far down the operating range the task can still be dispatched,
/// printed as a small sweep for scheduler tuning.
pub fn vsafe_table(model: &PowerSystemModel, trace: &CurrentTrace) -> String {
    let est = pg::compute_vsafe(trace, model);
    let mut out = String::new();
    let _ = writeln!(out, "dispatch table for {}:", trace.label());
    let _ = writeln!(out, "{:>10} {:>12}", "V_now", "dispatch?");
    let lo = model.v_off().get();
    let hi = model.v_high().get();
    for k in 0..=8 {
        let v = Volts::new(lo + (hi - lo) * f64::from(k) / 8.0);
        let _ = writeln!(
            out,
            "{:>10} {:>12}",
            format!("{v}"),
            if v >= est.v_safe { "yes" } else { "wait" }
        );
    }
    let _ = writeln!(out, "threshold: {}", est.v_safe);
    out
}

fn trimmed(path: &str) -> String {
    std::path::Path::new(path)
        .file_name()
        .map_or_else(|| path.to_string(), |f| f.to_string_lossy().into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_loadgen::synthetic::PulseLoad;
    use culpeo_units::{Amps, Hertz, Seconds};

    fn model() -> PowerSystemModel {
        crate::spec::SystemSpec::capybara().into_model().unwrap()
    }

    fn trace() -> CurrentTrace {
        PulseLoad::new(Amps::from_milli(25.0), Seconds::from_milli(10.0))
            .profile()
            .sample(Hertz::new(125_000.0))
    }

    #[test]
    fn vsafe_report_contains_key_lines() {
        let report = vsafe(&model(), &trace());
        assert!(report.contains("V_safe (Culpeo-PG)"));
        assert!(report.contains("ESR-blind shortfall"));
        assert!(report.contains("termination: OK"));
    }

    #[test]
    fn check_reports_sequence_threshold() {
        let t = trace();
        let report = check(
            &model(),
            &[("a.csv".into(), t.clone()), ("b.csv".into(), t)],
            &culpeo_exec::Sweep::serial(),
        );
        assert!(report.contains("V_safe_multi"));
        assert!(report.matches("ok").count() >= 2);
    }

    #[test]
    fn check_report_is_identical_at_any_thread_count() {
        let t = trace();
        let traces: Vec<(String, CurrentTrace)> =
            (0..4).map(|i| (format!("t{i}.csv"), t.clone())).collect();
        let serial = check(&model(), &traces, &culpeo_exec::Sweep::serial());
        let parallel = check(&model(), &traces, &culpeo_exec::Sweep::with_threads(4));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn catalog_lists_all_four_technologies() {
        let report = catalog(45.0).unwrap();
        for tech in ["Electrolytic", "Ceramic", "Tantalum", "Supercapacitors"] {
            assert!(report.contains(tech), "missing {tech}");
        }
    }

    #[test]
    fn catalog_rejects_nonsense() {
        assert!(catalog(-1.0).is_err());
    }

    #[test]
    fn vsafe_table_has_both_outcomes() {
        let report = vsafe_table(&model(), &trace());
        assert!(report.contains("yes"));
        assert!(report.contains("wait"));
    }

    #[test]
    fn load_model_default_is_capybara() {
        let m = load_model(None).unwrap();
        assert!(m.capacitance().approx_eq(Farads::from_milli(45.0), 1e-12));
    }

    #[test]
    fn load_trace_round_trip_via_tempfile() {
        let t = trace();
        let dir = std::env::temp_dir().join("culpeo-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, culpeo_loadgen::io::to_csv(&t)).unwrap();
        let loaded = load_trace(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded.len(), t.len());
        std::fs::remove_file(path).ok();
    }
}

//! `culpeo` — command-line ESR-aware charge analysis.
//!
//! ```text
//! culpeo analyze --trace packet.csv [--system spec.json]
//! culpeo analyze spec.json [--trace packet.csv]… [--plan plan.json] [--format json]
//! culpeo check   --trace a.csv --trace b.csv [--system spec.json] [--threads N]
//! culpeo vsafe-table --trace packet.csv [--system spec.json]
//! culpeo catalog [--capacitance-mf 45]
//! culpeo export-example-trace packet.csv
//! ```
//!
//! The two `analyze` forms share a name but answer different questions.
//! `analyze --trace` is the original `V_safe` report for one task.
//! `analyze SPEC.json` (a positional spec path) runs the *static lint
//! battery* from `culpeo-analyze` over the spec and any `--trace` /
//! `--plan` inputs, printing rustc-style `C0xx` diagnostics (or a JSON
//! report with `--format json`) and exiting 1 if any error fired.
//!
//! Trace CSVs follow the `culpeo-trace v1` dialect (see
//! `culpeo_loadgen::io`); the system spec JSON is documented on
//! [`spec::SystemSpec`]. With no `--system`, the simulated Capybara
//! reference configuration is used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commands;
mod spec;

use commands::{CliError, LintFormat};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok((report, code)) => {
            print!("{report}");
            std::process::exit(code);
        }
        Err(e) => {
            eprintln!("culpeo: {e}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  culpeo analyze --trace FILE [--system SPEC.json]\n  \
     culpeo analyze SPEC.json [--trace FILE…] [--plan PLAN.json] [--format json|human]\n  \
     culpeo check --trace FILE [--trace FILE…] [--system SPEC.json] [--threads N]\n  \
     culpeo vsafe-table --trace FILE [--system SPEC.json]\n  \
     culpeo catalog [--capacitance-mf MF]\n  \
     culpeo export-example-trace OUT.csv"
}

/// Dispatches a parsed argument vector; separated from `main` for tests.
/// Returns the report text and the process exit code (0 or 1; usage and
/// I/O failures surface as `Err` and exit 2).
fn run(args: &[String]) -> Result<(String, i32), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("no command given".into()));
    };
    let rest = &args[1..];
    match command.as_str() {
        // Lint mode: a positional (non-flag) first argument is the spec.
        "analyze" if rest.first().is_some_and(|a| !a.starts_with("--")) => {
            let (spec_path, lint_rest) = (rest[0].as_str(), &rest[1..]);
            let mut traces = Vec::new();
            let mut plan = None;
            let mut format = LintFormat::Human;
            let mut it = lint_rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--trace" => traces.push(
                        it.next()
                            .ok_or_else(|| CliError::Usage("--trace needs a path".into()))?
                            .clone(),
                    ),
                    "--plan" => {
                        plan = Some(
                            it.next()
                                .ok_or_else(|| CliError::Usage("--plan needs a path".into()))?
                                .clone(),
                        );
                    }
                    "--format" => {
                        format = match it.next().map(String::as_str) {
                            Some("json") => LintFormat::Json,
                            Some("human") => LintFormat::Human,
                            _ => {
                                return Err(CliError::Usage(
                                    "--format takes `json` or `human`".into(),
                                ))
                            }
                        };
                    }
                    other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
                }
            }
            commands::lint(spec_path, &traces, plan.as_deref(), format)
        }
        "analyze" => {
            let (traces, system) = parse_common(rest)?;
            let [trace] = traces.as_slice() else {
                return Err(CliError::Usage("analyze takes exactly one --trace".into()));
            };
            let model = commands::load_model(system.as_deref())?;
            let t = commands::load_trace(trace)?;
            Ok((commands::analyze(&model, &t), 0))
        }
        "check" => {
            let (trace_paths, system, threads) = parse_check(rest)?;
            if trace_paths.is_empty() {
                return Err(CliError::Usage("check needs at least one --trace".into()));
            }
            // Explicit --threads wins; otherwise CULPEO_THREADS, then serial.
            let sweep = threads.map_or_else(culpeo_exec::Sweep::from_env, |n| {
                culpeo_exec::Sweep::with_threads(n)
            });
            let model = commands::load_model(system.as_deref())?;
            let mut traces = Vec::new();
            for path in trace_paths {
                let t = commands::load_trace(&path)?;
                traces.push((path, t));
            }
            Ok((commands::check(&model, &traces, &sweep), 0))
        }
        "vsafe-table" => {
            let (traces, system) = parse_common(rest)?;
            let [trace] = traces.as_slice() else {
                return Err(CliError::Usage(
                    "vsafe-table takes exactly one --trace".into(),
                ));
            };
            let model = commands::load_model(system.as_deref())?;
            let t = commands::load_trace(trace)?;
            Ok((commands::vsafe_table(&model, &t), 0))
        }
        "catalog" => {
            let mf = parse_flag_value(rest, "--capacitance-mf")?.map_or(Ok(45.0), |v| {
                v.parse::<f64>()
                    .map_err(|_| CliError::Usage("--capacitance-mf must be a number".into()))
            })?;
            commands::catalog(mf).map(|report| (report, 0))
        }
        "export-example-trace" => {
            let [out] = rest else {
                return Err(CliError::Usage(
                    "export-example-trace takes one output path".into(),
                ));
            };
            let trace = culpeo_loadgen::peripheral::BleRadio::default()
                .profile()
                .sample(culpeo_units::Hertz::new(125_000.0));
            let csv = culpeo_loadgen::io::to_csv(&trace);
            std::fs::write(out, csv).map_err(|e| CliError::Io(out.clone(), e))?;
            Ok((format!("wrote example BLE trace to {out}\n"), 0))
        }
        other => Err(CliError::Usage(format!("unknown command: {other}"))),
    }
}

/// Parses repeated `--trace` flags and an optional `--system`.
fn parse_common(args: &[String]) -> Result<(Vec<String>, Option<String>), CliError> {
    let mut traces = Vec::new();
    let mut system = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--trace needs a path".into()))?;
                traces.push(value.clone());
            }
            "--system" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--system needs a path".into()))?;
                system = Some(value.clone());
            }
            other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
        }
    }
    Ok((traces, system))
}

/// `check`'s parsed flags: trace paths, optional `--system` path, optional
/// `--threads` worker count.
type CheckArgs = (Vec<String>, Option<String>, Option<usize>);

/// Parses `check`'s flags: repeated `--trace`, optional `--system`, and an
/// optional `--threads N` worker count for the per-trace sweep.
fn parse_check(args: &[String]) -> Result<CheckArgs, CliError> {
    let mut traces = Vec::new();
    let mut system = None;
    let mut threads = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--trace needs a path".into()))?;
                traces.push(value.clone());
            }
            "--system" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--system needs a path".into()))?;
                system = Some(value.clone());
            }
            "--threads" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--threads needs a count".into()))?;
                threads = Some(value.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(
                    || CliError::Usage("--threads must be a positive integer".into()),
                )?);
            }
            other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
        }
    }
    Ok((traces, system, threads))
}

/// Finds `flag VALUE` in `args`, if present.
fn parse_flag_value(args: &[String], flag: &str) -> Result<Option<String>, CliError> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it
                .next()
                .cloned()
                .map(Some)
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    fn temp_trace() -> String {
        let dir = std::env::temp_dir().join("culpeo-cli-main-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ble.csv");
        let trace = culpeo_loadgen::peripheral::BleRadio::default()
            .profile()
            .sample(culpeo_units::Hertz::new(125_000.0));
        std::fs::write(&path, culpeo_loadgen::io::to_csv(&trace)).unwrap();
        path.to_string_lossy().into_owned()
    }

    /// Writes `content` into the shared test temp dir and returns its path.
    fn temp_file(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("culpeo-cli-main-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn capybara_spec_json() -> String {
        serde_json::to_string(&crate::spec::SystemSpec::capybara()).unwrap()
    }

    #[test]
    fn analyze_end_to_end() {
        let path = temp_trace();
        let (report, code) = run(&s(&["analyze", "--trace", &path])).unwrap();
        assert!(report.contains("V_safe (Culpeo-PG)"));
        assert_eq!(code, 0);
    }

    #[test]
    fn check_end_to_end_with_two_traces() {
        let path = temp_trace();
        let (report, _) = run(&s(&[
            "check",
            "--trace",
            &path,
            "--trace",
            &path,
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(report.contains("V_safe_multi"));
    }

    #[test]
    fn vsafe_table_end_to_end() {
        let path = temp_trace();
        let (report, _) = run(&s(&["vsafe-table", "--trace", &path])).unwrap();
        assert!(report.contains("threshold"));
    }

    #[test]
    fn catalog_end_to_end() {
        let (report, _) = run(&s(&["catalog"])).unwrap();
        assert!(report.contains("Supercapacitors"));
    }

    #[test]
    fn export_then_analyze() {
        let dir = std::env::temp_dir().join("culpeo-cli-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("example.csv").to_string_lossy().into_owned();
        run(&s(&["export-example-trace", &out])).unwrap();
        let (report, _) = run(&s(&["analyze", "--trace", &out])).unwrap();
        assert!(report.contains("ble-tx"));
    }

    #[test]
    fn usage_errors() {
        assert!(run(&s(&[])).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["analyze"])).is_err());
        assert!(run(&s(&["analyze", "--trace"])).is_err());
        assert!(run(&s(&["analyze", "--bogus", "x"])).is_err());
        assert!(run(&s(&["catalog", "--capacitance-mf", "NaNish"])).is_err());
        assert!(run(&s(&["check", "--trace", "x.csv", "--threads", "zero"])).is_err());
        assert!(run(&s(&["check", "--trace", "x.csv", "--threads", "0"])).is_err());
        assert!(run(&s(&["analyze", "--trace", "x.csv", "--threads", "2"])).is_err());
        assert!(run(&s(&["analyze", "spec.json", "--format", "yaml"])).is_err());
        assert!(run(&s(&["analyze", "spec.json", "--plan"])).is_err());
    }

    // -- lint mode (positional spec path) ---------------------------------

    #[test]
    fn lint_clean_capybara_spec_exits_zero() {
        let spec = temp_file("clean-spec.json", &capybara_spec_json());
        let (report, code) = run(&s(&["analyze", &spec])).unwrap();
        assert_eq!(code, 0, "reference spec must lint clean: {report}");
        assert!(report.contains("no diagnostics"));
    }

    #[test]
    fn lint_rising_esr_curve_exits_one_with_c003() {
        let spec = temp_file(
            "rising-esr.json",
            r#"{
              "capacitance_mf": 45.0,
              "esr_curve": [[10.0, 3.1], [100.0, 4.2]],
              "v_out": 2.55, "v_off": 1.6, "v_high": 2.56,
              "efficiency": { "points": [[1.6, 0.78], [2.5, 0.87]] }
            }"#,
        );
        let (report, code) = run(&s(&["analyze", &spec])).unwrap();
        assert_eq!(code, 1);
        assert!(report.contains("C003"), "missing C003 in: {report}");
    }

    #[test]
    fn lint_nan_trace_exits_one_with_c010() {
        let spec = temp_file("spec-for-nan.json", &capybara_spec_json());
        let trace = temp_file(
            "nan.csv",
            "# culpeo-trace v1\n# label: corrupt\n# dt_us: 8\n\
             time_s,current_a\n0.000000,0.010\n0.000008,NaN\n0.000016,0.010\n",
        );
        let (report, code) = run(&s(&["analyze", &spec, "--trace", &trace])).unwrap();
        assert_eq!(code, 1);
        assert!(report.contains("C010"), "missing C010 in: {report}");
    }

    #[test]
    fn lint_plan_below_vsafe_exits_one_with_c020() {
        let spec = temp_file("spec-for-plan.json", &capybara_spec_json());
        let plan = temp_file(
            "figure5-plan.json",
            &serde_json::to_string(&culpeo_analyze::PlanSpec::figure5_example()).unwrap(),
        );
        let (report, code) = run(&s(&["analyze", &spec, "--plan", &plan])).unwrap();
        assert_eq!(code, 1);
        assert!(report.contains("C020"), "missing C020 in: {report}");
    }

    #[test]
    fn lint_json_format_is_parseable() {
        let spec = temp_file("spec-for-json.json", &capybara_spec_json());
        let (report, code) = run(&s(&["analyze", &spec, "--format", "json"])).unwrap();
        assert_eq!(code, 0);
        let doc = serde_json::parse_value_str(&report).unwrap();
        assert_eq!(doc.get("errors").and_then(serde::Value::as_f64), Some(0.0));
        assert!(doc
            .get("diagnostics")
            .and_then(serde::Value::as_array)
            .is_some());
    }

    #[test]
    fn lint_missing_spec_file_is_a_usage_error() {
        assert!(run(&s(&["analyze", "/nonexistent/spec.json"])).is_err());
    }
}

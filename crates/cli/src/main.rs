//! `culpeo` — command-line ESR-aware charge analysis.
//!
//! ```text
//! culpeo analyze --trace packet.csv [--system spec.json]
//! culpeo check   --trace a.csv --trace b.csv [--system spec.json]
//! culpeo vsafe-table --trace packet.csv [--system spec.json]
//! culpeo catalog [--capacitance-mf 45]
//! culpeo export-example-trace packet.csv
//! ```
//!
//! Trace CSVs follow the `culpeo-trace v1` dialect (see
//! `culpeo_loadgen::io`); the system spec JSON is documented on
//! [`spec::SystemSpec`]. With no `--system`, the simulated Capybara
//! reference configuration is used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commands;
mod spec;

use commands::CliError;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("culpeo: {e}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  culpeo analyze --trace FILE [--system SPEC.json]\n  \
     culpeo check --trace FILE [--trace FILE…] [--system SPEC.json]\n  \
     culpeo vsafe-table --trace FILE [--system SPEC.json]\n  \
     culpeo catalog [--capacitance-mf MF]\n  \
     culpeo export-example-trace OUT.csv"
}

/// Dispatches a parsed argument vector; separated from `main` for tests.
fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("no command given".into()));
    };
    let rest = &args[1..];
    match command.as_str() {
        "analyze" => {
            let (traces, system) = parse_common(rest)?;
            let [trace] = traces.as_slice() else {
                return Err(CliError::Usage("analyze takes exactly one --trace".into()));
            };
            let model = commands::load_model(system.as_deref())?;
            let t = commands::load_trace(trace)?;
            Ok(commands::analyze(&model, &t))
        }
        "check" => {
            let (trace_paths, system) = parse_common(rest)?;
            if trace_paths.is_empty() {
                return Err(CliError::Usage("check needs at least one --trace".into()));
            }
            let model = commands::load_model(system.as_deref())?;
            let mut traces = Vec::new();
            for path in trace_paths {
                let t = commands::load_trace(&path)?;
                traces.push((path, t));
            }
            Ok(commands::check(&model, &traces))
        }
        "vsafe-table" => {
            let (traces, system) = parse_common(rest)?;
            let [trace] = traces.as_slice() else {
                return Err(CliError::Usage(
                    "vsafe-table takes exactly one --trace".into(),
                ));
            };
            let model = commands::load_model(system.as_deref())?;
            let t = commands::load_trace(trace)?;
            Ok(commands::vsafe_table(&model, &t))
        }
        "catalog" => {
            let mf = parse_flag_value(rest, "--capacitance-mf")?
                .map_or(Ok(45.0), |v| {
                    v.parse::<f64>()
                        .map_err(|_| CliError::Usage("--capacitance-mf must be a number".into()))
                })?;
            commands::catalog(mf)
        }
        "export-example-trace" => {
            let [out] = rest else {
                return Err(CliError::Usage(
                    "export-example-trace takes one output path".into(),
                ));
            };
            let trace = culpeo_loadgen::peripheral::BleRadio::default()
                .profile()
                .sample(culpeo_units::Hertz::new(125_000.0));
            let csv = culpeo_loadgen::io::to_csv(&trace);
            std::fs::write(out, csv).map_err(|e| CliError::Io(out.clone(), e))?;
            Ok(format!("wrote example BLE trace to {out}\n"))
        }
        other => Err(CliError::Usage(format!("unknown command: {other}"))),
    }
}

/// Parses repeated `--trace` flags and an optional `--system`.
fn parse_common(args: &[String]) -> Result<(Vec<String>, Option<String>), CliError> {
    let mut traces = Vec::new();
    let mut system = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--trace needs a path".into()))?;
                traces.push(value.clone());
            }
            "--system" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--system needs a path".into()))?;
                system = Some(value.clone());
            }
            other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
        }
    }
    Ok((traces, system))
}

/// Finds `flag VALUE` in `args`, if present.
fn parse_flag_value(args: &[String], flag: &str) -> Result<Option<String>, CliError> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it
                .next()
                .cloned()
                .map(Some)
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    fn temp_trace() -> String {
        let dir = std::env::temp_dir().join("culpeo-cli-main-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ble.csv");
        let trace = culpeo_loadgen::peripheral::BleRadio::default()
            .profile()
            .sample(culpeo_units::Hertz::new(125_000.0));
        std::fs::write(&path, culpeo_loadgen::io::to_csv(&trace)).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn analyze_end_to_end() {
        let path = temp_trace();
        let report = run(&s(&["analyze", "--trace", &path])).unwrap();
        assert!(report.contains("V_safe (Culpeo-PG)"));
    }

    #[test]
    fn check_end_to_end_with_two_traces() {
        let path = temp_trace();
        let report = run(&s(&["check", "--trace", &path, "--trace", &path])).unwrap();
        assert!(report.contains("V_safe_multi"));
    }

    #[test]
    fn vsafe_table_end_to_end() {
        let path = temp_trace();
        let report = run(&s(&["vsafe-table", "--trace", &path])).unwrap();
        assert!(report.contains("threshold"));
    }

    #[test]
    fn catalog_end_to_end() {
        let report = run(&s(&["catalog"])).unwrap();
        assert!(report.contains("Supercapacitors"));
    }

    #[test]
    fn export_then_analyze() {
        let dir = std::env::temp_dir().join("culpeo-cli-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("example.csv").to_string_lossy().into_owned();
        run(&s(&["export-example-trace", &out])).unwrap();
        let report = run(&s(&["analyze", "--trace", &out])).unwrap();
        assert!(report.contains("ble-tx"));
    }

    #[test]
    fn usage_errors() {
        assert!(run(&s(&[])).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["analyze"])).is_err());
        assert!(run(&s(&["analyze", "--trace"])).is_err());
        assert!(run(&s(&["analyze", "--bogus", "x"])).is_err());
        assert!(run(&s(&["catalog", "--capacitance-mf", "NaNish"])).is_err());
    }
}

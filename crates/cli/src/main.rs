//! `culpeo` — command-line ESR-aware charge analysis.
//!
//! ```text
//! culpeo vsafe --trace packet.csv [--system spec.json]
//! culpeo lint  spec.json [--trace packet.csv]… [--plan plan.json] [--format json] [--deny-warnings]
//! culpeo verify spec.json --plan plan.json [--format json]
//! culpeo wcec spec.json --tasks tasks.json [--format json]
//! culpeo serve [--port 7070] [--workers N] [--queue-depth 64] [--cache-capacity 256]
//!              [--max-connections 1024] [--keep-alive-timeout 30]
//!              [--store DIR] [--log json|off]
//! culpeo store recover DIR [--format json|human]
//! culpeo store stat DIR [--format json|human]
//! culpeo store fill DIR --records N [--seed 42]
//! culpeo chaos [--seed 42] [--threads N] [--format json|human]
//! culpeo race [--preemptions N] [--seed N] [--format json|human]
//! culpeo check --trace a.csv --trace b.csv [--system spec.json] [--threads N]
//! culpeo vsafe-table --trace packet.csv [--system spec.json]
//! culpeo catalog [--capacitance-mf 45]
//! culpeo export-example-trace packet.csv
//! ```
//!
//! `vsafe` is the core report: ESR-aware `V_safe` for one task trace.
//! `lint` runs the *static lint battery* from `culpeo-analyze` over the
//! spec and any `--trace` / `--plan` inputs, printing rustc-style `C0xx`
//! diagnostics (or a JSON report with `--format json`) and exiting 1 if
//! any error fired (with `--deny-warnings`, warnings fail too). `verify`
//! runs the `culpeo-verify` interval abstract interpreter over a whole
//! schedule and exits 0 only on a proof — `refuted` comes with a
//! replayable counterexample, `unknown` with the blocking interval.
//! `wcec` certifies worst-case energy/latency for task graphs through
//! the `culpeo-wcec` static analyzer and exits 0 only when every task
//! gets a finite certificate.
//! `serve` starts the `culpeo-served` batch daemon
//! speaking the versioned `/v1/*` API over HTTP; with `--store DIR` it
//! also ingests observation telemetry into a crash-safe segmented log
//! (`POST /v1/observe`), and `--log json` emits one structured request
//! log line per answer on stderr. `store` administers that log offline:
//! `recover` repairs a directory after `kill -9` (torn-tail truncation +
//! corrupt-segment quarantine, idempotent), `stat` reports read-only
//! what a recovery would do (exit 1 when one is needed), and `fill`
//! appends a seeded, byte-deterministic record stream for the
//! `scripts/store.sh` durability gate. `chaos` runs the seeded
//! `culpeo-faults` battery — trace, physics, scheduler, and service
//! fault injection — and exits 1 if any scenario fails; its report is
//! byte-identical for a given `--seed` at any `--threads` count. `race`
//! runs the `culpeo-race` interleaving model checker over the exec and
//! serving concurrency protocols — every invariant explored to the
//! preemption bound, every mutant refuted with a trace — and exits 0
//! only when both halves pass.
//!
//! (Both questions used to share the `analyze` verb; those spellings
//! still work as hidden aliases with the exact same exit codes, printing
//! a one-line pointer to the new verb on stderr.)
//!
//! Trace CSVs follow the `culpeo-trace v1` dialect (see
//! `culpeo_loadgen::io`); the system spec JSON is documented on
//! [`spec::SystemSpec`]. With no `--system`, the simulated Capybara
//! reference configuration is used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commands;
mod spec;

use commands::{CliError, LintFormat};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok((report, code)) => {
            print!("{report}");
            std::process::exit(code);
        }
        Err(e) => {
            eprintln!("culpeo: {e}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  culpeo vsafe --trace FILE [--system SPEC.json]\n  \
     culpeo lint SPEC.json [--trace FILE…] [--plan PLAN.json] [--format json|human] [--deny-warnings]\n  \
     culpeo verify SPEC.json --plan PLAN.json [--format json|human]\n  \
     culpeo wcec SPEC.json --tasks TASKS.json [--format json|human]\n  \
     culpeo serve [--port 7070] [--workers N] [--queue-depth 64] [--cache-capacity 256] [--max-connections 1024] [--keep-alive-timeout 30] [--store DIR] [--log json|off]\n  \
     culpeo store recover|stat DIR [--format json|human]\n  \
     culpeo store fill DIR --records N [--seed 42]\n  \
     culpeo chaos [--seed 42] [--threads N] [--format json|human]\n  \
     culpeo race [--preemptions N] [--seed N] [--format json|human]\n  \
     culpeo check --trace FILE [--trace FILE…] [--system SPEC.json] [--threads N]\n  \
     culpeo vsafe-table --trace FILE [--system SPEC.json]\n  \
     culpeo catalog [--capacitance-mf MF]\n  \
     culpeo export-example-trace OUT.csv"
}

/// Dispatches a parsed argument vector; separated from `main` for tests.
/// Returns the report text and the process exit code (0 or 1; usage and
/// I/O failures surface as `Err` and exit 2).
fn run(args: &[String]) -> Result<(String, i32), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("no command given".into()));
    };
    let rest = &args[1..];
    match command.as_str() {
        "lint" => run_lint(rest),
        "verify" => run_verify(rest),
        "wcec" => run_wcec(rest),
        "vsafe" => run_vsafe(rest),
        // Deprecated spellings: `analyze SPEC` → `lint`, `analyze --trace`
        // → `vsafe`. Same parsing, same exit codes; only a stderr pointer
        // is added, so scripted callers keep working unchanged.
        "analyze" if rest.first().is_some_and(|a| !a.starts_with("--")) => {
            eprintln!("culpeo: `analyze SPEC.json` is deprecated; use `culpeo lint SPEC.json`");
            run_lint(rest)
        }
        "analyze" => {
            eprintln!("culpeo: `analyze --trace` is deprecated; use `culpeo vsafe --trace`");
            run_vsafe(rest)
        }
        "serve" => {
            let config = parse_serve(rest)?;
            commands::serve(&config)
        }
        "store" => run_store(rest),
        "race" => {
            let (config, format) = parse_race(rest)?;
            Ok(commands::race(&config, format))
        }
        "chaos" => {
            let (seed, threads, format) = parse_chaos(rest)?;
            let sweep = threads.map_or_else(culpeo_exec::Sweep::from_env, |n| {
                culpeo_exec::Sweep::with_threads(n)
            });
            Ok(commands::chaos(seed, &sweep, format))
        }
        "check" => {
            let (trace_paths, system, threads) = parse_check(rest)?;
            if trace_paths.is_empty() {
                return Err(CliError::Usage("check needs at least one --trace".into()));
            }
            // Explicit --threads wins; otherwise CULPEO_THREADS, then serial.
            let sweep = threads.map_or_else(culpeo_exec::Sweep::from_env, |n| {
                culpeo_exec::Sweep::with_threads(n)
            });
            let model = commands::load_model(system.as_deref())?;
            let mut traces = Vec::new();
            for path in trace_paths {
                let t = commands::load_trace(&path)?;
                traces.push((path, t));
            }
            Ok((commands::check(&model, &traces, &sweep), 0))
        }
        "vsafe-table" => {
            let (traces, system) = parse_common(rest)?;
            let [trace] = traces.as_slice() else {
                return Err(CliError::Usage(
                    "vsafe-table takes exactly one --trace".into(),
                ));
            };
            let model = commands::load_model(system.as_deref())?;
            let t = commands::load_trace(trace)?;
            Ok((commands::vsafe_table(&model, &t), 0))
        }
        "catalog" => {
            let mf = parse_flag_value(rest, "--capacitance-mf")?.map_or(Ok(45.0), |v| {
                v.parse::<f64>()
                    .map_err(|_| CliError::Usage("--capacitance-mf must be a number".into()))
            })?;
            commands::catalog(mf).map(|report| (report, 0))
        }
        "export-example-trace" => {
            let [out] = rest else {
                return Err(CliError::Usage(
                    "export-example-trace takes one output path".into(),
                ));
            };
            let trace = culpeo_loadgen::peripheral::BleRadio::default()
                .profile()
                .sample(culpeo_units::Hertz::new(125_000.0));
            let csv = culpeo_loadgen::io::to_csv(&trace);
            std::fs::write(out, csv).map_err(|e| CliError::Io(out.clone(), e))?;
            Ok((format!("wrote example BLE trace to {out}\n"), 0))
        }
        other => Err(CliError::Usage(format!("unknown command: {other}"))),
    }
}

/// `culpeo lint SPEC.json [--trace FILE]… [--plan FILE] [--format json]
/// [--deny-warnings]`.
fn run_lint(rest: &[String]) -> Result<(String, i32), CliError> {
    let Some(spec_path) = rest.first().filter(|a| !a.starts_with("--")) else {
        return Err(CliError::Usage("lint needs a spec path".into()));
    };
    let lint_rest = &rest[1..];
    let mut traces = Vec::new();
    let mut plan = None;
    let mut format = LintFormat::Human;
    let mut deny_warnings = false;
    let mut it = lint_rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => traces.push(
                it.next()
                    .ok_or_else(|| CliError::Usage("--trace needs a path".into()))?
                    .clone(),
            ),
            "--plan" => {
                plan = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--plan needs a path".into()))?
                        .clone(),
                );
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("json") => LintFormat::Json,
                    Some("human") => LintFormat::Human,
                    _ => return Err(CliError::Usage("--format takes `json` or `human`".into())),
                };
            }
            "--deny-warnings" => deny_warnings = true,
            other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
        }
    }
    commands::lint(spec_path, &traces, plan.as_deref(), format, deny_warnings)
}

/// `culpeo verify SPEC.json --plan PLAN.json [--format json|human]`.
fn run_verify(rest: &[String]) -> Result<(String, i32), CliError> {
    let Some(spec_path) = rest.first().filter(|a| !a.starts_with("--")) else {
        return Err(CliError::Usage("verify needs a spec path".into()));
    };
    let mut plan = None;
    let mut format = LintFormat::Human;
    let mut it = rest[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--plan" => {
                plan = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--plan needs a path".into()))?
                        .clone(),
                );
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("json") => LintFormat::Json,
                    Some("human") => LintFormat::Human,
                    _ => return Err(CliError::Usage("--format takes `json` or `human`".into())),
                };
            }
            other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
        }
    }
    let Some(plan_path) = plan else {
        return Err(CliError::Usage("verify needs --plan PLAN.json".into()));
    };
    commands::verify(spec_path, &plan_path, format)
}

/// `culpeo wcec SPEC.json --tasks TASKS.json [--format json|human]`.
fn run_wcec(rest: &[String]) -> Result<(String, i32), CliError> {
    let Some(spec_path) = rest.first().filter(|a| !a.starts_with("--")) else {
        return Err(CliError::Usage("wcec needs a spec path".into()));
    };
    let mut tasks = None;
    let mut format = LintFormat::Human;
    let mut it = rest[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--tasks" => {
                tasks = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--tasks needs a path".into()))?
                        .clone(),
                );
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("json") => LintFormat::Json,
                    Some("human") => LintFormat::Human,
                    _ => return Err(CliError::Usage("--format takes `json` or `human`".into())),
                };
            }
            other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
        }
    }
    let Some(tasks_path) = tasks else {
        return Err(CliError::Usage("wcec needs --tasks TASKS.json".into()));
    };
    commands::wcec(spec_path, &tasks_path, format)
}

/// `culpeo vsafe --trace FILE [--system SPEC.json]`.
fn run_vsafe(rest: &[String]) -> Result<(String, i32), CliError> {
    let (traces, system) = parse_common(rest)?;
    let [trace] = traces.as_slice() else {
        return Err(CliError::Usage("vsafe takes exactly one --trace".into()));
    };
    let model = commands::load_model(system.as_deref())?;
    let t = commands::load_trace(trace)?;
    Ok((commands::vsafe(&model, &t), 0))
}

/// `culpeo store recover|stat DIR [--format …]` and
/// `culpeo store fill DIR --records N [--seed S]` — offline
/// administration of the durable telemetry log.
fn run_store(rest: &[String]) -> Result<(String, i32), CliError> {
    let Some(verb) = rest.first().filter(|a| !a.starts_with("--")) else {
        return Err(CliError::Usage(
            "store needs a subcommand: recover, stat, or fill".into(),
        ));
    };
    let Some(dir) = rest.get(1).filter(|a| !a.starts_with("--")) else {
        return Err(CliError::Usage(format!("store {verb} needs a directory")));
    };
    let flags = &rest[2..];
    match verb.as_str() {
        "recover" | "stat" => {
            let mut format = LintFormat::Human;
            let mut it = flags.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--format" => {
                        format = match it.next().map(String::as_str) {
                            Some("json") => LintFormat::Json,
                            Some("human") => LintFormat::Human,
                            _ => {
                                return Err(CliError::Usage(
                                    "--format takes `json` or `human`".into(),
                                ))
                            }
                        };
                    }
                    other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
                }
            }
            if verb == "recover" {
                commands::store_recover(dir, format)
            } else {
                commands::store_stat(dir, format)
            }
        }
        "fill" => {
            let mut records = None;
            let mut seed = 42u64;
            let mut it = flags.iter();
            while let Some(flag) = it.next() {
                let mut numeric = |what: &str| -> Result<u64, CliError> {
                    it.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| {
                            CliError::Usage(format!("{what} needs a non-negative integer"))
                        })
                };
                match flag.as_str() {
                    "--records" => {
                        let n = numeric("--records")?;
                        if n == 0 {
                            return Err(CliError::Usage("--records must be positive".into()));
                        }
                        records = Some(n);
                    }
                    "--seed" => seed = numeric("--seed")?,
                    other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
                }
            }
            let Some(records) = records else {
                return Err(CliError::Usage("store fill needs --records N".into()));
            };
            commands::store_fill(dir, records, seed)
        }
        other => Err(CliError::Usage(format!(
            "unknown store subcommand: {other} (use recover, stat, or fill)"
        ))),
    }
}

/// Parses `serve`'s flags into a daemon config.
fn parse_serve(args: &[String]) -> Result<culpeo_served::ServerConfig, CliError> {
    let mut config = culpeo_served::ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut numeric = |what: &str| -> Result<u64, CliError> {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| CliError::Usage(format!("{what} needs a non-negative integer")))
        };
        match flag.as_str() {
            "--port" => {
                config.port = u16::try_from(numeric("--port")?)
                    .map_err(|_| CliError::Usage("--port must fit in 16 bits".into()))?;
            }
            "--workers" | "--threads" => {
                if flag == "--threads" {
                    // Deprecated spelling from the thread-per-connection
                    // era; same semantics (compute pool size), stderr
                    // pointer only, so scripted callers keep working.
                    eprintln!(
                        "culpeo: `serve --threads` is deprecated; use `culpeo serve --workers`"
                    );
                }
                let n = numeric(flag)?;
                if n == 0 {
                    return Err(CliError::Usage(format!("{flag} must be positive")));
                }
                config.threads = usize::try_from(n)
                    .map_err(|_| CliError::Usage(format!("{flag} is out of range")))?;
            }
            "--max-connections" => {
                let n = numeric("--max-connections")?;
                if n == 0 {
                    return Err(CliError::Usage("--max-connections must be positive".into()));
                }
                config.max_connections = usize::try_from(n)
                    .map_err(|_| CliError::Usage("--max-connections is out of range".into()))?;
            }
            "--keep-alive-timeout" => {
                let n = numeric("--keep-alive-timeout")?;
                if n == 0 {
                    return Err(CliError::Usage(
                        "--keep-alive-timeout must be a positive number of seconds".into(),
                    ));
                }
                config.keep_alive_timeout_ms = n.saturating_mul(1_000);
            }
            "--queue-depth" => {
                let n = numeric("--queue-depth")?;
                if n == 0 {
                    return Err(CliError::Usage("--queue-depth must be positive".into()));
                }
                config.queue_depth = usize::try_from(n)
                    .map_err(|_| CliError::Usage("--queue-depth is out of range".into()))?;
            }
            "--cache-capacity" => {
                config.cache_capacity = usize::try_from(numeric("--cache-capacity")?)
                    .map_err(|_| CliError::Usage("--cache-capacity is out of range".into()))?;
            }
            "--store" => {
                let dir = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--store needs a directory".into()))?;
                config.store_dir = Some(std::path::PathBuf::from(dir));
            }
            "--log" => {
                config.log = match it.next().map(String::as_str) {
                    Some("json") => culpeo_served::LogMode::Json,
                    Some("off") => culpeo_served::LogMode::Off,
                    _ => return Err(CliError::Usage("--log takes `json` or `off`".into())),
                };
            }
            other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
        }
    }
    Ok(config)
}

/// `chaos`'s parsed flags: master seed, optional worker count, format.
type ChaosArgs = (u64, Option<usize>, LintFormat);

/// Parses `chaos`'s flags: optional `--seed N` (default 42), optional
/// `--threads N`, optional `--format json|human`.
fn parse_chaos(args: &[String]) -> Result<ChaosArgs, CliError> {
    let mut seed = 42u64;
    let mut threads = None;
    let mut format = LintFormat::Human;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| CliError::Usage("--seed needs a non-negative integer".into()))?;
            }
            "--threads" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(|| CliError::Usage("--threads needs a positive integer".into()))?;
                if n == 0 {
                    return Err(CliError::Usage("--threads must be positive".into()));
                }
                threads = Some(n);
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("json") => LintFormat::Json,
                    Some("human") => LintFormat::Human,
                    _ => return Err(CliError::Usage("--format takes `json` or `human`".into())),
                };
            }
            other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
        }
    }
    Ok((seed, threads, format))
}

/// Parses `race`'s flags: optional `--preemptions N`, `--seed N`, and
/// `--format json|human`, over the battery defaults.
fn parse_race(
    args: &[String],
) -> Result<(culpeo_race::battery::BatteryConfig, LintFormat), CliError> {
    let mut config = culpeo_race::battery::BatteryConfig::default();
    let mut format = LintFormat::Human;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--preemptions" => {
                config.preemptions =
                    it.next()
                        .and_then(|v| v.parse::<u32>().ok())
                        .ok_or_else(|| {
                            CliError::Usage("--preemptions needs a non-negative integer".into())
                        })?;
            }
            "--seed" => {
                config.seed = it
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| CliError::Usage("--seed needs a non-negative integer".into()))?;
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("json") => LintFormat::Json,
                    Some("human") => LintFormat::Human,
                    _ => return Err(CliError::Usage("--format takes `json` or `human`".into())),
                };
            }
            other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
        }
    }
    Ok((config, format))
}

/// Parses repeated `--trace` flags and an optional `--system`.
fn parse_common(args: &[String]) -> Result<(Vec<String>, Option<String>), CliError> {
    let mut traces = Vec::new();
    let mut system = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--trace needs a path".into()))?;
                traces.push(value.clone());
            }
            "--system" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--system needs a path".into()))?;
                system = Some(value.clone());
            }
            other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
        }
    }
    Ok((traces, system))
}

/// `check`'s parsed flags: trace paths, optional `--system` path, optional
/// `--threads` worker count.
type CheckArgs = (Vec<String>, Option<String>, Option<usize>);

/// Parses `check`'s flags: repeated `--trace`, optional `--system`, and an
/// optional `--threads N` worker count for the per-trace sweep.
fn parse_check(args: &[String]) -> Result<CheckArgs, CliError> {
    let mut traces = Vec::new();
    let mut system = None;
    let mut threads = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--trace needs a path".into()))?;
                traces.push(value.clone());
            }
            "--system" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--system needs a path".into()))?;
                system = Some(value.clone());
            }
            "--threads" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--threads needs a count".into()))?;
                threads = Some(value.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(
                    || CliError::Usage("--threads must be a positive integer".into()),
                )?);
            }
            other => return Err(CliError::Usage(format!("unknown flag: {other}"))),
        }
    }
    Ok((traces, system, threads))
}

/// Finds `flag VALUE` in `args`, if present.
fn parse_flag_value(args: &[String], flag: &str) -> Result<Option<String>, CliError> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it
                .next()
                .cloned()
                .map(Some)
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_string()).collect()
    }

    fn temp_trace() -> String {
        let dir = std::env::temp_dir().join("culpeo-cli-main-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ble.csv");
        let trace = culpeo_loadgen::peripheral::BleRadio::default()
            .profile()
            .sample(culpeo_units::Hertz::new(125_000.0));
        std::fs::write(&path, culpeo_loadgen::io::to_csv(&trace)).unwrap();
        path.to_string_lossy().into_owned()
    }

    /// Writes `content` into the shared test temp dir and returns its path.
    fn temp_file(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("culpeo-cli-main-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn capybara_spec_json() -> String {
        serde_json::to_string(&crate::spec::SystemSpec::capybara()).unwrap()
    }

    #[test]
    fn vsafe_end_to_end() {
        let path = temp_trace();
        let (report, code) = run(&s(&["vsafe", "--trace", &path])).unwrap();
        assert!(report.contains("V_safe (Culpeo-PG)"));
        assert_eq!(code, 0);
    }

    #[test]
    fn deprecated_analyze_alias_still_answers() {
        let path = temp_trace();
        let new = run(&s(&["vsafe", "--trace", &path])).unwrap();
        let old = run(&s(&["analyze", "--trace", &path])).unwrap();
        assert_eq!(old, new, "alias must match the new verb exactly");
    }

    #[test]
    fn serve_flag_parsing() {
        let config = parse_serve(&s(&[
            "--port",
            "9999",
            "--workers",
            "3",
            "--queue-depth",
            "7",
            "--cache-capacity",
            "0",
            "--max-connections",
            "64",
            "--keep-alive-timeout",
            "5",
        ]))
        .unwrap();
        assert_eq!(config.port, 9999);
        assert_eq!(config.threads, 3);
        assert_eq!(config.queue_depth, 7);
        assert_eq!(config.cache_capacity, 0);
        assert_eq!(config.max_connections, 64);
        assert_eq!(config.keep_alive_timeout_ms, 5_000);
        // The deprecated spelling still parses to the same config.
        let legacy = parse_serve(&s(&["--threads", "3"])).unwrap();
        assert_eq!(legacy.threads, 3);
        // Telemetry-store and logging flags.
        assert_eq!(config.store_dir, None);
        assert_eq!(config.log, culpeo_served::LogMode::Off);
        let stored = parse_serve(&s(&["--store", "/tmp/obs", "--log", "json"])).unwrap();
        assert_eq!(
            stored.store_dir.as_deref(),
            Some(std::path::Path::new("/tmp/obs"))
        );
        assert_eq!(stored.log, culpeo_served::LogMode::Json);
        assert!(parse_serve(&s(&["--store"])).is_err());
        assert!(parse_serve(&s(&["--log", "xml"])).is_err());
        assert!(parse_serve(&s(&["--port", "notaport"])).is_err());
        assert!(parse_serve(&s(&["--port", "70000"])).is_err());
        assert!(parse_serve(&s(&["--workers", "0"])).is_err());
        assert!(parse_serve(&s(&["--threads", "0"])).is_err());
        assert!(parse_serve(&s(&["--max-connections", "0"])).is_err());
        assert!(parse_serve(&s(&["--keep-alive-timeout", "0"])).is_err());
        assert!(parse_serve(&s(&["--queue-depth", "0"])).is_err());
        assert!(parse_serve(&s(&["--bogus"])).is_err());
    }

    #[test]
    fn chaos_flag_parsing() {
        let (seed, threads, format) = parse_chaos(&s(&[])).unwrap();
        assert_eq!(seed, 42);
        assert_eq!(threads, None);
        assert_eq!(format, LintFormat::Human);
        let (seed, threads, format) =
            parse_chaos(&s(&["--seed", "7", "--threads", "4", "--format", "json"])).unwrap();
        assert_eq!(seed, 7);
        assert_eq!(threads, Some(4));
        assert_eq!(format, LintFormat::Json);
        assert!(parse_chaos(&s(&["--seed", "minus-one"])).is_err());
        assert!(parse_chaos(&s(&["--threads", "0"])).is_err());
        assert!(parse_chaos(&s(&["--format", "xml"])).is_err());
        assert!(parse_chaos(&s(&["--bogus"])).is_err());
    }

    #[test]
    fn race_flag_parsing() {
        let (config, format) = parse_race(&s(&[])).unwrap();
        assert_eq!(config.preemptions, 3);
        assert_eq!(config.seed, 0xC01D_CAFE);
        assert_eq!(format, LintFormat::Human);
        let (config, format) = parse_race(&s(&[
            "--preemptions",
            "1",
            "--seed",
            "9",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(config.preemptions, 1);
        assert_eq!(config.seed, 9);
        assert_eq!(format, LintFormat::Json);
        assert!(parse_race(&s(&["--preemptions", "minus-one"])).is_err());
        assert!(parse_race(&s(&["--seed", "nope"])).is_err());
        assert!(parse_race(&s(&["--format", "xml"])).is_err());
        assert!(parse_race(&s(&["--bogus"])).is_err());
    }

    #[test]
    fn race_end_to_end_passes_and_is_deterministic() {
        // Bound 2 is the smallest that refutes every mutant (the
        // group-commit ack-first bug needs two preemptions to fire)
        // while staying fast enough for a unit test.
        let args = s(&["race", "--preemptions", "2", "--seed", "9"]);
        let (report, code) = run(&args).unwrap();
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("invariants all hold"));
        assert!(report.contains("mutation gate all refuted"));
        let (again, _) = run(&args).unwrap();
        assert_eq!(
            report, again,
            "race output is deterministic in (seed, preemptions)"
        );
        let (json, code) = run(&s(&[
            "race",
            "--preemptions",
            "2",
            "--seed",
            "9",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(code, 0);
        let doc = serde_json::parse_value_str(&json).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(serde::Value::as_f64),
            Some(2.0)
        );
        assert_eq!(doc.get("all_proved"), Some(&serde::Value::Bool(true)));
        assert_eq!(doc.get("all_refuted"), Some(&serde::Value::Bool(true)));
    }

    #[test]
    fn check_end_to_end_with_two_traces() {
        let path = temp_trace();
        let (report, _) = run(&s(&[
            "check",
            "--trace",
            &path,
            "--trace",
            &path,
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(report.contains("V_safe_multi"));
    }

    #[test]
    fn vsafe_table_end_to_end() {
        let path = temp_trace();
        let (report, _) = run(&s(&["vsafe-table", "--trace", &path])).unwrap();
        assert!(report.contains("threshold"));
    }

    #[test]
    fn catalog_end_to_end() {
        let (report, _) = run(&s(&["catalog"])).unwrap();
        assert!(report.contains("Supercapacitors"));
    }

    #[test]
    fn export_then_vsafe() {
        let dir = std::env::temp_dir().join("culpeo-cli-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("example.csv").to_string_lossy().into_owned();
        run(&s(&["export-example-trace", &out])).unwrap();
        let (report, _) = run(&s(&["vsafe", "--trace", &out])).unwrap();
        assert!(report.contains("ble-tx"));
    }

    #[test]
    fn store_fill_stat_recover_round_trip() {
        let dir =
            std::env::temp_dir().join(format!("culpeo-cli-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let d = dir.to_string_lossy().into_owned();

        let (report, code) =
            run(&s(&["store", "fill", &d, "--records", "5", "--seed", "7"])).unwrap();
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("5 records durable"));

        // A freshly filled store is clean; stat says so and exits 0.
        let (report, code) = run(&s(&["store", "stat", &d])).unwrap();
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("verdict: clean"));

        // Tear the tail like a kill -9 mid-append would.
        let seg = culpeo_store::segment_files(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 11)
            .unwrap();

        let (report, code) = run(&s(&["store", "stat", &d])).unwrap();
        assert_eq!(code, 1, "a torn tail must flag NEEDS RECOVERY: {report}");

        let (report, code) = run(&s(&["store", "recover", &d, "--format", "json"])).unwrap();
        assert_eq!(code, 0, "{report}");
        let doc = serde_json::parse_value_str(&report).unwrap();
        assert_eq!(
            doc.get("records_recovered").and_then(serde::Value::as_f64),
            Some(4.0)
        );
        // 11 bytes torn off the 5th frame leaves 37 torn bytes behind.
        assert_eq!(
            doc.get("truncated_bytes").and_then(serde::Value::as_f64),
            Some(37.0)
        );

        // Recovery converged: stat is clean again.
        let (_, code) = run(&s(&["store", "stat", &d])).unwrap();
        assert_eq!(code, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_usage_errors() {
        assert!(run(&s(&["store"])).is_err());
        assert!(run(&s(&["store", "recover"])).is_err());
        assert!(run(&s(&["store", "frobnicate", "/tmp/x"])).is_err());
        assert!(run(&s(&["store", "stat", "/tmp/x", "--format", "yaml"])).is_err());
        assert!(run(&s(&["store", "fill", "/tmp/x"])).is_err());
        assert!(run(&s(&["store", "fill", "/tmp/x", "--records", "0"])).is_err());
        assert!(run(&s(&["store", "fill", "/tmp/x", "--records", "nope"])).is_err());
        // `stat` is read-only, so a missing directory is an error (while
        // `recover` would bootstrap one, matching `Store::open`).
        assert!(run(&s(&["store", "stat", "/nonexistent-culpeo-store"])).is_err());
    }

    #[test]
    fn usage_errors() {
        assert!(run(&s(&[])).is_err());
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["vsafe"])).is_err());
        assert!(run(&s(&["vsafe", "--trace"])).is_err());
        assert!(run(&s(&["vsafe", "--bogus", "x"])).is_err());
        assert!(run(&s(&["analyze"])).is_err());
        assert!(run(&s(&["analyze", "--trace"])).is_err());
        assert!(run(&s(&["lint"])).is_err());
        assert!(run(&s(&["lint", "--trace", "x.csv"])).is_err());
        assert!(run(&s(&["catalog", "--capacitance-mf", "NaNish"])).is_err());
        assert!(run(&s(&["check", "--trace", "x.csv", "--threads", "zero"])).is_err());
        assert!(run(&s(&["check", "--trace", "x.csv", "--threads", "0"])).is_err());
        assert!(run(&s(&["vsafe", "--trace", "x.csv", "--threads", "2"])).is_err());
        assert!(run(&s(&["lint", "spec.json", "--format", "yaml"])).is_err());
        assert!(run(&s(&["lint", "spec.json", "--plan"])).is_err());
    }

    // -- lint mode (positional spec path) ---------------------------------

    #[test]
    fn lint_clean_capybara_spec_exits_zero() {
        let spec = temp_file("clean-spec.json", &capybara_spec_json());
        let (report, code) = run(&s(&["lint", &spec])).unwrap();
        assert_eq!(code, 0, "reference spec must lint clean: {report}");
        assert!(report.contains("no diagnostics"));
        // The deprecated spelling must answer identically.
        let (alias_report, alias_code) = run(&s(&["analyze", &spec])).unwrap();
        assert_eq!((alias_report, alias_code), (report, code));
    }

    #[test]
    fn lint_rising_esr_curve_exits_one_with_c003() {
        let spec = temp_file(
            "rising-esr.json",
            r#"{
              "capacitance_mf": 45.0,
              "esr_curve": [[10.0, 3.1], [100.0, 4.2]],
              "v_out": 2.55, "v_off": 1.6, "v_high": 2.56,
              "efficiency": { "points": [[1.6, 0.78], [2.5, 0.87]] }
            }"#,
        );
        let (report, code) = run(&s(&["lint", &spec])).unwrap();
        assert_eq!(code, 1);
        assert!(report.contains("C003"), "missing C003 in: {report}");
    }

    #[test]
    fn lint_nan_trace_exits_one_with_c010() {
        let spec = temp_file("spec-for-nan.json", &capybara_spec_json());
        let trace = temp_file(
            "nan.csv",
            "# culpeo-trace v1\n# label: corrupt\n# dt_us: 8\n\
             time_s,current_a\n0.000000,0.010\n0.000008,NaN\n0.000016,0.010\n",
        );
        let (report, code) = run(&s(&["lint", &spec, "--trace", &trace])).unwrap();
        assert_eq!(code, 1);
        assert!(report.contains("C010"), "missing C010 in: {report}");
    }

    #[test]
    fn lint_plan_below_vsafe_exits_one_with_c020() {
        let spec = temp_file("spec-for-plan.json", &capybara_spec_json());
        let plan = temp_file(
            "figure5-plan.json",
            &serde_json::to_string(&culpeo_analyze::PlanSpec::figure5_example()).unwrap(),
        );
        let (report, code) = run(&s(&["lint", &spec, "--plan", &plan])).unwrap();
        assert_eq!(code, 1);
        assert!(report.contains("C020"), "missing C020 in: {report}");
    }

    #[test]
    fn lint_json_format_is_parseable() {
        let spec = temp_file("spec-for-json.json", &capybara_spec_json());
        let (report, code) = run(&s(&["lint", &spec, "--format", "json"])).unwrap();
        assert_eq!(code, 0);
        // Schema-2 CLI envelope: the schema-1 report document rides in
        // `data`; `request_id` is a daemon-only field and must be absent.
        let doc = serde_json::parse_value_str(&report).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(serde::Value::as_f64),
            Some(2.0)
        );
        assert!(doc.get("request_id").is_none());
        let data = doc.get("data").expect("lint JSON wraps the report in data");
        assert_eq!(data.get("errors").and_then(serde::Value::as_f64), Some(0.0));
        assert!(data
            .get("diagnostics")
            .and_then(serde::Value::as_array)
            .is_some());
    }

    #[test]
    fn lint_missing_spec_file_is_a_usage_error() {
        assert!(run(&s(&["lint", "/nonexistent/spec.json"])).is_err());
    }

    // -- verify mode ------------------------------------------------------

    #[test]
    fn verify_proves_the_reference_schedule() {
        let spec = temp_file("verify-spec.json", &capybara_spec_json());
        let plan = temp_file(
            "verified-plan.json",
            &serde_json::to_string(&culpeo_analyze::PlanSpec::verified_example()).unwrap(),
        );
        let (report, code) = run(&s(&["verify", &spec, "--plan", &plan])).unwrap();
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("proved"), "{report}");
    }

    #[test]
    fn verify_refutes_an_exhausting_schedule_with_a_witness() {
        let spec = temp_file("verify-spec.json", &capybara_spec_json());
        let mut doomed = culpeo_analyze::PlanSpec::figure5_example();
        doomed.launches[0].energy_mj = 200.0;
        doomed.launches[0].v_delta = 0.3;
        let plan = temp_file("doomed-plan.json", &serde_json::to_string(&doomed).unwrap());
        let (report, code) = run(&s(&["verify", &spec, "--plan", &plan])).unwrap();
        assert_eq!(code, 1);
        assert!(report.contains("REFUTED"), "{report}");
        assert!(report.contains("browns out"), "{report}");
        assert!(report.contains("C040"), "{report}");
    }

    #[test]
    fn verify_json_format_is_parseable() {
        let spec = temp_file("verify-spec.json", &capybara_spec_json());
        let plan = temp_file(
            "unknown-plan.json",
            &serde_json::to_string(&culpeo_analyze::PlanSpec::figure5_example()).unwrap(),
        );
        let (report, code) =
            run(&s(&["verify", &spec, "--plan", &plan, "--format", "json"])).unwrap();
        assert_eq!(code, 1);
        let doc = serde_json::parse_value_str(&report).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(serde::Value::as_f64),
            Some(2.0)
        );
        assert!(doc.get("request_id").is_none());
        let data = doc.get("data").expect("verify JSON wraps the outcome");
        assert_eq!(
            data.get("verdict").and_then(serde::Value::as_str),
            Some("unknown")
        );
        assert!(data.get("unknown").is_some());
    }

    // -- wcec mode --------------------------------------------------------

    /// The three Table III workloads as a `culpeo wcec --tasks` file.
    fn table3_tasks_json() -> String {
        let req = culpeo_api::WcecRequest {
            schema_version: Some(2),
            spec: None,
            tasks: culpeo_wcec::workloads::table3(culpeo_units::Volts::new(2.55))
                .iter()
                .map(culpeo_wcec::to_dto)
                .collect(),
        };
        serde_json::to_string(&req).unwrap()
    }

    #[test]
    fn wcec_certifies_the_table3_workloads() {
        let spec = temp_file("wcec-spec.json", &capybara_spec_json());
        let tasks = temp_file("wcec-tasks.json", &table3_tasks_json());
        let (report, code) = run(&s(&["wcec", &spec, "--tasks", &tasks])).unwrap();
        assert_eq!(code, 0, "{report}");
        assert!(report.contains("3 certified, 0 unknown"), "{report}");
        for task in ["gesture", "ble-report", "mnist"] {
            assert!(report.contains(task), "missing {task} row: {report}");
        }
    }

    #[test]
    fn wcec_json_is_enveloped_and_unknown_exits_one() {
        let spec = temp_file("wcec-spec.json", &capybara_spec_json());
        // An unbounded loop over a costly op cannot certify.
        let mut graph = culpeo_wcec::TaskGraph::new("spin");
        let body = graph.block(
            "poll",
            vec![culpeo_wcec::OpCost::exact("poll", 0.1, 1.0, 5.0)],
        );
        graph.bounded_loop("spin", culpeo_wcec::LoopBound::Unbounded, body);
        let req = culpeo_api::WcecRequest {
            schema_version: Some(2),
            spec: None,
            tasks: vec![culpeo_wcec::to_dto(&graph)],
        };
        let tasks = temp_file("wcec-spin.json", &serde_json::to_string(&req).unwrap());
        let (report, code) =
            run(&s(&["wcec", &spec, "--tasks", &tasks, "--format", "json"])).unwrap();
        assert_eq!(code, 1);
        let doc = serde_json::parse_value_str(&report).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(serde::Value::as_f64),
            Some(2.0)
        );
        assert!(doc.get("request_id").is_none());
        let data = doc.get("data").expect("wcec JSON wraps the response");
        assert_eq!(
            data.get("unknown").and_then(serde::Value::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn wcec_usage_errors() {
        assert!(run(&s(&["wcec"])).is_err());
        assert!(run(&s(&["wcec", "spec.json"])).is_err());
        assert!(run(&s(&["wcec", "spec.json", "--tasks"])).is_err());
        assert!(run(&s(&[
            "wcec",
            "spec.json",
            "--tasks",
            "t.json",
            "--format",
            "yaml"
        ]))
        .is_err());
        assert!(run(&s(&["wcec", "spec.json", "--bogus"])).is_err());
        assert!(run(&s(&["wcec", "/nonexistent/spec.json", "--tasks", "t.json"])).is_err());
    }

    #[test]
    fn verify_usage_errors() {
        assert!(run(&s(&["verify"])).is_err());
        assert!(run(&s(&["verify", "spec.json"])).is_err());
        assert!(run(&s(&["verify", "spec.json", "--plan"])).is_err());
        assert!(run(&s(&[
            "verify",
            "spec.json",
            "--plan",
            "p.json",
            "--format",
            "yaml"
        ]))
        .is_err());
        assert!(run(&s(&["verify", "spec.json", "--bogus"])).is_err());
        assert!(run(&s(&[
            "verify",
            "/nonexistent/spec.json",
            "--plan",
            "p.json"
        ]))
        .is_err());
    }

    // -- --deny-warnings --------------------------------------------------

    #[test]
    fn deny_warnings_fails_a_warning_only_lint() {
        let spec = temp_file("deny-spec.json", &capybara_spec_json());
        // Declare `sense`'s V_safe below its Theorem 1 floor: the plan
        // still proves, but the verifier pass warns (C045).
        let mut plan_spec = culpeo_analyze::PlanSpec::verified_example();
        plan_spec.launches[0].v_safe = Some(1.9);
        let plan = temp_file(
            "warned-plan.json",
            &serde_json::to_string(&plan_spec).unwrap(),
        );
        let (report, lax) = run(&s(&["lint", &spec, "--plan", &plan])).unwrap();
        assert_eq!(lax, 0, "{report}");
        assert!(report.contains("C045"), "{report}");
        let (_, strict) = run(&s(&["lint", &spec, "--plan", &plan, "--deny-warnings"])).unwrap();
        assert_eq!(strict, 1);
    }
}

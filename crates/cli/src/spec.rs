//! The JSON power-system specification the CLI consumes.
//!
//! The types and validation now live in `culpeo-api` (they moved there
//! from `culpeo-analyze` when the daemon arrived) so the lint battery,
//! the harness pre-flight, the daemon, and this CLI share exactly one
//! parser and validator; this module re-exports them under their
//! historical home and keeps the CLI-facing contract tests.

pub use culpeo_api::spec::SystemSpec;

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_analyze::SpecError;

    #[test]
    fn capybara_defaults_still_construct() {
        let model = SystemSpec::capybara().into_model().unwrap();
        assert!(model
            .capacitance()
            .approx_eq(culpeo_units::Farads::from_milli(45.0), 1e-12));
    }

    #[test]
    fn both_esr_forms_is_an_error() {
        let mut spec = SystemSpec::capybara();
        spec.esr_curve = Some(vec![(10.0, 4.0)]);
        assert_eq!(spec.into_model(), Err(SpecError::EsrAmbiguous));
    }

    #[test]
    fn neither_esr_form_is_an_error() {
        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = None;
        spec.esr_curve = None;
        assert_eq!(spec.into_model(), Err(SpecError::EsrMissing));
    }

    #[test]
    fn unsorted_esr_curve_names_the_index() {
        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = None;
        spec.esr_curve = Some(vec![(100.0, 4.0), (10.0, 5.0)]);
        assert_eq!(
            spec.into_model(),
            Err(SpecError::EsrCurveUnsorted { index: 1 })
        );
    }

    #[test]
    fn duplicate_esr_frequency_names_the_index() {
        let mut spec = SystemSpec::capybara();
        spec.esr_ohms = None;
        spec.esr_curve = Some(vec![(10.0, 4.0), (10.0, 4.0)]);
        assert_eq!(
            spec.into_model(),
            Err(SpecError::EsrCurveDuplicate { index: 1 })
        );
    }
}

//! Runs the seeded chaos battery and records its report + timing
//! telemetry alongside the figure artifacts.
//!
//! Seed comes from `CULPEO_CHAOS_SEED` (default 42); thread count from
//! `CULPEO_THREADS` as everywhere else. The report JSON is byte-identical
//! for a given seed at any thread count. Exits 1 if any scenario failed.

use culpeo_harness::chaos;
use culpeo_harness::exec::Sweep;

fn main() {
    let seed = std::env::var("CULPEO_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(chaos::DEFAULT_SEED);
    let (report, telemetry) = chaos::run_timed(Sweep::from_env(), seed);
    chaos::print_table(&report);
    culpeo_bench::write_json_with_telemetry("chaos_battery", &report, &telemetry);
    std::process::exit(i32::from(!report.all_passed()));
}

//! Runs the WCEC battery — static certificates over the roster plus the
//! admission-gate scenario — and records its report + timing telemetry
//! alongside the figure artifacts.
//!
//! Thread count comes from `CULPEO_THREADS` as everywhere else; the
//! roster is fixed, so the report is byte-identical across runs and
//! thread counts (`scripts/wcec.sh` gates on exactly that). Exits 1 if
//! any case missed its pinned verdict or the admission scenario failed
//! any of its four legs.

use culpeo_harness::exec::Sweep;
use culpeo_harness::wcec;

fn main() {
    let (report, telemetry) = wcec::run_timed(Sweep::from_env());
    wcec::print_table(&report);
    culpeo_bench::write_json_with_telemetry("wcec_battery", &report, &telemetry);
    std::process::exit(i32::from(!report.all_passed()));
}

//! Regenerates the §II-D decoupling-capacitance ablation.

use culpeo_harness::exec::Sweep;

fn main() {
    let (rows, telemetry) = culpeo_harness::decoupling::run_timed(Sweep::from_env());
    culpeo_harness::decoupling::print_table(&rows);
    culpeo_bench::write_json_with_telemetry("ablation_decoupling", &rows, &telemetry);
}

//! Regenerates the §II-D decoupling-capacitance ablation.

fn main() {
    let rows = culpeo_harness::decoupling::run();
    culpeo_harness::decoupling::print_table(&rows);
    culpeo_bench::write_json("ablation_decoupling", &rows);
}

//! Regenerates Figure 3: volume vs ESR for 45 mF banks per technology.

fn main() {
    let rows = culpeo_harness::fig03::run();
    culpeo_harness::fig03::print_table(&rows);
    culpeo_bench::write_json("fig03_capacitor_trends", &rows);
}

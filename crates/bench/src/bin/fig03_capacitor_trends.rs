//! Regenerates Figure 3: volume vs ESR for 45 mF banks per technology.

use culpeo_harness::exec::PhaseClock;

fn main() {
    let mut clock = PhaseClock::new(1);
    let rows = culpeo_harness::fig03::run();
    clock.mark("run");
    culpeo_harness::fig03::print_table(&rows);
    culpeo_bench::write_json_with_telemetry("fig03_capacitor_trends", &rows, &clock.finish());
}

//! Regenerates Figure 4: ESR drop kills the device with energy remaining.

fn main() {
    let rows = culpeo_harness::fig04::run();
    culpeo_harness::fig04::print_table(&rows);
    culpeo_bench::write_json("fig04_lora_shutdown", &rows);
}

//! Regenerates Figure 4: ESR drop kills the device with energy remaining.

use culpeo_harness::exec::PhaseClock;

fn main() {
    let mut clock = PhaseClock::new(1);
    let rows = culpeo_harness::fig04::run();
    clock.mark("run");
    culpeo_harness::fig04::print_table(&rows);
    culpeo_bench::write_json_with_telemetry("fig04_lora_shutdown", &rows, &clock.finish());
}

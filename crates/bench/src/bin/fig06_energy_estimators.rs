//! Regenerates Figure 6: V_safe error of energy-only estimators.

use culpeo_harness::exec::Sweep;

fn main() {
    let (rows, telemetry) = culpeo_harness::fig06::run_timed(Sweep::from_env());
    culpeo_harness::fig06::print_table(&rows);
    culpeo_bench::write_json_with_telemetry("fig06_energy_estimators", &rows, &telemetry);
}

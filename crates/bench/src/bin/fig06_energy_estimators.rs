//! Regenerates Figure 6: V_safe error of energy-only estimators.

fn main() {
    let rows = culpeo_harness::fig06::run();
    culpeo_harness::fig06::print_table(&rows);
    culpeo_bench::write_json("fig06_energy_estimators", &rows);
}

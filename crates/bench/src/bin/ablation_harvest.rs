//! Regenerates the §IV-D harvesting-assumption ablation.

use culpeo_harness::exec::Sweep;

fn main() {
    let (rows, telemetry) = culpeo_harness::harvest::run_timed(Sweep::from_env());
    culpeo_harness::harvest::print_table(&rows);
    culpeo_bench::write_json_with_telemetry("ablation_harvest", &rows, &telemetry);
}

//! Regenerates the §IV-D harvesting-assumption ablation.

fn main() {
    let rows = culpeo_harness::harvest::run();
    culpeo_harness::harvest::print_table(&rows);
    culpeo_bench::write_json("ablation_harvest", &rows);
}

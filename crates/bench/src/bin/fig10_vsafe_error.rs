//! Regenerates Figure 10: V_safe error of CatNap and the Culpeo variants.

use culpeo_harness::exec::Sweep;

fn main() {
    let (rows, telemetry) = culpeo_harness::fig10::run_timed(Sweep::from_env());
    culpeo_harness::fig10::print_table(&rows);
    println!("\nPer-system summary (unsafe cells, worst err %, mean err %):");
    for (system, unsafe_cells, worst, mean) in culpeo_harness::fig10::summarize(&rows) {
        println!("  {system:<16} {unsafe_cells:>3} {worst:>8.1} {mean:>8.1}");
    }
    culpeo_bench::write_json_with_telemetry("fig10_vsafe_error", &rows, &telemetry);
}

//! Produces `results/store_battery.json`: ingest throughput per
//! durability mode and crash-recovery latency for the telemetry store —
//! the receipts behind EXPERIMENTS.md's "durable telemetry" table.
//!
//! The throughput and latency columns are wall-clock by design; the
//! record counts, recovered counts, and torn-byte accounting in the same
//! rows are exact. Pass `--quick` for a CI-sized run.

use culpeo_harness::store::{self, StoreBatteryConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        StoreBatteryConfig {
            fsync_records: 200,
            batch_records: 1_600,
            batch_size: 64,
            manual_records: 20_000,
            seed: 42,
        }
    } else {
        StoreBatteryConfig::default()
    };
    let (report, telemetry) = store::run_timed(&config);
    print!("{}", store::print_table(&report));
    culpeo_bench::write_json_with_telemetry("store_battery", &report, &telemetry);
}

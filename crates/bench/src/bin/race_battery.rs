//! Runs the interleaving model-checker battery and records its report +
//! timing telemetry alongside the figure artifacts.
//!
//! The report half of `results/race_battery.json` is deterministic in
//! `(seed, preemptions)`; wall-clock lives only in the telemetry
//! envelope. Exits 1 unless every invariant holds AND every mutant is
//! refuted — the same contract as `culpeo race`.

use culpeo_harness::race;
use culpeo_race::battery::{render_table, BatteryConfig};

fn main() {
    let config = BatteryConfig::default();
    let (report, telemetry) = race::run_timed(&config);
    print!("{}", render_table(&report));
    culpeo_bench::write_json_with_telemetry("race_battery", &report, &telemetry);
    std::process::exit(i32::from(!report.passed()));
}

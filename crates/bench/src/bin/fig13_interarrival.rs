//! Regenerates Figure 13: event capture vs interarrival rate.

fn main() {
    let rows = culpeo_harness::fig13::run();
    culpeo_harness::fig13::print_table(&rows);
    culpeo_bench::write_json("fig13_interarrival", &rows);
}

//! Regenerates Figure 13: event capture vs interarrival rate.

use culpeo_harness::exec::Sweep;
use culpeo_units::Seconds;

fn main() {
    let (rows, telemetry) =
        culpeo_harness::fig13::run_timed(Sweep::from_env(), Seconds::new(300.0), 3);
    culpeo_harness::fig13::print_table(&rows);
    culpeo_bench::write_json_with_telemetry("fig13_interarrival", &rows, &telemetry);
}

//! Regenerates the §V-B reconfigurable-energy-storage experiment.

fn main() {
    let rows = culpeo_harness::reconfig::run();
    culpeo_harness::reconfig::print_table(&rows);
    culpeo_bench::write_json("ablation_reconfig", &rows);
}

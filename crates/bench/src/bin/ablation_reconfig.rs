//! Regenerates the §V-B reconfigurable-energy-storage experiment.

use culpeo_harness::exec::Sweep;

fn main() {
    let (rows, telemetry) = culpeo_harness::reconfig::run_timed(Sweep::from_env());
    culpeo_harness::reconfig::print_table(&rows);
    culpeo_bench::write_json_with_telemetry("ablation_reconfig", &rows, &telemetry);
}

//! Regenerates the §IV-C aging ablation.

use culpeo_harness::exec::Sweep;

fn main() {
    let (rows, telemetry) = culpeo_harness::aging::run_timed(Sweep::from_env());
    culpeo_harness::aging::print_table(&rows);
    culpeo_bench::write_json_with_telemetry("ablation_aging", &rows, &telemetry);
}

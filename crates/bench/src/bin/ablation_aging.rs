//! Regenerates the §IV-C aging ablation.

fn main() {
    let rows = culpeo_harness::aging::run();
    culpeo_harness::aging::print_table(&rows);
    culpeo_bench::write_json("ablation_aging", &rows);
}

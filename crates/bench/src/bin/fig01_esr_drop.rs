//! Regenerates Figure 1(b): ESR drop and rebound on a voltage trace.

use culpeo_harness::exec::PhaseClock;

fn main() {
    let mut clock = PhaseClock::new(1);
    let fig = culpeo_harness::fig01::run();
    clock.mark("run");
    culpeo_harness::fig01::print_table(&fig);
    culpeo_bench::write_json_with_telemetry("fig01_esr_drop", &fig, &clock.finish());
}

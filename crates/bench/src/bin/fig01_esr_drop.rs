//! Regenerates Figure 1(b): ESR drop and rebound on a voltage trace.

fn main() {
    let fig = culpeo_harness::fig01::run();
    culpeo_harness::fig01::print_table(&fig);
    culpeo_bench::write_json("fig01_esr_drop", &fig);
}

//! Regenerates Figure 11: V_safe and V_min for real peripherals.

use culpeo_harness::exec::Sweep;

fn main() {
    let (rows, telemetry) = culpeo_harness::fig11::run_timed(Sweep::from_env());
    culpeo_harness::fig11::print_table(&rows);
    culpeo_bench::write_json_with_telemetry("fig11_peripherals", &rows, &telemetry);
}

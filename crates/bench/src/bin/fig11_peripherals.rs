//! Regenerates Figure 11: V_safe and V_min for real peripherals.

fn main() {
    let rows = culpeo_harness::fig11::run();
    culpeo_harness::fig11::print_table(&rows);
    culpeo_bench::write_json("fig11_peripherals", &rows);
}

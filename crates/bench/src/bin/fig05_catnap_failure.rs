//! Regenerates Figure 5: CatNap's feasibility verdict vs plant reality.

fn main() {
    let fig = culpeo_harness::fig05::run();
    culpeo_harness::fig05::print_table(&fig);
    culpeo_bench::write_json("fig05_catnap_failure", &fig);
}

//! Regenerates Figure 5: CatNap's feasibility verdict vs plant reality.

use culpeo_harness::exec::Sweep;

fn main() {
    let (fig, telemetry) = culpeo_harness::fig05::run_timed(Sweep::from_env());
    culpeo_harness::fig05::print_table(&fig);
    culpeo_bench::write_json_with_telemetry("fig05_catnap_failure", &fig, &telemetry);
}

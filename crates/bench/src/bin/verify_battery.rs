//! Runs the static-verification battery and records its report + timing
//! telemetry alongside the figure artifacts.
//!
//! Thread count comes from `CULPEO_THREADS` as everywhere else; the
//! roster is fixed, so the report is byte-identical across runs and
//! thread counts. Exits 1 if any case missed its pinned verdict or a
//! refuted counterexample failed to brown out on replay.

use culpeo_harness::exec::Sweep;
use culpeo_harness::verify;

fn main() {
    let (report, telemetry) = verify::run_timed(Sweep::from_env());
    verify::print_table(&report);
    culpeo_bench::write_json_with_telemetry("verify_battery", &report, &telemetry);
    std::process::exit(i32::from(!report.all_passed()));
}

//! Regenerates the §V-B adaptive re-profiling experiment: a LoRa beacon
//! under a fading sun, with and without the charge-rate-triggered
//! re-profiling policy.

use culpeo::PowerSystemModel;
use culpeo_harness::exec::PhaseClock;
use culpeo_loadgen::peripheral::LoRaRadio;
use culpeo_sched::adaptive::{run_beacon, AdaptiveConfig};
use culpeo_units::{Seconds, Watts};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    slots: u32,
    sent: u32,
    brownouts: u32,
    reprofiles: u32,
}

fn main() {
    let mut clock = PhaseClock::new(1);
    let model = PowerSystemModel::capybara();
    let task = LoRaRadio::default().profile();
    let schedule = [
        (Seconds::ZERO, Watts::from_milli(20.0)),
        (Seconds::new(60.0), Watts::from_milli(8.0)),
        (Seconds::new(120.0), Watts::from_milli(1.5)),
    ];
    let period = Seconds::new(8.0);
    let duration = Seconds::new(240.0);

    let mut rows = Vec::new();
    for (label, adaptive) in [
        ("static-profile", None),
        ("adaptive", Some(AdaptiveConfig::default())),
    ] {
        let stats = run_beacon(&task, &model, &schedule, period, duration, adaptive);
        rows.push(Row {
            policy: label.to_string(),
            slots: stats.slots,
            sent: stats.sent,
            brownouts: stats.brownouts,
            reprofiles: stats.reprofiles,
        });
    }
    clock.mark("run");

    println!("§V-B adaptive re-profiling: LoRa beacon under a fading sun");
    println!(
        "{:<16} {:>7} {:>7} {:>10} {:>11}",
        "policy", "slots", "sent", "brownouts", "reprofiles"
    );
    for r in &rows {
        println!(
            "{:<16} {:>7} {:>7} {:>10} {:>11}",
            r.policy, r.slots, r.sent, r.brownouts, r.reprofiles
        );
    }
    culpeo_bench::write_json_with_telemetry("ablation_adaptive", &rows, &clock.finish());
}

//! Produces `results/perf_summary.json`: the wall-clock receipts behind
//! this repo's execution-layer and hot-loop optimisations.
//!
//! Two baselines are reported:
//!
//! * **Pre-PR baseline** — the wall-clock of the seed revision's actual
//!   `fig10_vsafe_error` binary, measured by `scripts/bench.sh` (it builds
//!   the repo's root commit in a worktree) and passed in via
//!   `--baseline-seconds`. This is the honest before/after: it includes
//!   the node-solver rewrite, the probe settle-skip, and the execution
//!   layer. Without the flag this column is absent.
//! * **Execution-layer baseline** — an in-process re-run of Figure 10
//!   through a faithful reconstruction of the seed *execution mode*
//!   (per-step binary-search load lookup, a `VoltageTrace` allocated and
//!   fed inside every bisection probe, a full rebound settle after each
//!   completing probe, no verdict memoisation) on top of today's solver.
//!   Comparing it to the shipping driver isolates the
//!   summary-only + cursor + settle-skip + memoisation win from the
//!   physics-layer speedups, as both columns step the identical plant.
//!
//! Pass `--quick` to run a 6-load subset (CI-friendly); the full run
//! sweeps all 18 Figure 10 loads.

use std::time::Instant;

use culpeo::baseline::vsafe_from_voltage_pair;
use culpeo::PowerSystemModel;
use culpeo_harness::exec::Sweep;
use culpeo_harness::fig10::{self, FIG10_SYSTEMS};
use culpeo_harness::fig11::{self, FIG11_SYSTEMS};
use culpeo_harness::ground_truth::TOLERANCE;
use culpeo_harness::systems::VsafeSystem;
use culpeo_harness::{ground_truth, reference_plant};
use culpeo_loadgen::synthetic::fig10_loads;
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{Kernel, MonitorState, RunConfig, VoltageSample, VoltageTrace};
use culpeo_units::{Quantity as _, Seconds, Volts};
use serde::Serialize;

/// Wall-clock repetitions per measurement; the minimum is reported so a
/// noisy neighbour on shared hardware cannot inflate a column.
const REPS: usize = 3;

/// Minimum wall-clock of [`REPS`] runs of `work`.
fn time_min(mut work: impl FnMut()) -> f64 {
    (0..REPS)
        .map(|_| {
            let started = Instant::now();
            work();
            started.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// The receipts written to `results/perf_summary.json`.
#[derive(Debug, Serialize)]
struct PerfSummary {
    /// True when `--quick` trimmed the load set.
    quick: bool,
    /// Number of Figure 10 loads measured.
    loads: usize,
    /// Worker threads used by the parallel measurement.
    threads: usize,
    /// The seed revision's own fig10 binary, timed by `scripts/bench.sh`
    /// (absent when `--baseline-seconds` was not supplied).
    pre_pr_fig10_seconds: Option<f64>,
    /// Seed *execution mode* re-run in-process on today's solver: per-step
    /// load search, per-probe trace, per-probe settle, no memoisation.
    exec_baseline_fig10_seconds: f64,
    /// Optimized Figure 10, serial, cold verdict cache.
    optimized_fig10_serial_seconds: f64,
    /// Optimized Figure 10 on `CULPEO_THREADS` workers, cold cache.
    optimized_fig10_parallel_seconds: f64,
    /// Optimized Figure 10, serial, warm verdict cache (the repeated-run
    /// cost every test-suite invocation pays).
    warm_cache_fig10_seconds: f64,
    /// The §VI-A ground-truth bisection over the full load set with the
    /// optimized driver but every probe forced onto the fixed-step kernel.
    fixed_step_truth_seconds: f64,
    /// The same serial bisection with probes on the analytic event kernel.
    event_kernel_truth_seconds: f64,
    /// The batched lock-step bisection (`true_vsafe_batch`, 8-wide lanes),
    /// cold cache.
    lanes_batch_truth_seconds: f64,
    /// `fixed_step_truth / event_kernel_truth` — the event-kernel win on
    /// an otherwise identical serial driver.
    event_kernel_speedup: f64,
    /// `pre_pr / optimized_parallel` — the headline before/after (absent
    /// without `--baseline-seconds`).
    fig10_speedup_vs_pre_pr: Option<f64>,
    /// `exec_baseline / optimized_serial` — the serial
    /// summary-only + cursor + settle-skip + memoisation win, isolated
    /// from the solver changes.
    serial_exec_layer_speedup: f64,
    /// `exec_baseline / warm_cache`.
    warm_cache_speedup: f64,
    /// Figure 11 with every prediction and dispatch sim run per cell on
    /// the fixed-step kernel with trace recording and the full rebound
    /// settle — the pre-batching driver, reconstructed in-process.
    fig11_scalar_seconds: f64,
    /// The shipping Figure 11 driver: Energy-V profiling sims and all
    /// dispatch trials lane-packed 8-wide on the event kernel.
    fig11_lanes_seconds: f64,
    /// `fig11_scalar / fig11_lanes` — the profiler-sim batching win.
    fig11_lanes_speedup: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let pre_pr_fig10_seconds = args
        .iter()
        .position(|a| a == "--baseline-seconds")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--baseline-seconds takes a float"));
    let mut loads = fig10_loads();
    if quick {
        loads.truncate(6);
    }

    let mut baseline_rows = 0;
    let exec_baseline_fig10_seconds = time_min(|| {
        ground_truth::clear_truth_cache();
        baseline_rows = exec_baseline_fig10(&loads);
    });

    let mut serial_rows = 0;
    let optimized_fig10_serial_seconds = time_min(|| {
        ground_truth::clear_truth_cache();
        serial_rows = fig10::run_on(Sweep::serial(), &loads).0.len();
    });
    assert_eq!(
        baseline_rows, serial_rows,
        "baseline emulation must cover the same grid"
    );

    let threads = Sweep::from_env().threads();
    let mut parallel_rows = 0;
    let optimized_fig10_parallel_seconds = time_min(|| {
        ground_truth::clear_truth_cache();
        parallel_rows = fig10::run_on(Sweep::from_env(), &loads).0.len();
    });
    assert_eq!(serial_rows, parallel_rows);

    // Cache is warm from the run above; measure the repeated-run cost.
    let mut warm_rows = 0;
    let warm_cache_fig10_seconds = time_min(|| {
        warm_rows = fig10::run_on(Sweep::serial(), &loads).0.len();
    });
    assert_eq!(serial_rows, warm_rows);

    // Kernel-isolated receipt: the identical serial bisection driver with
    // fixed-step probes vs event-kernel probes, plus the 8-wide batch.
    let fixed_step_truth_seconds = time_min(|| kernel_truth(&loads, Kernel::FixedStep));
    let event_kernel_truth_seconds = time_min(|| kernel_truth(&loads, Kernel::Event));
    let lanes_batch_truth_seconds = time_min(|| {
        ground_truth::clear_truth_cache();
        let _ = ground_truth::true_vsafe_batch("reference", &reference_plant, &loads);
    });
    ground_truth::clear_truth_cache();

    // Profiler-sim batching receipt: Figure 11 per-cell on the fixed-step
    // kernel (the pre-batching driver) vs the shipping lane-packed driver.
    let mut fig11_scalar_rows = 0;
    let fig11_scalar_seconds = time_min(|| fig11_scalar_rows = fig11_scalar_baseline());
    let mut fig11_lanes_rows = 0;
    let fig11_lanes_seconds = time_min(|| {
        fig11_lanes_rows = fig11::run_timed(Sweep::serial()).0.len();
    });
    assert_eq!(
        fig11_scalar_rows, fig11_lanes_rows,
        "the scalar fig11 baseline must cover the same grid"
    );

    let summary = PerfSummary {
        quick,
        loads: loads.len(),
        threads,
        pre_pr_fig10_seconds,
        exec_baseline_fig10_seconds,
        optimized_fig10_serial_seconds,
        optimized_fig10_parallel_seconds,
        warm_cache_fig10_seconds,
        fixed_step_truth_seconds,
        event_kernel_truth_seconds,
        lanes_batch_truth_seconds,
        event_kernel_speedup: fixed_step_truth_seconds / event_kernel_truth_seconds,
        fig10_speedup_vs_pre_pr: pre_pr_fig10_seconds.map(|b| b / optimized_fig10_parallel_seconds),
        serial_exec_layer_speedup: exec_baseline_fig10_seconds / optimized_fig10_serial_seconds,
        warm_cache_speedup: exec_baseline_fig10_seconds / warm_cache_fig10_seconds,
        fig11_scalar_seconds,
        fig11_lanes_seconds,
        fig11_lanes_speedup: fig11_scalar_seconds / fig11_lanes_seconds,
    };

    println!("Figure 10 wall-clock ({} loads):", summary.loads);
    if let Some(b) = summary.pre_pr_fig10_seconds {
        println!(
            "  {:<42} {:>8.3} s",
            "pre-PR baseline (seed binary, serial)", b
        );
    }
    println!(
        "  {:<42} {:>8.3} s",
        "exec-layer baseline (seed mode, serial)", summary.exec_baseline_fig10_seconds
    );
    println!(
        "  {:<42} {:>8.3} s",
        "optimized (serial, cold cache)", summary.optimized_fig10_serial_seconds
    );
    println!(
        "  {:<42} {:>8.3} s",
        format!("optimized ({} threads, cold cache)", summary.threads),
        summary.optimized_fig10_parallel_seconds
    );
    println!(
        "  {:<42} {:>8.3} s",
        "optimized (serial, warm cache)", summary.warm_cache_fig10_seconds
    );
    println!(
        "  {:<42} {:>8.3} s",
        "ground truth, fixed-step probes", summary.fixed_step_truth_seconds
    );
    println!(
        "  {:<42} {:>8.3} s",
        "ground truth, event-kernel probes", summary.event_kernel_truth_seconds
    );
    println!(
        "  {:<42} {:>8.3} s",
        "ground truth, 8-wide lanes batch", summary.lanes_batch_truth_seconds
    );
    println!(
        "  event kernel vs fixed step: {:.2}x",
        summary.event_kernel_speedup
    );
    if let Some(s) = summary.fig10_speedup_vs_pre_pr {
        println!(
            "  speedup vs pre-PR baseline ({} threads): {:.2}x",
            summary.threads, s
        );
    }
    println!(
        "  serial execution-layer speedup: {:.2}x cold, {:.2}x warm",
        summary.serial_exec_layer_speedup, summary.warm_cache_speedup
    );
    println!("Figure 11 wall-clock (profiler-sim batching):");
    println!(
        "  {:<42} {:>8.3} s",
        "scalar per-cell (fixed-step, traced)", summary.fig11_scalar_seconds
    );
    println!(
        "  {:<42} {:>8.3} s",
        "lane-packed (event kernel, 8-wide)", summary.fig11_lanes_seconds
    );
    println!(
        "  profiler-sim batching speedup: {:.2}x",
        summary.fig11_lanes_speedup
    );

    culpeo_bench::write_json("perf_summary", &summary);
}

/// Seed-style Figure 10: same grid, same physics, seed execution mode.
/// Returns the number of rows produced (must match the driver's).
fn exec_baseline_fig10(loads: &[LoadProfile]) -> usize {
    let model = PowerSystemModel::characterize(&reference_plant);
    let mut rows = 0;
    for load in loads {
        let Some(truth) = baseline_true_vsafe(load) else {
            continue;
        };
        for system in FIG10_SYSTEMS {
            if let Some(predicted) = system.predict(load, &model, &reference_plant) {
                // Same row arithmetic as the driver; the value is dropped
                // because only the wall-clock matters here.
                let _ = predicted - truth;
                rows += 1;
            }
        }
    }
    rows
}

/// The §VI-A bisection over every load with probes pinned to `kernel`,
/// bypassing the verdict cache. Same candidate sequence as the shipping
/// driver; only the stepping kernel differs between invocations.
fn kernel_truth(loads: &[LoadProfile], kernel: Kernel) {
    for load in loads {
        let reference = reference_plant();
        let v_off = reference.monitor().v_off();
        let v_high = reference.monitor().v_high();
        let probe = |v_start: Volts| {
            let mut sys = reference_plant();
            sys.set_buffer_voltage(v_start);
            sys.force_output_enabled();
            let cfg = RunConfig::probe(load.duration()).with_kernel(kernel);
            sys.run_profile(load, cfg).completed()
        };
        if !probe(v_high) {
            continue;
        }
        let mut lo = v_off;
        let mut hi = v_high;
        while (hi - lo).get() > TOLERANCE.get() {
            let mid = lo.lerp(hi, 0.5);
            if probe(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        std::hint::black_box(hi);
    }
}

/// Pre-batching Figure 11: the same (peripheral × system) grid, predicted
/// and dispatched one cell at a time with every simulation on the
/// fixed-step kernel, recording a trace and waiting out the full rebound
/// settle — exactly the shape the driver had before the Energy-V and
/// dispatch sims were lane-packed. Returns the number of rows produced.
fn fig11_scalar_baseline() -> usize {
    let model = PowerSystemModel::characterize(&reference_plant);
    let loads = fig11::peripherals();
    let mut rows = 0;
    for load in &loads {
        for system in FIG11_SYSTEMS {
            let v_safe = match system {
                VsafeSystem::EnergyV => {
                    let mut sys = fresh_full_reference();
                    let out = sys.run_profile(load, RunConfig::default());
                    if !out.completed() {
                        continue;
                    }
                    vsafe_from_voltage_pair(out.v_start, out.v_final, &model)
                }
                _ => match system.predict(load, &model, &reference_plant) {
                    Some(v) => v,
                    None => continue,
                },
            };
            let mut sys = reference_plant();
            let v_start = (v_safe + TOLERANCE).min(model.v_high());
            sys.set_buffer_voltage(v_start);
            sys.force_output_enabled();
            let out = sys.run_profile(load, RunConfig::default());
            std::hint::black_box((out.v_min, out.completed()));
            rows += 1;
        }
    }
    rows
}

/// A reference plant charged to `V_high` with its output latched on — the
/// profiling-run start state.
fn fresh_full_reference() -> culpeo_powersim::PowerSystem {
    let mut sys = reference_plant();
    let v_high = sys.monitor().v_high();
    sys.set_buffer_voltage(v_high);
    sys.force_output_enabled();
    sys
}

/// The §VI-A bisection with every probe run in the seed execution mode.
fn baseline_true_vsafe(load: &LoadProfile) -> Option<Volts> {
    let reference = reference_plant();
    let v_off = reference.monitor().v_off();
    let v_high = reference.monitor().v_high();

    if !baseline_probe(load, v_high) {
        return None;
    }
    let mut lo = v_off;
    let mut hi = v_high;
    while (hi - lo).get() > TOLERANCE.get() {
        let mid = lo.lerp(hi, 0.5);
        if baseline_probe(load, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// One completion probe exactly as the seed ran it: binary-search load
/// lookup each step, a stride-decimated trace allocated and pushed every
/// step, a full rebound settle afterwards.
fn baseline_probe(load: &LoadProfile, v_start: Volts) -> bool {
    let mut sys = reference_plant();
    sys.set_buffer_voltage(v_start);
    sys.force_output_enabled();
    let dt = if load.duration().get() > 1.0 {
        Seconds::from_micro(50.0)
    } else {
        Seconds::from_micro(10.0)
    };
    let cfg = RunConfig {
        dt,
        record_stride: usize::MAX,
        ..RunConfig::default()
    };

    let steps = load.duration().steps(dt).max(1);
    let mut trace = VoltageTrace::new(cfg.record_stride);
    let mut brownout = false;
    let mut collapsed = false;
    for k in 0..steps {
        let offset = Seconds::new(k as f64 * dt.get());
        let i = load.current_at(offset);
        let out = sys.step(i, dt);
        trace.push(VoltageSample {
            t: out.t,
            v_node: out.v_node,
            i_in: out.i_in,
        });
        if out.collapsed {
            collapsed = true;
        }
        if (i.get() > 0.0 && !out.delivering) || out.monitor == MonitorState::Recharging {
            brownout = true;
            break;
        }
    }
    let _ = trace.minimum();
    if !brownout {
        let _ = sys.settle(cfg);
    }
    !brownout && !collapsed
}

//! Regenerates Figure 12: event capture for PS / RR / NMR under CatNap
//! and Culpeo scheduling (3 × 5-minute trials per cell).

use culpeo_harness::exec::Sweep;
use culpeo_harness::fig12::{TRIALS, TRIAL_DURATION};

fn main() {
    let (rows, telemetry) =
        culpeo_harness::fig12::run_timed(Sweep::from_env(), TRIAL_DURATION, TRIALS);
    culpeo_harness::fig12::print_table(&rows);
    culpeo_bench::write_json_with_telemetry("fig12_event_capture", &rows, &telemetry);
}

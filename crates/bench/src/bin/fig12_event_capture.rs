//! Regenerates Figure 12: event capture for PS / RR / NMR under CatNap
//! and Culpeo scheduling (3 × 5-minute trials per cell).

fn main() {
    let rows = culpeo_harness::fig12::run();
    culpeo_harness::fig12::print_table(&rows);
    culpeo_bench::write_json("fig12_event_capture", &rows);
}

//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary prints a human-readable table (via its harness module) and
//! drops the raw rows as JSON under `results/`, so EXPERIMENTS.md entries
//! are regenerable and diffable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Writes `rows` as pretty JSON to `results/<name>.json` (creating the
/// directory if needed) and reports the path on stdout.
///
/// # Panics
///
/// Panics if the filesystem refuses the write — a figure run with no
/// persisted data is not a successful run.
pub fn write_json<T: Serialize>(name: &str, rows: &T) {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(rows).expect("serialise figure rows");
    fs::write(&path, json).expect("write figure data");
    println!("\n[data written to {}]", path.display());
}

/// The `results/` directory at the workspace root (falling back to the
/// current directory when run from elsewhere).
fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map_or_else(|| PathBuf::from("results"), |root| root.join("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_workspace_results() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn write_json_roundtrip() {
        #[derive(Serialize)]
        struct Row {
            x: u32,
        }
        write_json("self-test", &vec![Row { x: 1 }, Row { x: 2 }]);
        let path = results_dir().join("self-test.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"x\": 1"));
        std::fs::remove_file(path).ok();
    }
}

//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary prints a human-readable table (via its harness module) and
//! drops the raw rows as JSON under `results/`, so EXPERIMENTS.md entries
//! are regenerable and diffable. Every written document is an object
//! stamped with the workspace-wide `"schema_version"` (owned by
//! `culpeo-api`), so downstream tooling can detect envelope changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

use culpeo_exec::Telemetry;
use serde::Serialize;

/// Writes `{"schema_version": …, "rows": …}` as pretty JSON to
/// `results/<name>.json` (creating the directory if needed) and reports
/// the path on stdout.
///
/// # Panics
///
/// Panics if the filesystem refuses the write — a figure run with no
/// persisted data is not a successful run.
pub fn write_json<T: Serialize>(name: &str, rows: &T) {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(format!("{name}.json"));
    let rows_json = serde_json::to_string_pretty(rows).expect("serialise figure rows");
    let json = format!(
        "{{\n  \"schema_version\": {},\n  \"rows\": {}\n}}",
        culpeo_api::SCHEMA_VERSION,
        indent_tail(&rows_json)
    );
    fs::write(&path, json).expect("write figure data");
    println!("\n[data written to {}]", path.display());
}

/// Writes `{"schema_version": …, "telemetry": …, "rows": …}` as pretty
/// JSON to `results/<name>.json` and echoes the phase timings on stdout.
///
/// The telemetry block records wall-clock per phase and the worker-thread
/// count, so every regenerated figure carries its own runtime receipt.
/// The `rows` value is serialised exactly as [`write_json`] would — the
/// determinism contract (identical rows at any thread count) applies to
/// it unchanged.
///
/// # Panics
///
/// Panics if serialisation or the filesystem write fails.
pub fn write_json_with_telemetry<T: Serialize>(name: &str, rows: &T, telemetry: &Telemetry) {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(format!("{name}.json"));
    let rows_json = serde_json::to_string_pretty(rows).expect("serialise figure rows");
    let tele_json = serde_json::to_string_pretty(telemetry).expect("serialise telemetry");
    // Splice the two pretty documents into one object, re-indenting the
    // nested bodies so the composite stays readable.
    let json = format!(
        "{{\n  \"schema_version\": {},\n  \"telemetry\": {},\n  \"rows\": {}\n}}",
        culpeo_api::SCHEMA_VERSION,
        indent_tail(&tele_json),
        indent_tail(&rows_json)
    );
    fs::write(&path, json).expect("write figure data");
    print_telemetry(telemetry);
    println!("[data written to {}]", path.display());
}

/// Prints the phase-timing table a binary just recorded.
pub fn print_telemetry(telemetry: &Telemetry) {
    println!(
        "\n[timing: {:.2} s total on {} thread(s)]",
        telemetry.total_seconds, telemetry.threads
    );
    for phase in &telemetry.phases {
        println!("[  {:<28} {:>8.2} s]", phase.name, phase.seconds);
    }
}

fn indent_tail(s: &str) -> String {
    s.replace('\n', "\n  ")
}

/// The `results/` directory at the workspace root (falling back to the
/// current directory when run from elsewhere).
fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map_or_else(|| PathBuf::from("results"), |root| root.join("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_workspace_results() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn write_json_roundtrip() {
        use serde_json::Value;

        #[derive(Serialize)]
        struct Row {
            x: u32,
        }
        write_json("self-test", &vec![Row { x: 1 }, Row { x: 2 }]);
        let path = results_dir().join("self-test.json");
        let text = std::fs::read_to_string(&path).unwrap();
        let value = serde_json::parse_value_str(&text).unwrap();
        assert_eq!(
            value.get("schema_version").and_then(Value::as_f64),
            Some(f64::from(culpeo_api::SCHEMA_VERSION))
        );
        let rows = value.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows[0].get("x").and_then(Value::as_f64), Some(1.0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn write_json_with_telemetry_wraps_rows_and_stays_parseable() {
        use serde_json::Value;

        #[derive(Serialize)]
        struct Row {
            x: u32,
        }
        let telemetry = Telemetry {
            threads: 2,
            phases: vec![culpeo_exec::Phase {
                name: "sweep".to_string(),
                seconds: 0.125,
            }],
            total_seconds: 0.25,
        };
        write_json_with_telemetry("self-test-telemetry", &vec![Row { x: 7 }], &telemetry);
        let path = results_dir().join("self-test-telemetry.json");
        let text = std::fs::read_to_string(&path).unwrap();
        let value = serde_json::parse_value_str(&text).unwrap();
        assert_eq!(
            value.get("schema_version").and_then(Value::as_f64),
            Some(f64::from(culpeo_api::SCHEMA_VERSION))
        );
        let tele = value.get("telemetry").expect("telemetry block");
        assert_eq!(tele.get("threads").and_then(Value::as_f64), Some(2.0));
        let phases = tele.get("phases").and_then(Value::as_array).unwrap();
        assert_eq!(phases[0].get("name").and_then(Value::as_str), Some("sweep"));
        let rows = value.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows[0].get("x").and_then(Value::as_f64), Some(7.0));
        std::fs::remove_file(path).ok();
    }
}

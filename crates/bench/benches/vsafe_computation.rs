//! Criterion benches for the `V_safe` computation paths.
//!
//! The paper's argument for Culpeo-R's closed-form math is that full-trace
//! analysis is too expensive for an MCU; these benches quantify the gap on
//! the host: Algorithm 1 walks every trace sample, Culpeo-R is a handful
//! of floating-point operations, and sequence composition is linear in the
//! task count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use culpeo::compose::{vsafe_multi, TaskRequirement};
use culpeo::runtime::TaskObservation;
use culpeo::{pg, runtime, PowerSystemModel};
use culpeo_loadgen::synthetic::UniformLoad;
use culpeo_units::{Amps, Hertz, Joules, Seconds, Volts};

fn bench_pg(c: &mut Criterion) {
    let model = PowerSystemModel::capybara();
    let mut group = c.benchmark_group("culpeo_pg_algorithm1");
    for width_ms in [1.0, 10.0, 100.0] {
        let trace = UniformLoad::new(Amps::from_milli(25.0), Seconds::from_milli(width_ms))
            .profile()
            .sample(Hertz::new(125_000.0));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width_ms}ms_trace")),
            &trace,
            |b, trace| b.iter(|| pg::compute_vsafe(black_box(trace), black_box(&model))),
        );
    }
    group.finish();
}

fn bench_culpeo_r(c: &mut Criterion) {
    let model = PowerSystemModel::capybara();
    let obs = TaskObservation::new(Volts::new(2.4), Volts::new(2.18), Volts::new(2.33));
    c.bench_function("culpeo_r_closed_form", |b| {
        b.iter(|| runtime::compute_vsafe(black_box(&obs), black_box(&model)))
    });
}

fn bench_compose(c: &mut Criterion) {
    let mut group = c.benchmark_group("vsafe_multi");
    for n in [2usize, 8, 32] {
        let tasks: Vec<TaskRequirement> = (0..n)
            .map(|k| TaskRequirement {
                buffer_energy: Joules::new(0.5e-3 + k as f64 * 0.1e-3),
                v_delta: Volts::from_milli(50.0 + k as f64),
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &tasks, |b, tasks| {
            b.iter(|| {
                vsafe_multi(
                    black_box(tasks),
                    culpeo_units::Farads::from_milli(45.0),
                    Volts::new(1.6),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pg, bench_culpeo_r, bench_compose);
criterion_main!(benches);

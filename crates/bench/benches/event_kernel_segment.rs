//! Criterion benches for the event kernel: one constant-load segment under
//! the fixed-step loop vs the analytic chunked kernel, across the harvester
//! modes the chunk loop monomorphises on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{Harvester, Kernel, PowerSystem, RunConfig};
use culpeo_units::{Amps, Seconds, Volts, Watts};

fn segment() -> LoadProfile {
    LoadProfile::constant("segment", Amps::from_milli(25.0), Seconds::from_milli(10.0))
}

fn fresh_system(harvester: Harvester) -> PowerSystem {
    let mut sys = PowerSystem::capybara_two_branch();
    sys.set_harvester(harvester);
    sys.set_buffer_voltage(Volts::new(2.35));
    sys.force_output_enabled();
    sys
}

fn probe_cfg(kernel: Kernel) -> RunConfig {
    RunConfig {
        dt: Seconds::from_micro(10.0),
        record_stride: usize::MAX,
        summary_only: true,
        kernel,
        ..RunConfig::default()
    }
}

fn bench_segment(c: &mut Criterion) {
    let profile = segment();
    let cases = [
        ("off", Harvester::Off),
        ("ccur", Harvester::ConstantCurrent(Amps::from_milli(5.0))),
        ("cpow", Harvester::ConstantPower(Watts::from_milli(8.0))),
    ];
    for (name, harvester) in cases {
        c.bench_function(&format!("event_kernel_segment_fixed_{name}"), |b| {
            b.iter(|| {
                let mut sys = fresh_system(harvester);
                black_box(sys.run_profile(&profile, probe_cfg(Kernel::FixedStep)))
            })
        });
        c.bench_function(&format!("event_kernel_segment_event_{name}"), |b| {
            b.iter(|| {
                let mut sys = fresh_system(harvester);
                black_box(sys.run_profile(&profile, probe_cfg(Kernel::Event)))
            })
        });
    }
}

criterion_group!(benches, bench_segment);
criterion_main!(benches);

//! Criterion benches for scheduler trials and policy derivation — the cost
//! of the Figure 12/13 machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use culpeo_sched::{apps, run_trial, ChargePolicy};
use culpeo_units::Seconds;

fn bench_thresholds(c: &mut Criterion) {
    let app = apps::responsive_reporting();
    let model = apps::model_for(&app);
    let mut group = c.benchmark_group("derive_thresholds");
    group.sample_size(10);
    for policy in [ChargePolicy::Catnap, ChargePolicy::Culpeo] {
        group.bench_function(policy.label(), |b| {
            b.iter(|| black_box(culpeo_sched::derive_thresholds(&app, policy, &model)))
        });
    }
    group.finish();
}

fn bench_trial(c: &mut Criterion) {
    let app = apps::periodic_sensing();
    let mut group = c.benchmark_group("scheduler_trial_30s");
    group.sample_size(10);
    for policy in [ChargePolicy::Catnap, ChargePolicy::Culpeo] {
        group.bench_function(policy.label(), |b| {
            b.iter(|| black_box(run_trial(&app, policy, Seconds::new(30.0), 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thresholds, bench_trial);
criterion_main!(benches);

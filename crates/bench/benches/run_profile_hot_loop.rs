//! Criterion benches for the `run_profile` hot loop: the segment-cursor
//! iterator, trace-free summary runs, and the per-step costs the sweep
//! executor amplifies across thousands of bisection probes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use culpeo_loadgen::synthetic::PulseLoad;
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{PowerSystem, RunConfig};
use culpeo_units::{Amps, Seconds, Volts};

/// A pulse-plus-tail profile with several segments, so the per-step load
/// lookup has real work to do.
fn load() -> LoadProfile {
    PulseLoad::new(Amps::from_milli(50.0), Seconds::from_milli(10.0)).profile()
}

fn fresh_system() -> PowerSystem {
    let mut sys = PowerSystem::capybara();
    sys.set_buffer_voltage(Volts::new(2.4));
    sys.force_output_enabled();
    sys
}

fn bench_full_trace(c: &mut Criterion) {
    let profile = load();
    c.bench_function("run_profile_full_trace", |b| {
        b.iter(|| {
            let mut sys = fresh_system();
            black_box(sys.run_profile(&profile, RunConfig::default()))
        })
    });
}

fn bench_summary_only(c: &mut Criterion) {
    let profile = load();
    c.bench_function("run_profile_summary_only", |b| {
        b.iter(|| {
            let mut sys = fresh_system();
            black_box(sys.run_profile(&profile, RunConfig::default().without_trace()))
        })
    });
}

fn bench_load_query(c: &mut Criterion) {
    let profile = load();
    let dt = Seconds::from_micro(10.0);
    let steps = profile.duration().steps(dt).max(1);

    c.bench_function("load_query_binary_search", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0..steps {
                let t = Seconds::new(k as f64 * dt.get());
                acc += profile.current_at(black_box(t)).get();
            }
            black_box(acc)
        })
    });

    c.bench_function("load_query_cursor", |b| {
        b.iter(|| {
            let mut cursor = profile.cursor();
            let mut acc = 0.0;
            for k in 0..steps {
                let t = Seconds::new(k as f64 * dt.get());
                acc += cursor.current_at(black_box(t)).get();
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_full_trace,
    bench_summary_only,
    bench_load_query
);
criterion_main!(benches);

//! Criterion benches for the batched lanes executor on the Figure 10
//! workload shapes: a probe grid advanced one simulation at a time vs in
//! 8-wide lock-step packs, and the batched ground-truth search itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use culpeo_harness::ground_truth::{clear_truth_cache, true_vsafe_batch};
use culpeo_harness::reference_plant;
use culpeo_loadgen::synthetic::fig10_loads;
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{Kernel, Lanes, PowerSystem, RunConfig};
use culpeo_units::{Seconds, Volts};

/// A probe-grid round: the same load from eight candidate voltages — the
/// unit of work one bisection round hands the lanes kernel.
fn grid(load: &LoadProfile) -> (Vec<PowerSystem>, Vec<RunConfig>) {
    let systems: Vec<PowerSystem> = [2.44, 2.35, 2.26, 2.17, 2.08, 1.99, 1.9, 1.81]
        .iter()
        .map(|&v| {
            let mut sys = reference_plant();
            sys.set_buffer_voltage(Volts::new(v));
            sys.force_output_enabled();
            sys
        })
        .collect();
    let cfgs = vec![RunConfig::probe(load.duration()); systems.len()];
    (systems, cfgs)
}

fn bench_probe_round(c: &mut Criterion) {
    let load = LoadProfile::constant(
        "probe",
        culpeo_units::Amps::from_milli(25.0),
        Seconds::from_milli(10.0),
    );
    c.bench_function("lanes_fig10_probe_round_serial", |b| {
        b.iter(|| {
            let (mut systems, cfgs) = grid(&load);
            let outs: Vec<_> = systems
                .iter_mut()
                .zip(&cfgs)
                .map(|(sys, &cfg)| sys.run_profile(&load, cfg))
                .collect();
            black_box(outs)
        })
    });
    c.bench_function("lanes_fig10_probe_round_lanes8", |b| {
        b.iter(|| {
            let (mut systems, cfgs) = grid(&load);
            let profiles: Vec<&LoadProfile> = vec![&load; systems.len()];
            black_box(Lanes::<8>::run(&mut systems, &profiles, &cfgs))
        })
    });
    // Reference point: what the same probe round cost before the event
    // kernel existed.
    c.bench_function("lanes_fig10_probe_round_fixed_step", |b| {
        b.iter(|| {
            let (mut systems, cfgs) = grid(&load);
            let outs: Vec<_> = systems
                .iter_mut()
                .zip(&cfgs)
                .map(|(sys, &cfg)| sys.run_profile(&load, cfg.with_kernel(Kernel::FixedStep)))
                .collect();
            black_box(outs)
        })
    });
}

fn bench_ground_truth_batch(c: &mut Criterion) {
    let loads = fig10_loads();
    c.bench_function("lanes_fig10_ground_truth_batch_cold", |b| {
        b.iter(|| {
            clear_truth_cache();
            black_box(true_vsafe_batch("reference", &reference_plant, &loads))
        })
    });
}

criterion_group!(benches, bench_probe_round, bench_ground_truth_batch);
criterion_main!(benches);

//! Criterion benches for the power-system simulator and the ground-truth
//! machinery every figure rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use culpeo_harness::ground_truth::true_vsafe;
use culpeo_harness::reference_plant;
use culpeo_loadgen::synthetic::UniformLoad;
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{PowerSystem, RunConfig};
use culpeo_units::{Amps, Seconds, Volts};

fn bench_step(c: &mut Criterion) {
    c.bench_function("plant_step_loaded", |b| {
        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(Volts::new(2.3));
        b.iter(|| {
            black_box(sys.step(Amps::from_milli(25.0), Seconds::from_micro(8.0)));
            // Keep the buffer in range so every iteration does real work.
            if sys.v_node() < Volts::new(1.8) {
                sys.set_buffer_voltage(Volts::new(2.3));
            }
        })
    });

    c.bench_function("plant_step_idle", |b| {
        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(Volts::new(2.3));
        b.iter(|| black_box(sys.step(Amps::ZERO, Seconds::from_micro(8.0))))
    });
}

fn bench_run_profile(c: &mut Criterion) {
    let load: LoadProfile =
        UniformLoad::new(Amps::from_milli(25.0), Seconds::from_milli(10.0)).profile();
    c.bench_function("run_profile_10ms_pulse", |b| {
        b.iter(|| {
            let mut sys = PowerSystem::capybara();
            sys.set_buffer_voltage(Volts::new(2.3));
            black_box(sys.run_profile(&load, RunConfig::default()))
        })
    });
}

fn bench_ground_truth(c: &mut Criterion) {
    let load = UniformLoad::new(Amps::from_milli(25.0), Seconds::from_milli(10.0)).profile();
    let mut group = c.benchmark_group("ground_truth_search");
    group.sample_size(10);
    group.bench_function("25mA_10ms", |b| {
        b.iter(|| black_box(true_vsafe(&reference_plant, &load)))
    });
    group.finish();
}

criterion_group!(benches, bench_step, bench_run_profile, bench_ground_truth);
criterion_main!(benches);

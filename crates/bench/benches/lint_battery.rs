//! Criterion benches for the `culpeo-analyze` lint battery.
//!
//! The battery runs as a pre-flight gate in front of every experiment
//! driver and (via `culpeo analyze`) in CI, so its cost must stay
//! negligible next to the simulations it guards. Three shapes: the spec
//! lints alone, the trace lints over a 10k-sample capture, and the full
//! battery with spec + trace + plan together.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use culpeo_analyze::{AnalysisInput, PlanSpec, Registry, SystemSpec, TraceInput};
use culpeo_loadgen::synthetic::UniformLoad;
use culpeo_units::{Amps, Hertz, Seconds};

/// A 10k-sample trace: 80 ms of a 25 mA pulse train at 125 kHz.
fn ten_k_trace() -> TraceInput {
    let trace = UniformLoad::new(Amps::from_milli(25.0), Seconds::from_milli(80.0))
        .profile()
        .sample(Hertz::new(125_000.0));
    TraceInput::from_trace("bench trace", &trace)
}

fn bench_spec_lints(c: &mut Criterion) {
    let spec = SystemSpec::capybara();
    c.bench_function("lint_battery_spec_only", |b| {
        b.iter(|| {
            Registry::default_battery()
                .run(black_box(&AnalysisInput::spec_only(&spec, "capybara spec")))
        })
    });
}

fn bench_trace_lints(c: &mut Criterion) {
    let spec = SystemSpec::capybara();
    let trace = ten_k_trace();
    let mut group = c.benchmark_group("lint_battery_trace");
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("{}_samples", trace.samples.len())),
        &trace,
        |b, trace| {
            b.iter(|| {
                let traces = std::slice::from_ref(black_box(trace));
                let input = AnalysisInput {
                    spec: &spec,
                    spec_locus: "capybara spec",
                    traces,
                    plan: None,
                    plan_locus: "",
                };
                Registry::default_battery().run(&input)
            })
        },
    );
    group.finish();
}

fn bench_full_battery(c: &mut Criterion) {
    let spec = SystemSpec::capybara();
    let traces = vec![ten_k_trace()];
    let plan = PlanSpec::figure5_example();
    c.bench_function("lint_battery_full", |b| {
        b.iter(|| {
            let input = AnalysisInput {
                spec: black_box(&spec),
                spec_locus: "capybara spec",
                traces: &traces,
                plan: Some(&plan),
                plan_locus: "figure5 plan",
            };
            Registry::default_battery().run(&input)
        })
    });
}

criterion_group!(
    benches,
    bench_spec_lints,
    bench_trace_lints,
    bench_full_battery
);
criterion_main!(benches);

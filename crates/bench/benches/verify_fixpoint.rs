//! Criterion benches for the `culpeo-verify` fixpoint interpreter.
//!
//! `culpeo verify` joins the lint battery as a pre-flight gate, so the
//! fixpoint must stay cheap even on plans that exercise its slow paths.
//! Three shapes: the converging reference plan, the widening path (a
//! draining periodic plan that never converges without it), and the
//! counterexample unroll (a refuted plan searched across hyperperiods).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use culpeo::PowerSystemModel;
use culpeo_api::PlanSpec;
use culpeo_verify::{verify_with_model, VerifyConfig};

fn bench_converging_fixpoint(c: &mut Criterion) {
    let model = PowerSystemModel::capybara();
    let plan = PlanSpec::verified_example();
    let cfg = VerifyConfig::default();
    c.bench_function("verify_fixpoint_converging", |b| {
        b.iter(|| verify_with_model(black_box(&model), black_box(&plan), &cfg))
    });
}

fn bench_widening_path(c: &mut Criterion) {
    let model = PowerSystemModel::capybara();
    let mut plan = PlanSpec::verified_example();
    plan.period_s = Some(20.0);
    let cfg = VerifyConfig::default();
    c.bench_function("verify_fixpoint_widening", |b| {
        b.iter(|| verify_with_model(black_box(&model), black_box(&plan), &cfg))
    });
}

fn bench_counterexample_unroll(c: &mut Criterion) {
    let model = PowerSystemModel::capybara();
    let mut plan = PlanSpec::verified_example();
    plan.recharge_power_mw = 0.0;
    let cfg = VerifyConfig::default();
    let mut group = c.benchmark_group("verify_counterexample_unroll");
    for launches in [2usize, 8, 16] {
        let mut p = plan.clone();
        let (sense, radio) = (p.launches[0].clone(), p.launches[1].clone());
        p.launches.clear();
        for i in 0..launches {
            let mut l = if i % 2 == 0 {
                sense.clone()
            } else {
                radio.clone()
            };
            l.start_s = i as f64 * 2.0;
            p.launches.push(l);
        }
        p.period_s = Some(p.launches.len() as f64 * 2.0 + 30.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{launches}_launches")),
            &p,
            |b, p| b.iter(|| verify_with_model(black_box(&model), black_box(p), &cfg)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_converging_fixpoint,
    bench_widening_path,
    bench_counterexample_unroll
);
criterion_main!(benches);

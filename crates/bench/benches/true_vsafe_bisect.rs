//! Criterion benches for the ground-truth bisection: cold searches (every
//! probe simulated) versus warm searches served from the memoised
//! verdict cache.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use culpeo_harness::ground_truth::{clear_truth_cache, true_vsafe_cached};
use culpeo_harness::reference_plant;
use culpeo_loadgen::synthetic::UniformLoad;
use culpeo_units::{Amps, Seconds};

fn bench_bisect(c: &mut Criterion) {
    let load = UniformLoad::new(Amps::from_milli(25.0), Seconds::from_milli(10.0)).profile();
    let mut group = c.benchmark_group("true_vsafe_bisect");
    group.sample_size(10);

    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            clear_truth_cache();
            black_box(true_vsafe_cached("reference", &reference_plant, &load))
        })
    });

    group.bench_function("warm_cache", |b| {
        // Populate once; every iteration after this is pure cache lookups.
        clear_truth_cache();
        let _ = true_vsafe_cached("reference", &reference_plant, &load);
        b.iter(|| black_box(true_vsafe_cached("reference", &reference_plant, &load)))
    });

    group.finish();
}

criterion_group!(benches, bench_bisect);
criterion_main!(benches);

//! Property-based tests of the simulated plant's physics.

use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{PowerSystem, RunConfig};
use culpeo_units::{Amps, Farads, Ohms, Seconds, Volts};
use proptest::prelude::*;

fn system(c_mf: f64, esr: f64, v0: f64) -> PowerSystem {
    let mut sys = PowerSystem::capybara_with_bank(Farads::from_milli(c_mf), Ohms::new(esr));
    sys.set_buffer_voltage(Volts::new(v0));
    sys.force_output_enabled();
    sys
}

fn fast_cfg() -> RunConfig {
    RunConfig {
        dt: Seconds::from_micro(50.0),
        record_stride: usize::MAX,
        ..RunConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ESR drop rebounds: for a completed pulse, the final settled
    /// voltage always exceeds the minimum seen under load.
    #[test]
    fn rebound_exceeds_minimum(
        i_ma in 1.0..40.0f64,
        w_ms in 1.0..50.0f64,
        esr in 0.5..5.0f64,
    ) {
        let mut sys = system(45.0, esr, 2.45);
        let load = LoadProfile::constant("p", Amps::from_milli(i_ma), Seconds::from_milli(w_ms));
        let out = sys.run_profile(&load, fast_cfg());
        prop_assume!(out.completed());
        prop_assert!(out.v_final >= out.v_min);
        prop_assert!(out.v_delta().get() >= 0.0);
    }

    /// Energy conservation: the buffer's ½CV² delta matches the ledger.
    #[test]
    fn energy_ledger_balances(
        i_ma in 1.0..30.0f64,
        w_ms in 1.0..50.0f64,
        v0 in 2.0..2.5f64,
    ) {
        let mut sys = system(45.0, 3.3, v0);
        let e0 = sys.buffer().stored_energy();
        let load = LoadProfile::constant("p", Amps::from_milli(i_ma), Seconds::from_milli(w_ms));
        let out = sys.run_profile(&load, fast_cfg());
        prop_assume!(out.completed());
        let e1 = sys.buffer().stored_energy();
        let actual = e1 - e0;
        let expected = out.ledger.expected_storage_delta();
        let tol = e0.get() * 1e-3 + 1e-7;
        prop_assert!(
            actual.approx_eq(expected, tol),
            "actual {} vs expected {}", actual, expected
        );
    }

    /// The under-load drop grows monotonically with ESR.
    #[test]
    fn drop_monotone_in_esr(
        i_ma in 5.0..40.0f64,
        esr_lo in 0.5..2.0f64,
        esr_extra in 0.5..4.0f64,
    ) {
        let load = LoadProfile::constant("p", Amps::from_milli(i_ma), Seconds::from_milli(5.0));
        let mut lo = system(45.0, esr_lo, 2.45);
        let mut hi = system(45.0, esr_lo + esr_extra, 2.45);
        let out_lo = lo.run_profile(&load, fast_cfg());
        let out_hi = hi.run_profile(&load, fast_cfg());
        prop_assume!(out_lo.completed() && out_hi.completed());
        prop_assert!(out_hi.v_min <= out_lo.v_min);
    }

    /// The under-load drop grows monotonically with load current.
    #[test]
    fn drop_monotone_in_current(
        i_lo in 2.0..20.0f64,
        i_extra in 1.0..20.0f64,
    ) {
        let w = Seconds::from_milli(5.0);
        let mut a = system(45.0, 3.3, 2.45);
        let mut b = system(45.0, 3.3, 2.45);
        let out_a = a.run_profile(&LoadProfile::constant("a", Amps::from_milli(i_lo), w), fast_cfg());
        let out_b = b.run_profile(
            &LoadProfile::constant("b", Amps::from_milli(i_lo + i_extra), w),
            fast_cfg(),
        );
        prop_assume!(out_a.completed() && out_b.completed());
        prop_assert!(out_b.v_min <= out_a.v_min);
    }

    /// A bigger bank sags less under the same load.
    #[test]
    fn larger_capacitance_sags_less(
        c_lo in 10.0..40.0f64,
        c_extra in 10.0..60.0f64,
        i_ma in 2.0..25.0f64,
    ) {
        let load = LoadProfile::constant("p", Amps::from_milli(i_ma), Seconds::from_milli(20.0));
        let mut small = system(c_lo, 3.3, 2.45);
        let mut big = system(c_lo + c_extra, 3.3, 2.45);
        let out_s = small.run_profile(&load, fast_cfg());
        let out_b = big.run_profile(&load, fast_cfg());
        prop_assume!(out_s.completed() && out_b.completed());
        // Same ESR ⇒ similar instantaneous drop, but the energy droop is
        // smaller for the bigger bank, so its final voltage is higher.
        prop_assert!(out_b.v_final >= out_s.v_final - Volts::from_micro(100.0));
    }

    /// Starting higher never hurts: a run from a higher voltage reaches a
    /// minimum at least as high.
    #[test]
    fn higher_start_higher_minimum(
        v_lo in 1.9..2.3f64,
        dv in 0.02..0.2f64,
        i_ma in 2.0..40.0f64,
    ) {
        let load = LoadProfile::constant("p", Amps::from_milli(i_ma), Seconds::from_milli(10.0));
        let mut a = system(45.0, 3.3, v_lo);
        let mut b = system(45.0, 3.3, v_lo + dv);
        let out_a = a.run_profile(&load, fast_cfg());
        let out_b = b.run_profile(&load, fast_cfg());
        prop_assume!(out_a.completed() && out_b.completed());
        prop_assert!(out_b.v_min >= out_a.v_min - Volts::from_micro(10.0));
    }

    /// `summary_only` is purely an output-shape option: a run that skips
    /// trace recording reports bit-identical `(v_min, t_min, v_final,
    /// brownout, collapsed)` to the same run with a full trace — and both
    /// agree with what the trace itself would report as its minimum.
    #[test]
    fn summary_only_matches_full_trace(
        i_ma in 1.0..60.0f64,
        w_ms in 1.0..60.0f64,
        burst_ma in 0.0..30.0f64,
        v0 in 1.8..2.5f64,
    ) {
        let load = LoadProfile::builder("mix")
            .hold(Amps::from_milli(i_ma), Seconds::from_milli(w_ms))
            .ramp(Amps::from_milli(i_ma), Amps::from_milli(1.0), Seconds::from_milli(5.0))
            .burst(
                Amps::from_milli(i_ma + burst_ma),
                Amps::from_milli(1.0),
                Seconds::from_milli(2.0),
                0.5,
                Seconds::from_milli(10.0),
            )
            .build();
        let full_cfg = RunConfig {
            dt: Seconds::from_micro(50.0),
            record_stride: 4,
            ..RunConfig::default()
        };
        let mut a = system(45.0, 3.3, v0);
        let mut b = system(45.0, 3.3, v0);
        let full = a.run_profile(&load, full_cfg);
        let summary = b.run_profile(&load, full_cfg.without_trace());
        prop_assert_eq!(full.v_start, summary.v_start);
        prop_assert_eq!(full.v_min, summary.v_min);
        prop_assert_eq!(full.t_min, summary.t_min);
        prop_assert_eq!(full.v_final, summary.v_final);
        prop_assert_eq!(full.brownout, summary.brownout);
        prop_assert_eq!(full.collapsed, summary.collapsed);
        // The full run's trace minimum agrees with the in-loop minimum.
        let (t_min, v_min) = full.trace.minimum().unwrap();
        prop_assert_eq!(t_min, full.t_min);
        prop_assert_eq!(v_min, full.v_min);
        // And the summary run really recorded nothing.
        prop_assert!(summary.trace.is_empty());
    }

    /// The monitor enforces its invariant: while output is enabled the
    /// observed node voltage never goes below V_off for more than one step.
    #[test]
    fn monitor_cuts_at_v_off(
        v0 in 1.65..2.0f64,
        i_ma in 20.0..60.0f64,
    ) {
        let mut sys = system(45.0, 3.3, v0);
        let load = LoadProfile::constant("p", Amps::from_milli(i_ma), Seconds::from_milli(200.0));
        let out = sys.run_profile(&load, fast_cfg());
        if out.brownout.is_some() {
            // After a brownout the monitor refuses delivery.
            let next = sys.step(Amps::from_milli(1.0), Seconds::from_micro(50.0));
            prop_assert!(!next.delivering);
        }
    }
}

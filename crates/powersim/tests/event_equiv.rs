//! Event-kernel ≡ fixed-step equivalence, from the public API.
//!
//! The event kernel's contract: for any supported plant and load, the
//! brownout *verdict* matches the fixed-step reference exactly, and the
//! summary voltages (`v_min`, `v_final`, final plant state) match within
//! 1e-9 V. The kernel guarantees this by construction — it only
//! analytically advances inside a guard band away from every threshold,
//! and real-steps the rest — and this suite checks the construction from
//! outside: a randomized property over plants, harvesters, and
//! multi-segment profiles, plus a unit battery pinning the crossing
//! detection at the `V_high`/`V_off` boundaries and degenerate segments.

use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{Harvester, Kernel, PowerSystem, RunConfig};
use culpeo_units::{Amps, Farads, Ohms, Seconds, Volts, Watts};
use proptest::prelude::*;

fn probe_cfg(dt_us: f64) -> RunConfig {
    RunConfig {
        dt: Seconds::from_micro(dt_us),
        record_stride: usize::MAX,
        summary_only: true,
        ..RunConfig::default()
    }
}

/// Runs `profile` under both kernels and checks the equivalence contract:
/// verdict-exact, summaries within 1e-9 V.
fn assert_kernels_agree(sys: &PowerSystem, profile: &LoadProfile, cfg: RunConfig) {
    let mut fixed_sys = sys.clone();
    let mut event_sys = sys.clone();
    let fixed = fixed_sys.run_profile(profile, cfg.with_kernel(Kernel::FixedStep));
    let event = event_sys.run_profile(profile, cfg.with_kernel(Kernel::Event));
    assert_eq!(
        fixed.brownout.is_some(),
        event.brownout.is_some(),
        "verdict mismatch on '{}': fixed {:?} event {:?}",
        profile.label(),
        fixed.brownout,
        event.brownout
    );
    assert_eq!(fixed.collapsed, event.collapsed, "collapse flag mismatch");
    assert!(
        (fixed.v_min - event.v_min).abs().get() < 1e-9,
        "v_min on '{}': fixed {} event {}",
        profile.label(),
        fixed.v_min,
        event.v_min
    );
    assert!(
        (fixed.v_final - event.v_final).abs().get() < 1e-9,
        "v_final on '{}': fixed {} event {}",
        profile.label(),
        fixed.v_final,
        event.v_final
    );
    assert!(
        (fixed_sys.v_node() - event_sys.v_node()).abs().get() < 1e-9,
        "plant state diverged on '{}'",
        profile.label()
    );
}

fn plant(c_mf: f64, esr: f64, v0: f64, harvester: Harvester) -> PowerSystem {
    let mut sys = PowerSystem::capybara_with_bank(Farads::from_milli(c_mf), Ohms::new(esr));
    sys.set_harvester(harvester);
    sys.set_buffer_voltage(Volts::new(v0));
    sys.force_output_enabled();
    sys
}

fn arb_harvester() -> impl Strategy<Value = Harvester> {
    prop_oneof![
        Just(Harvester::Off),
        (0.5..8.0f64).prop_map(|ma| Harvester::ConstantCurrent(Amps::from_milli(ma))),
        (1.0..12.0f64).prop_map(|mw| Harvester::ConstantPower(Watts::from_milli(mw))),
        ((1.0..6.0f64), (0.5..5.0f64), (0.2..0.8f64)).prop_map(|(ma, per_ms, duty)| {
            Harvester::Windowed {
                i: Amps::from_milli(ma),
                period: Seconds::from_milli(per_ms),
                duty,
                phase: Seconds::ZERO,
            }
        }),
    ]
}

/// One random load segment: (kind, current a, current b, duration).
type Seg = (u8, f64, f64, f64);

fn arb_profile() -> impl Strategy<Value = LoadProfile> {
    proptest::collection::vec((0u8..3, 1.0..45.0f64, 0.5..45.0f64, 0.3..20.0f64), 1..4).prop_map(
        |segs: Vec<Seg>| {
            let mut b = LoadProfile::builder("equiv");
            for (kind, ia, ib, ms) in segs {
                let (ia, ib) = (Amps::from_milli(ia), Amps::from_milli(ib));
                let w = Seconds::from_milli(ms);
                b = match kind {
                    0 => b.hold(ia, w),
                    1 => b.ramp(ia, ib, w),
                    _ => b.burst(ia.max(ib), ia.min(ib), Seconds::from_micro(800.0), 0.4, w),
                };
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized specs and traces: any supported plant × harvester ×
    /// multi-segment profile gives the same verdict under both kernels,
    /// with summaries within 1e-9 V.
    #[test]
    fn event_kernel_matches_fixed_step(
        c_mf in 20.0..80.0f64,
        esr in 0.5..6.0f64,
        v0 in 1.7..2.48f64,
        coarse_dt in 0u8..2,
        harvester in arb_harvester(),
        profile in arb_profile(),
    ) {
        let sys = plant(c_mf, esr, v0, harvester);
        let dt_us = if coarse_dt == 0 { 50.0 } else { 10.0 };
        assert_kernels_agree(&sys, &profile, probe_cfg(dt_us));
    }
}

// ---- unit battery: threshold crossings and degenerate segments ----

#[test]
fn crossing_detection_pinned_around_v_off() {
    // Scan start voltages across the brownout boundary in sub-guard-band
    // 0.5 mV increments: every verdict flip must happen at the same grid
    // point under both kernels.
    let probe = plant(45.0, 3.0, 2.0, Harvester::Off);
    let v_off = probe.monitor().v_off().get();
    let load = LoadProfile::constant("edge", Amps::from_milli(30.0), Seconds::from_milli(12.0));
    for k in 0..40 {
        let v0 = v_off + 0.05 + k as f64 * 5e-4;
        let sys = plant(45.0, 3.0, v0, Harvester::Off);
        assert_kernels_agree(&sys, &load, probe_cfg(10.0));
    }
}

#[test]
fn crossing_detection_pinned_around_v_high() {
    // Charging into the V_high rail: start inside the guard band, at the
    // rail, and just below it. The harvester must cut off on the same
    // step under both kernels for the summaries to agree.
    let probe = plant(45.0, 1.0, 2.0, Harvester::Off);
    let v_high = probe.monitor().v_high().get();
    let load = LoadProfile::constant(
        "trickle",
        Amps::from_micro(200.0),
        Seconds::from_milli(40.0),
    );
    for dv in [0.0, 2e-4, 5e-4, 1.5e-3, 5e-3, 2e-2] {
        for h in [
            Harvester::ConstantCurrent(Amps::from_milli(4.0)),
            Harvester::ConstantPower(Watts::from_milli(9.0)),
        ] {
            let sys = plant(45.0, 1.0, v_high - dv, h);
            assert_kernels_agree(&sys, &load, probe_cfg(10.0));
        }
    }
}

#[test]
fn starting_at_exactly_v_off_agrees() {
    let probe = plant(45.0, 3.0, 2.0, Harvester::Off);
    let v_off = probe.monitor().v_off().get();
    let load = LoadProfile::constant("doomed", Amps::from_milli(10.0), Seconds::from_milli(5.0));
    let sys = plant(45.0, 3.0, v_off, Harvester::Off);
    assert_kernels_agree(&sys, &load, probe_cfg(10.0));
}

#[test]
fn zero_length_segments_agree() {
    // Segments shorter than one step round to zero steps; the planner
    // must skip them identically to the fixed loop's arithmetic.
    let tiny = Seconds::from_micro(1.0); // dt is 10 µs
    let profile = LoadProfile::builder("degenerate")
        .hold(Amps::from_milli(20.0), Seconds::from_milli(3.0))
        .hold(Amps::from_milli(44.0), tiny)
        .hold(Amps::from_milli(5.0), Seconds::from_milli(2.0))
        .hold(Amps::from_milli(33.0), tiny)
        .build();
    let sys = plant(45.0, 2.0, 2.3, Harvester::Off);
    assert_kernels_agree(&sys, &profile, probe_cfg(10.0));

    // A profile that is *only* a zero-length segment still runs one step.
    let only = LoadProfile::constant("only-tiny", Amps::from_milli(15.0), tiny);
    assert_kernels_agree(&sys, &only, probe_cfg(10.0));
}

#[test]
fn sub_step_burst_periods_agree() {
    // Burst period below 2·dt: the square wave aliases against the step
    // grid, exercising the planner's per-step pieces.
    let profile = LoadProfile::builder("alias")
        .burst(
            Amps::from_milli(35.0),
            Amps::from_milli(2.0),
            Seconds::from_micro(15.0),
            0.5,
            Seconds::from_milli(6.0),
        )
        .build();
    let sys = plant(45.0, 2.0, 2.25, Harvester::Off);
    assert_kernels_agree(&sys, &profile, probe_cfg(10.0));
}

//! Runtime physics audits for the simulated plant.
//!
//! The simulator is the ground truth every `V_safe` comparison rests on,
//! so its own invariants deserve machine checking, not just unit tests.
//! [`Auditor`] wraps a [`PowerSystem`] run and verifies, continuously:
//!
//! * **energy conservation** — the buffer's `½CV²` delta matches the
//!   ledger (harvested − delivered − losses) within tolerance;
//! * **monitor hysteresis** — after a cut, delivery stays off until the
//!   node reaches `V_high`;
//! * **physical ranges** — node voltage and currents stay finite and
//!   non-negative where physics demands it.
//!
//! Tests and long experiment drivers run their simulations through the
//! auditor; a violation is a bug in the plant, never in the workload.

use culpeo_units::{Amps, Joules, Seconds};

use crate::{MonitorState, PowerSystem, StepOutput};

/// A violated invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Ledger and stored energy disagree beyond tolerance.
    EnergyImbalance {
        /// Simulation time at which the audit closed the ledger.
        t: Seconds,
        /// Actual `½CV²` change since the audit began.
        actual: Joules,
        /// Ledger-predicted change.
        expected: Joules,
    },
    /// The plant delivered power while the monitor demanded recharge.
    DeliveryWhileRecharging {
        /// Simulation time of the offence.
        t: Seconds,
    },
    /// A non-finite or impossible electrical value appeared.
    UnphysicalValue {
        /// Simulation time of the offence.
        t: Seconds,
        /// Description of the offending quantity.
        what: &'static str,
    },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::EnergyImbalance {
                t,
                actual,
                expected,
            } => {
                write!(
                    f,
                    "energy imbalance at t = {t}: stored Δ{actual} vs ledger Δ{expected}"
                )
            }
            Violation::DeliveryWhileRecharging { t } => {
                write!(f, "delivered power during recharge at t = {t}")
            }
            Violation::UnphysicalValue { t, what } => {
                write!(f, "unphysical {what} at t = {t}")
            }
        }
    }
}

/// Wraps a [`PowerSystem`] and audits every step.
#[derive(Debug)]
pub struct Auditor<'a> {
    sys: &'a mut PowerSystem,
    e_start: Joules,
    ledger_start: crate::EnergyLedger,
    /// Relative energy tolerance (on the initial stored energy) plus an
    /// absolute floor; Euler integration carries O(dt) bookkeeping error.
    tolerance: f64,
    violations: Vec<Violation>,
    was_recharging: bool,
}

impl<'a> Auditor<'a> {
    /// Starts auditing `sys` with the default 0.2 % energy tolerance.
    pub fn new(sys: &'a mut PowerSystem) -> Self {
        let e_start = sys.buffer().stored_energy();
        let ledger_start = sys.ledger();
        let was_recharging = !sys.monitor().output_enabled();
        Self {
            sys,
            e_start,
            ledger_start,
            tolerance: 2e-3,
            violations: Vec::new(),
            was_recharging,
        }
    }

    /// Steps the underlying plant and audits the result.
    pub fn step(&mut self, i_load: Amps, dt: Seconds) -> StepOutput {
        let out = self.sys.step(i_load, dt);

        if !out.v_node.is_finite() || !out.i_in.is_finite() {
            self.violations.push(Violation::UnphysicalValue {
                t: out.t,
                what: "non-finite node state",
            });
        }
        if out.i_in.get() < -1e-12 {
            self.violations.push(Violation::UnphysicalValue {
                t: out.t,
                what: "negative booster input current",
            });
        }
        // Hysteresis: while the monitor demanded recharge at the start of
        // the step, nothing may have been delivered.
        if self.was_recharging && out.delivering {
            self.violations
                .push(Violation::DeliveryWhileRecharging { t: out.t });
        }
        self.was_recharging = out.monitor == MonitorState::Recharging;
        out
    }

    /// Finishes the audit: checks energy conservation over the whole run
    /// and returns all violations (empty = clean).
    #[must_use]
    pub fn finish(self) -> Vec<Violation> {
        let mut violations = self.violations;
        let e_end = self.sys.buffer().stored_energy();
        let actual = e_end - self.e_start;
        let mut ledger = self.sys.ledger();
        ledger.delivered -= self.ledger_start.delivered;
        ledger.esr_loss -= self.ledger_start.esr_loss;
        ledger.booster_loss -= self.ledger_start.booster_loss;
        ledger.leakage_loss -= self.ledger_start.leakage_loss;
        ledger.harvested -= self.ledger_start.harvested;
        let expected = ledger.expected_storage_delta();
        let tol = self.e_start.get().abs() * self.tolerance + 1e-9;
        if (actual.get() - expected.get()).abs() > tol {
            violations.push(Violation::EnergyImbalance {
                t: self.sys.time(),
                actual,
                expected,
            });
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_units::Volts as V;

    #[test]
    fn clean_run_has_no_violations() {
        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(V::new(2.3));
        let mut audit = Auditor::new(&mut sys);
        let dt = Seconds::from_micro(50.0);
        for k in 0..20_000 {
            let i = if k < 4000 {
                Amps::from_milli(25.0)
            } else {
                Amps::ZERO
            };
            audit.step(i, dt);
        }
        let violations = audit.finish();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn brownout_and_recharge_respect_hysteresis() {
        let mut sys = PowerSystem::builder()
            .harvester(crate::Harvester::ConstantCurrent(Amps::from_milli(10.0)))
            .initial_voltage(V::new(1.75))
            .build();
        let mut audit = Auditor::new(&mut sys);
        let dt = Seconds::from_micro(100.0);
        // Force a brownout, then keep demanding load through the recharge:
        // the auditor must not see delivery until V_high.
        for _ in 0..80_000 {
            audit.step(Amps::from_milli(50.0), dt);
        }
        let violations = audit.finish();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn violations_display() {
        let v = Violation::DeliveryWhileRecharging {
            t: Seconds::new(1.0),
        };
        assert!(v.to_string().contains("recharge"));
        let e = Violation::EnergyImbalance {
            t: Seconds::new(2.5),
            actual: Joules::new(1.0),
            expected: Joules::new(2.0),
        };
        assert!(e.to_string().contains("imbalance"));
        assert!(e.to_string().contains("t = "), "{e}");
        let u = Violation::UnphysicalValue {
            t: Seconds::ZERO,
            what: "x",
        };
        assert!(u.to_string().contains("unphysical"));
    }

    #[test]
    fn two_branch_and_harvest_runs_stay_clean() {
        let mut sys = PowerSystem::capybara_two_branch();
        sys.set_buffer_voltage(V::new(2.2));
        sys.set_harvester(crate::Harvester::ConstantPower(
            culpeo_units::Watts::from_milli(5.0),
        ));
        let mut audit = Auditor::new(&mut sys);
        let dt = Seconds::from_micro(50.0);
        for k in 0..40_000 {
            let i = if k % 4000 < 400 {
                Amps::from_milli(40.0)
            } else {
                Amps::from_milli(1.0)
            };
            audit.step(i, dt);
        }
        let violations = audit.finish();
        assert!(violations.is_empty(), "{violations:?}");
    }
}

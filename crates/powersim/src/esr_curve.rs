//! ESR-versus-frequency curves and their measurement.
//!
//! Datasheet ESR values are too coarse for `V_safe` work: the resistance a
//! load experiences depends on how long the load is applied, because a real
//! supercapacitor's porous electrodes behave like a ladder of RC branches.
//! The paper therefore derives an ESR-vs-frequency curve "via direct
//! measurement of the power system" (§IV-B) and has Culpeo-PG select the
//! point matching the workload's dominant pulse width. This module provides
//! both the curve type and the measurement procedure, run against the
//! simulated plant exactly as the authors ran it against the real one.

use culpeo_loadgen::LoadProfile;
use culpeo_units::{Amps, Hertz, Ohms, Volts};

use crate::{PowerSystem, RunConfig};

/// A measured ESR-vs-frequency curve with log-frequency interpolation.
#[derive(Debug, Clone)]
pub struct EsrCurve {
    /// `(frequency, resistance)` points, sorted by ascending frequency.
    points: Vec<(Hertz, Ohms)>,
    /// `ln` of each point's frequency, precomputed so [`EsrCurve::at`] —
    /// called once per simulator step via the booster model — takes no
    /// logarithms of the fixed points.
    ln_freqs: Vec<f64>,
    /// Per-interval slope `ΔR / Δln f` (one entry per adjacent pair).
    slopes: Vec<f64>,
}

impl PartialEq for EsrCurve {
    fn eq(&self, other: &Self) -> bool {
        // The derived fields are functions of the points.
        self.points == other.points
    }
}

impl EsrCurve {
    /// Creates a curve from measurement points.
    ///
    /// # Panics
    ///
    /// Panics if no points are given, frequencies are not strictly
    /// ascending and positive, or any resistance is non-positive.
    #[must_use]
    pub fn new(points: Vec<(Hertz, Ohms)>) -> Self {
        assert!(!points.is_empty(), "ESR curve needs at least one point");
        for w in points.windows(2) {
            assert!(
                w[0].0.get() < w[1].0.get(),
                "ESR curve frequencies must be strictly ascending"
            );
        }
        for &(f, r) in &points {
            assert!(f.get() > 0.0, "frequencies must be positive");
            assert!(r.get() > 0.0, "resistances must be positive");
        }
        let ln_freqs: Vec<f64> = points.iter().map(|&(f, _)| f.get().ln()).collect();
        let slopes = points
            .windows(2)
            .zip(ln_freqs.windows(2))
            .map(|(p, lf)| (p[1].1.get() - p[0].1.get()) / (lf[1] - lf[0]))
            .collect();
        Self {
            points,
            ln_freqs,
            slopes,
        }
    }

    /// A frequency-independent curve (an ideal single-RC capacitor).
    #[must_use]
    pub fn flat(r: Ohms) -> Self {
        Self::new(vec![(Hertz::new(1.0), r)])
    }

    /// The measurement points.
    #[must_use]
    pub fn points(&self) -> &[(Hertz, Ohms)] {
        &self.points
    }

    /// The resistance at frequency `f`, interpolated linearly in
    /// log-frequency and clamped to the measured range.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not strictly positive.
    #[must_use]
    pub fn at(&self, f: Hertz) -> Ohms {
        assert!(f.get() > 0.0, "frequency must be positive");
        let first = self.points[0];
        let last = self.points[self.points.len() - 1];
        if f.get() <= first.0.get() {
            return first.1;
        }
        if f.get() >= last.0.get() {
            return last.1;
        }
        let idx = self.points.partition_point(|&(pf, _)| pf.get() <= f.get());
        let r0 = self.points[idx - 1].1.get();
        Ohms::new(r0 + self.slopes[idx - 1] * (f.get().ln() - self.ln_freqs[idx - 1]))
    }
}

/// Measures the power system's effective ESR across `frequencies`.
///
/// For each frequency `f`, a fresh copy of the plant (from `make_system`)
/// is loaded with a single `i_test` pulse of width `1/f`; the effective ESR
/// is the *recoverable* voltage drop divided by the input current at the
/// minimum — precisely the `V_δ = I_in·R` relation Culpeo-PG later inverts.
///
/// Frequencies whose pulse would brown the plant out (or deliver no
/// measurable drop) are skipped.
///
/// # Panics
///
/// Panics if `i_test` is not strictly positive or `frequencies` is empty,
/// or if no frequency yields a valid measurement.
#[must_use]
pub fn measure_esr_curve(
    make_system: &(dyn Fn() -> PowerSystem + Sync),
    i_test: Amps,
    frequencies: &[Hertz],
) -> EsrCurve {
    assert!(i_test.get() > 0.0, "test current must be positive");
    assert!(!frequencies.is_empty(), "need at least one frequency");
    let mut freqs = frequencies.to_vec();
    freqs.sort_by(|a, b| a.get().total_cmp(&b.get()));

    let mut points = Vec::with_capacity(freqs.len());
    for f in freqs {
        let mut sys = make_system();
        // Measure from a comfortable mid-range voltage.
        sys.set_buffer_voltage(Volts::new(2.3));
        sys.force_output_enabled();
        let width = f.period();
        let pulse = LoadProfile::constant("esr-probe", i_test, width);
        // Only the summary (v_min, v_delta) is read, so the event kernel
        // applies: trace-free, analytic between crossings.
        let mut cfg = RunConfig::default()
            .without_trace()
            .with_kernel(crate::Kernel::Event);
        // Resolve fast pulses: at least 32 steps across the pulse.
        if width.get() / cfg.dt.get() < 32.0 {
            cfg.dt = width / 32.0;
        }
        let out = sys.run_profile(&pulse, cfg);
        if !out.completed() {
            continue;
        }
        let v_delta = out.v_delta();
        let Some(i_in) = sys.booster().input_current(out.v_min, i_test) else {
            continue;
        };
        if i_in.get() <= 0.0 || v_delta.get() <= 0.0 {
            continue;
        }
        points.push((f, Ohms::new(v_delta.get() / i_in.get())));
    }
    assert!(
        !points.is_empty(),
        "no frequency produced a valid ESR measurement"
    );
    // Deduplicate identical frequencies defensively (ascending already).
    points.dedup_by(|a, b| a.0.get() == b.0.get());
    EsrCurve::new(points)
}

/// The standard probe frequencies used when characterising a power system:
/// pulse widths from 100 ms up to 1 ms, log-spaced.
#[must_use]
pub fn standard_probe_frequencies() -> Vec<Hertz> {
    [10.0, 21.5, 46.4, 100.0, 215.0, 464.0, 1000.0]
        .into_iter()
        .map(Hertz::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_curve_is_constant() {
        let c = EsrCurve::flat(Ohms::new(3.3));
        assert_eq!(c.at(Hertz::new(0.1)), Ohms::new(3.3));
        assert_eq!(c.at(Hertz::new(1e5)), Ohms::new(3.3));
    }

    #[test]
    fn interpolation_is_log_frequency() {
        let c = EsrCurve::new(vec![
            (Hertz::new(10.0), Ohms::new(4.0)),
            (Hertz::new(1000.0), Ohms::new(2.0)),
        ]);
        // Geometric midpoint of 10 and 1000 is 100 → arithmetic midpoint
        // of the resistances.
        assert!(c.at(Hertz::new(100.0)).approx_eq(Ohms::new(3.0), 1e-9));
        // Clamped outside the range.
        assert_eq!(c.at(Hertz::new(1.0)), Ohms::new(4.0));
        assert_eq!(c.at(Hertz::new(1e6)), Ohms::new(2.0));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_points() {
        let _ = EsrCurve::new(vec![
            (Hertz::new(100.0), Ohms::new(1.0)),
            (Hertz::new(10.0), Ohms::new(2.0)),
        ]);
    }

    #[test]
    fn measured_curve_on_ideal_bank_recovers_its_esr() {
        let make = || PowerSystem::capybara();
        let curve = measure_esr_curve(
            &make,
            Amps::from_milli(25.0),
            &[Hertz::new(10.0), Hertz::new(100.0)],
        );
        for &(f, r) in curve.points() {
            assert!(
                r.approx_eq(Ohms::new(3.3), 0.2),
                "R({f}) = {r}, expected ≈ 3.3 Ω"
            );
        }
    }

    #[test]
    fn measured_curve_on_two_branch_bank_falls_with_frequency() {
        let make = || PowerSystem::capybara_two_branch();
        let curve = measure_esr_curve(&make, Amps::from_milli(25.0), &standard_probe_frequencies());
        assert!(curve.points().len() >= 3);
        let lowest = curve.points().first().unwrap().1;
        let highest = curve.points().last().unwrap().1;
        assert!(
            lowest.get() > highest.get(),
            "expected descending ESR: {lowest} at low f vs {highest} at high f"
        );
    }
}

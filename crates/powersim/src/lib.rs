//! Circuit-level simulation of an energy-harvesting power system.
//!
//! This crate is the hardware substitute for the paper's Capybara platform:
//! a fixed-step simulator of the §II-A power-system architecture —
//!
//! ```text
//!  harvester → input booster → [ energy buffer: capacitor(s) + ESR ]
//!                                    │ V_cap (observable node)
//!                              voltage monitor (V_high / V_off hysteresis)
//!                                    │
//!                              output booster (η = m·V + b) → load @ V_out
//! ```
//!
//! The energy buffer is a parallel network of `(C, R_esr, I_leak)` branches,
//! which uniformly models a single supercapacitor bank, a bank plus
//! decoupling capacitance (the §II-D ablation), and the two-branch ladder
//! model that gives supercapacitors their frequency-dependent ESR.
//!
//! The simulator integrates `I = C·dV/dt` exactly as the paper's charge
//! model assumes, but at much finer resolution and with the nonidealities
//! (booster efficiency vs voltage, leakage, charge redistribution between
//! branches, aging) that make energy-only charge management fail. It serves
//! as *ground truth*: the analytical models under test (Culpeo-PG,
//! Culpeo-R, CatNap's estimators) are judged against brute-force searches
//! run on this plant.
//!
//! ```
//! use culpeo_powersim::PowerSystem;
//! use culpeo_loadgen::LoadProfile;
//! use culpeo_units::{Amps, Seconds, Volts};
//!
//! let mut sys = PowerSystem::capybara();
//! sys.set_buffer_voltage(Volts::new(2.2));
//! sys.force_output_enabled();
//! let load = LoadProfile::constant("pulse", Amps::from_milli(25.0), Seconds::from_milli(10.0));
//! let outcome = sys.run_profile(&load, Default::default());
//! assert!(outcome.completed());
//! // ESR makes the minimum voltage dip below the post-rebound final value.
//! assert!(outcome.v_min < outcome.v_final);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod booster;
mod capacitor;
mod energy;
mod engine;
mod esr_curve;
mod event;
mod harvester;
mod lanes;
mod monitor;
mod network;
mod vtrace;

pub use audit::{Auditor, Violation};
pub use booster::{EfficiencyCurve, OutputBooster};
pub use capacitor::{AgingState, CapacitorBranch};
pub use energy::EnergyLedger;
pub use engine::{Kernel, PowerSystem, PowerSystemBuilder, RunConfig, RunOutcome, StepOutput};
pub use esr_curve::{measure_esr_curve, standard_probe_frequencies, EsrCurve};
pub use event::{BreakOn, EventStepper, SpanEnd};
pub use harvester::Harvester;
pub use lanes::Lanes;
pub use monitor::{MonitorState, VoltageMonitor};
pub use network::{BranchCurrents, BufferNetwork, NodeSolution};
pub use vtrace::{VoltageSample, VoltageTrace};

/// The default integration step: 8 µs, i.e. the paper's 125 kHz profiling
/// rate.
pub const DEFAULT_DT: culpeo_units::Seconds = culpeo_units::Seconds::new(8e-6);

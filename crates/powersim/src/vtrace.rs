//! Recorded voltage/current traces from simulation runs.

use culpeo_units::{Amps, Seconds, Volts};

/// One recorded instant of a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageSample {
    /// Simulation time.
    pub t: Seconds,
    /// Observable buffer-node voltage.
    pub v_node: Volts,
    /// Current drawn by the output booster from the node.
    pub i_in: Amps,
}

/// A time series of buffer-node observations, decimated to a configurable
/// stride to keep long application runs affordable.
///
/// The minimum voltage is tracked over *every* step regardless of stride —
/// the whole point of the paper is that the minimum matters, so it must
/// never be aliased away by decimation.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageTrace {
    samples: Vec<VoltageSample>,
    stride: usize,
    counter: usize,
    v_min: Volts,
    t_min: Seconds,
    seen_any: bool,
}

impl VoltageTrace {
    /// Creates a trace recording every `stride`-th sample.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0, "stride must be at least 1");
        Self {
            samples: Vec::new(),
            stride,
            counter: 0,
            // Sentinel above any reachable voltage; `seen_any` gates its
            // exposure. Finite so the strict-finite guard stays quiet.
            v_min: Volts::new(f64::MAX),
            t_min: Seconds::ZERO,
            seen_any: false,
        }
    }

    /// A trace that records nothing but still tracks the minimum.
    #[must_use]
    pub fn min_only() -> Self {
        Self::new(usize::MAX)
    }

    /// Feeds one simulation step into the trace.
    pub fn push(&mut self, sample: VoltageSample) {
        self.seen_any = true;
        if sample.v_node < self.v_min {
            self.v_min = sample.v_node;
            self.t_min = sample.t;
        }
        if self.counter == 0 {
            self.samples.push(sample);
        }
        self.counter = (self.counter + 1) % self.stride.max(1);
        if self.stride == usize::MAX {
            // min_only mode: drop the sample we just stored to keep memory flat.
            self.samples.clear();
            self.counter = 1;
        }
    }

    /// The recorded (decimated) samples.
    #[must_use]
    pub fn samples(&self) -> &[VoltageSample] {
        &self.samples
    }

    /// The minimum node voltage observed over all pushed steps, with its
    /// timestamp. `None` before any sample arrives.
    #[must_use]
    pub fn minimum(&self) -> Option<(Seconds, Volts)> {
        self.seen_any.then_some((self.t_min, self.v_min))
    }

    /// The final recorded node voltage, if any sample was recorded.
    #[must_use]
    pub fn last(&self) -> Option<VoltageSample> {
        self.samples.last().copied()
    }

    /// Number of retained samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl Default for VoltageTrace {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, v: f64) -> VoltageSample {
        VoltageSample {
            t: Seconds::new(t),
            v_node: Volts::new(v),
            i_in: Amps::ZERO,
        }
    }

    #[test]
    fn records_all_with_stride_one() {
        let mut tr = VoltageTrace::new(1);
        for k in 0..5 {
            tr.push(sample(k as f64, 2.0));
        }
        assert_eq!(tr.len(), 5);
        assert!(!tr.is_empty());
    }

    #[test]
    fn decimates_but_keeps_minimum() {
        let mut tr = VoltageTrace::new(10);
        for k in 0..100 {
            let v = if k == 55 { 1.5 } else { 2.0 };
            tr.push(sample(k as f64, v));
        }
        assert_eq!(tr.len(), 10);
        let (t_min, v_min) = tr.minimum().unwrap();
        assert_eq!(v_min, Volts::new(1.5));
        assert_eq!(t_min, Seconds::new(55.0));
        // The dip itself was decimated away…
        assert!(tr.samples().iter().all(|s| s.v_node > Volts::new(1.9)));
    }

    #[test]
    fn min_only_keeps_memory_flat() {
        let mut tr = VoltageTrace::min_only();
        for k in 0..10_000 {
            tr.push(sample(k as f64, 2.0 - k as f64 * 1e-5));
        }
        assert!(tr.is_empty());
        assert!(tr.minimum().is_some());
    }

    #[test]
    fn minimum_none_before_any_push() {
        let tr = VoltageTrace::new(1);
        assert!(tr.minimum().is_none());
        assert!(tr.last().is_none());
    }

    #[test]
    fn last_returns_latest_recorded() {
        let mut tr = VoltageTrace::new(1);
        tr.push(sample(0.0, 2.0));
        tr.push(sample(1.0, 1.9));
        assert_eq!(tr.last().unwrap().v_node, Volts::new(1.9));
    }
}

//! The voltage monitor: `V_high` / `V_off` hysteresis gating the output
//! booster.

use culpeo_units::Volts;

/// Which side of the hysteresis loop the monitor is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorState {
    /// The output booster is enabled; software may run.
    OutputEnabled,
    /// The device browned out (or has not yet charged); the output booster
    /// stays disabled until the buffer fully recharges to `V_high`.
    Recharging,
}

/// The BU4924-like voltage monitor of §II-A.
///
/// Software executes only while the buffer voltage is between `V_high` and
/// `V_off`: the monitor enables the output booster when the buffer first
/// reaches `V_high` and disables it when the (observable, ESR-inclusive)
/// node voltage dips below `V_off` — after which the system must *fully*
/// recharge before software runs again. That full-recharge hysteresis is
/// what makes a brownout so costly, and what Culpeo exists to avoid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageMonitor {
    v_high: Volts,
    v_off: Volts,
    state: MonitorState,
}

impl VoltageMonitor {
    /// Creates a monitor starting in the [`MonitorState::Recharging`] state
    /// (a freshly deployed device has an empty buffer).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < v_off < v_high`.
    #[must_use]
    pub fn new(v_high: Volts, v_off: Volts) -> Self {
        assert!(
            Volts::ZERO < v_off && v_off < v_high,
            "monitor thresholds must satisfy 0 < V_off < V_high"
        );
        Self {
            v_high,
            v_off,
            state: MonitorState::Recharging,
        }
    }

    /// The Capybara configuration: `V_high` = 2.56 V, `V_off` = 1.6 V.
    #[must_use]
    pub fn capybara() -> Self {
        Self::new(Volts::new(2.56), Volts::new(1.6))
    }

    /// The upper threshold that re-enables the output booster.
    #[must_use]
    pub fn v_high(&self) -> Volts {
        self.v_high
    }

    /// The power-off threshold.
    #[must_use]
    pub fn v_off(&self) -> Volts {
        self.v_off
    }

    /// The full software-operating voltage range, `V_high − V_off` — the
    /// denominator of every "% of operating range" figure in the paper.
    #[must_use]
    pub fn operating_range(&self) -> Volts {
        self.v_high - self.v_off
    }

    /// The current hysteresis state.
    #[must_use]
    pub fn state(&self) -> MonitorState {
        self.state
    }

    /// True when the output booster is currently allowed to deliver.
    #[must_use]
    pub fn output_enabled(&self) -> bool {
        self.state == MonitorState::OutputEnabled
    }

    /// Observes the node voltage and advances the hysteresis. Returns the
    /// new state.
    pub fn observe(&mut self, v_node: Volts) -> MonitorState {
        match self.state {
            MonitorState::OutputEnabled => {
                if v_node < self.v_off {
                    self.state = MonitorState::Recharging;
                }
            }
            MonitorState::Recharging => {
                if v_node >= self.v_high {
                    self.state = MonitorState::OutputEnabled;
                }
            }
        }
        self.state
    }

    /// Forces the output on regardless of voltage — the §VI-A test-harness
    /// modification ("explicitly triggers the power system to begin
    /// delivering power") that lets `V_safe` validation start a task at an
    /// arbitrary voltage.
    pub fn force_enable(&mut self) {
        self.state = MonitorState::OutputEnabled;
    }
}

impl Default for VoltageMonitor {
    fn default() -> Self {
        Self::capybara()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_recharging_until_v_high() {
        let mut m = VoltageMonitor::capybara();
        assert!(!m.output_enabled());
        m.observe(Volts::new(2.0));
        assert!(!m.output_enabled());
        m.observe(Volts::new(2.56));
        assert!(m.output_enabled());
    }

    #[test]
    fn brownout_requires_full_recharge() {
        let mut m = VoltageMonitor::capybara();
        m.force_enable();
        m.observe(Volts::new(1.59));
        assert_eq!(m.state(), MonitorState::Recharging);
        // Merely recovering above V_off is not enough…
        m.observe(Volts::new(2.2));
        assert!(!m.output_enabled());
        // …the buffer must reach V_high again.
        m.observe(Volts::new(2.56));
        assert!(m.output_enabled());
    }

    #[test]
    fn stays_enabled_at_exactly_v_off() {
        let mut m = VoltageMonitor::capybara();
        m.force_enable();
        m.observe(Volts::new(1.6));
        assert!(m.output_enabled());
    }

    #[test]
    fn operating_range() {
        let m = VoltageMonitor::capybara();
        assert!(m.operating_range().approx_eq(Volts::new(0.96), 1e-12));
    }

    #[test]
    #[should_panic(expected = "V_off < V_high")]
    fn rejects_inverted_thresholds() {
        let _ = VoltageMonitor::new(Volts::new(1.0), Volts::new(2.0));
    }
}

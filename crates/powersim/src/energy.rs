//! Energy bookkeeping across a simulation run.

use culpeo_units::Joules;

/// A ledger of where every joule went during a run.
///
/// The simulator's conservation invariant — stored-energy change equals
/// harvested energy minus delivered energy minus losses — is the property
/// tests' anchor: if the plant leaks energy numerically, every `V_safe`
/// comparison downstream is suspect.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyLedger {
    /// Energy delivered to the load at the regulated output.
    pub delivered: Joules,
    /// Energy dissipated in branch ESRs (`Σ I²R·dt`).
    pub esr_loss: Joules,
    /// Energy lost in the output booster (`P_in − P_out`).
    pub booster_loss: Joules,
    /// Energy drained by capacitor leakage.
    pub leakage_loss: Joules,
    /// Energy delivered into the buffer by the harvester.
    pub harvested: Joules,
}

impl EnergyLedger {
    /// A fresh, all-zero ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy that left the buffer (delivered plus every loss).
    #[must_use]
    pub fn total_outflow(&self) -> Joules {
        self.delivered + self.esr_loss + self.booster_loss + self.leakage_loss
    }

    /// The expected change in stored energy: harvested minus outflow.
    /// Compare against the buffer's actual `½CV²` delta to audit
    /// conservation.
    #[must_use]
    pub fn expected_storage_delta(&self) -> Joules {
        self.harvested - self.total_outflow()
    }

    /// The movements recorded since `before` was captured: every field of
    /// `self` minus the same field of `before`.
    ///
    /// `run_profile` snapshots the cumulative ledger at entry and reports
    /// `final.delta(&snapshot)`; keeping the subtraction here means a new
    /// ledger field cannot be silently dropped from per-run reporting.
    #[must_use]
    pub fn delta(&self, before: &EnergyLedger) -> EnergyLedger {
        EnergyLedger {
            delivered: self.delivered - before.delivered,
            esr_loss: self.esr_loss - before.esr_loss,
            booster_loss: self.booster_loss - before.booster_loss,
            leakage_loss: self.leakage_loss - before.leakage_loss,
            harvested: self.harvested - before.harvested,
        }
    }

    /// Merges another ledger into this one (e.g. accumulating per-task
    /// ledgers into a per-trial total).
    pub fn absorb(&mut self, other: &EnergyLedger) {
        self.delivered += other.delivered;
        self.esr_loss += other.esr_loss;
        self.booster_loss += other.booster_loss;
        self.leakage_loss += other.leakage_loss;
        self.harvested += other.harvested;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outflow_sums_components() {
        let l = EnergyLedger {
            delivered: Joules::new(1.0),
            esr_loss: Joules::new(0.2),
            booster_loss: Joules::new(0.3),
            leakage_loss: Joules::new(0.1),
            harvested: Joules::new(2.0),
        };
        assert!(l.total_outflow().approx_eq(Joules::new(1.6), 1e-12));
        assert!(l
            .expected_storage_delta()
            .approx_eq(Joules::new(0.4), 1e-12));
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = EnergyLedger::new();
        let b = EnergyLedger {
            delivered: Joules::new(1.0),
            ..EnergyLedger::new()
        };
        a.absorb(&b);
        a.absorb(&b);
        assert!(a.delivered.approx_eq(Joules::new(2.0), 1e-12));
    }
}

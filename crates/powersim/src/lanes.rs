//! Batched SoA lane execution: one kernel invocation advances many
//! independent simulations.
//!
//! The event kernel's cheap loop is latency-bound — its loop-carried
//! `v → ds → v` chain leaves most of the core idle between dependent
//! multiply-adds. Running `W` independent lanes in lock-step interleaves
//! `W` such chains, so the same functional units retire several lanes'
//! steps per chain latency. The layout is structure-of-arrays with the
//! lane index innermost (`a[branch][lane]`), which also lets the compiler
//! vectorise across lanes.
//!
//! Correctness contract: a batch run is **bitwise identical** to running
//! [`PowerSystem::run_profile`] on each lane serially. Each lane performs
//! exactly the scalar kernel's arithmetic in exactly its order — the pack
//! loop only interleaves *between* lanes — and every orchestration
//! decision (piece plan, chunk anchors, guard-band real-step blocks,
//! settle) reuses the scalar kernel's own code paths. Lanes the event
//! kernel does not cover (fixed-step configs, full-trace recording,
//! exotic plants) silently take the scalar path inside the batch call.

use culpeo_loadgen::LoadProfile;
use culpeo_units::{Amps, Seconds, Volts};

use crate::engine::{Kernel, RunConfig};
use crate::event::{
    breaks, plan_pieces, Acc, BreakOn, ChunkPrep, ChunkSums, EventStepper, Piece, MAX_BRANCHES,
    REAL_BLOCK,
};
use crate::{EnergyLedger, PowerSystem, RunOutcome, StepOutput, VoltageSample, VoltageTrace};

/// W-wide batched lane executor (see the module docs).
///
/// `W` is the lock-step width: how many lanes one pack advances per
/// kernel invocation. 8 saturates the floating-point units on current
/// cores; the sweet spot is insensitive between 8 and 16.
pub struct Lanes<const W: usize>(());

impl<const W: usize> Lanes<W> {
    /// Runs `systems[i].run_profile(profiles[i], cfgs[i])` for every lane,
    /// advancing event-kernel lanes in W-wide lock-step packs. Returns the
    /// outcomes in input order; each outcome — and each plant's final
    /// state — is bitwise what the serial call would have produced.
    ///
    /// # Panics
    ///
    /// Panics when the three slices' lengths differ.
    #[must_use]
    pub fn run(
        systems: &mut [PowerSystem],
        profiles: &[&LoadProfile],
        cfgs: &[RunConfig],
    ) -> Vec<RunOutcome> {
        assert_eq!(systems.len(), profiles.len(), "one profile per lane");
        assert_eq!(systems.len(), cfgs.len(), "one config per lane");
        let mut outcomes: Vec<Option<RunOutcome>> = Vec::with_capacity(systems.len());
        outcomes.resize_with(systems.len(), || None);

        let mut lanes: Vec<Lane<'_, '_>> = Vec::new();
        for (i, sys) in systems.iter_mut().enumerate() {
            let cfg = cfgs[i];
            let eligible = cfg.kernel == Kernel::Event
                && (cfg.summary_only || cfg.record_stride == usize::MAX)
                && EventStepper::new(sys, cfg.dt).capable();
            if eligible {
                lanes.push(Lane::new(i, sys, profiles[i], cfg));
            } else {
                // Out of the batch kernel's scope: the scalar entry point
                // (which picks event or fixed itself) is the reference.
                outcomes[i] = Some(sys.run_profile(profiles[i], cfg));
            }
        }

        // Round loop: every live lane advances (scalar) to its next
        // prepared chunk, then same-shape chunks run in lock-step packs.
        loop {
            let mut pending: Vec<usize> = Vec::new();
            for (j, lane) in lanes.iter_mut().enumerate() {
                if !lane.done && lane.pending.is_none() {
                    lane.advance();
                }
                if lane.pending.is_some() {
                    pending.push(j);
                }
            }
            if pending.is_empty() {
                break;
            }
            // Group by (branch count, charge mode) — the pack loop's
            // monomorphisation axes. Sort is stable on lane order, so the
            // grouping is deterministic (not that it matters: lanes are
            // arithmetically independent).
            pending.sort_by_key(|&j| (lanes[j].n, lanes[j].pending.as_ref().unwrap().prep.is_cp));
            let mut start = 0;
            while start < pending.len() {
                let j0 = pending[start];
                let key = (lanes[j0].n, lanes[j0].pending.as_ref().unwrap().prep.is_cp);
                let mut end = start + 1;
                while end < pending.len() {
                    let j = pending[end];
                    if (lanes[j].n, lanes[j].pending.as_ref().unwrap().prep.is_cp) != key {
                        break;
                    }
                    end += 1;
                }
                for pack in pending[start..end].chunks(W.max(1)) {
                    let mut jobs: Vec<PackJob> = pack
                        .iter()
                        .map(|&j| {
                            let p = lanes[j].pending.take().expect("pending chunk");
                            PackJob {
                                y: p.prep.y,
                                prep: p.prep,
                                max_steps: p.max_steps,
                                sums: ChunkSums::new(),
                            }
                        })
                        .collect();
                    run_pack::<W>(key.0, key.1, &mut jobs);
                    for (job, &j) in jobs.iter().zip(pack) {
                        let lane = &mut lanes[j];
                        let mut stepper = EventStepper::new(lane.sys, lane.cfg.dt);
                        stepper.commit_chunk(&job.prep, &job.y, &job.sums, &mut lane.acc);
                        lane.off += job.sums.done;
                        if job.sums.done == 0 {
                            // Exactly the scalar kernel's rule: a chunk
                            // that commits nothing forces one real block.
                            lane.force_real = true;
                        }
                    }
                }
                start = end;
            }
        }

        for lane in lanes {
            let (i, outcome) = lane.finish();
            outcomes[i] = Some(outcome);
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every lane produced an outcome"))
            .collect()
    }
}

/// A prepared chunk parked until its pack runs.
struct PendingChunk {
    prep: ChunkPrep,
    max_steps: usize,
}

/// One lane of a pack: the anchored chunk, its working branch charges, and
/// the accumulators the pack loop fills.
struct PackJob {
    prep: ChunkPrep,
    max_steps: usize,
    y: [f64; MAX_BRANCHES],
    sums: ChunkSums,
}

/// One in-flight profile run: the scalar kernel's `run_plan` state machine
/// unrolled so it can pause at every prepared chunk.
struct Lane<'a, 'p> {
    idx: usize,
    sys: &'a mut PowerSystem,
    profile: &'p LoadProfile,
    cfg: RunConfig,
    n: usize,
    plan: Vec<Piece>,
    piece: usize,
    /// Steps completed inside the current piece.
    off: usize,
    acc: Acc,
    broke: Option<StepOutput>,
    force_real: bool,
    pending: Option<PendingChunk>,
    done: bool,
    ledger_before: EnergyLedger,
    v_start: Volts,
    t0: Seconds,
}

impl<'a, 'p> Lane<'a, 'p> {
    fn new(idx: usize, sys: &'a mut PowerSystem, profile: &'p LoadProfile, cfg: RunConfig) -> Self {
        let ledger_before = sys.ledger();
        let v_start = sys.v_node();
        let t0 = sys.time();
        let total = profile.duration().steps(cfg.dt).max(1);
        let plan = plan_pieces(profile, cfg.dt.get(), total);
        let n = sys.buffer().branches().len();
        Self {
            idx,
            sys,
            profile,
            cfg,
            n,
            plan,
            piece: 0,
            off: 0,
            acc: Acc::new(),
            broke: None,
            force_real: false,
            pending: None,
            done: false,
            ledger_before,
            v_start,
            t0,
        }
    }

    /// Advances scalar work — per-step pieces, guard-band real blocks —
    /// until the lane either parks a prepared chunk in `pending` or
    /// finishes its plan (completion or policy break).
    fn advance(&mut self) {
        let dt = self.cfg.dt;
        while !self.done && self.pending.is_none() {
            let Some(&piece) = self.plan.get(self.piece) else {
                self.done = true;
                return;
            };
            match piece {
                Piece::Each { k0, steps } => {
                    // A fresh cursor answers any monotone query sequence
                    // identically to the plan-long cursor the scalar
                    // kernel carries.
                    let mut cursor = self.profile.cursor();
                    for k in (k0 + self.off)..(k0 + steps) {
                        let i = cursor.current_at(Seconds::new(k as f64 * dt.get()));
                        let out = self.sys.step(i, dt);
                        self.acc.observe(&out);
                        self.off += 1;
                        if breaks(BreakOn::MonitorRecharging, i, &out) {
                            self.broke = Some(out);
                            self.done = true;
                            return;
                        }
                    }
                    self.piece += 1;
                    self.off = 0;
                }
                Piece::Const { i, steps } => {
                    if self.off >= steps {
                        self.piece += 1;
                        self.off = 0;
                        continue;
                    }
                    let remaining = steps - self.off;
                    let stepper = EventStepper::new(self.sys, dt);
                    let action = if self.force_real {
                        None
                    } else {
                        stepper.span_action(i, remaining, BreakOn::MonitorRecharging)
                    };
                    self.force_real = false;
                    let prepared = action.and_then(|(charge, phase_steps)| {
                        stepper
                            .prepare_chunk(i, charge)
                            .map(|prep| (prep, phase_steps))
                    });
                    if let Some((prep, max_steps)) = prepared {
                        self.pending = Some(PendingChunk { prep, max_steps });
                        return;
                    }
                    // Guard-band block: literal steps with the exact
                    // fixed-step break semantics.
                    let block = remaining.min(REAL_BLOCK);
                    for _ in 0..block {
                        let out = self.sys.step(i, dt);
                        self.acc.observe(&out);
                        self.off += 1;
                        if breaks(BreakOn::MonitorRecharging, i, &out) {
                            self.broke = Some(out);
                            self.done = true;
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Assembles the lane's [`RunOutcome`] exactly as the scalar event
    /// entry point does.
    fn finish(mut self) -> (usize, RunOutcome) {
        let cfg = self.cfg;
        let brownout = self
            .broke
            .as_ref()
            .map(|out| Seconds::new(out.t.get() - self.t0.get()));
        if !self.acc.seen {
            self.acc.v_min = self.v_start.get();
            self.acc.t_min = 0.0;
        }
        let v_final = if brownout.is_none() {
            self.sys.settle(cfg)
        } else {
            self.sys.v_node()
        };
        let trace = if cfg.summary_only {
            VoltageTrace::min_only()
        } else {
            let mut tr = VoltageTrace::new(usize::MAX);
            tr.push(VoltageSample {
                t: Seconds::new(self.acc.t_min),
                v_node: Volts::new(self.acc.v_min),
                i_in: Amps::ZERO,
            });
            tr
        };
        let outcome = RunOutcome {
            trace,
            v_start: self.v_start,
            v_min: Volts::new(self.acc.v_min),
            t_min: Seconds::new(self.acc.t_min),
            v_final,
            brownout,
            collapsed: self.acc.collapsed,
            ledger: self.sys.ledger().delta(&self.ledger_before),
        };
        (self.idx, outcome)
    }
}

/// Monomorphises the pack loop on branch count and charge mode, mirroring
/// the scalar kernel's dispatch.
fn run_pack<const W: usize>(n: usize, is_cp: bool, jobs: &mut [PackJob]) {
    debug_assert!(jobs.len() <= W.max(1));
    match (n, is_cp) {
        (1, false) => lanes_pack::<1, false, W>(jobs),
        (2, false) => lanes_pack::<2, false, W>(jobs),
        (3, false) => lanes_pack::<3, false, W>(jobs),
        (_, false) => lanes_pack::<4, false, W>(jobs),
        (1, true) => lanes_pack::<1, true, W>(jobs),
        (2, true) => lanes_pack::<2, true, W>(jobs),
        (3, true) => lanes_pack::<3, true, W>(jobs),
        (_, true) => lanes_pack::<4, true, W>(jobs),
    }
}

/// The W-wide lock-step chunk loop. Per lane this is the scalar
/// `chunk_loop` body, expression for expression, so each lane's result is
/// bitwise the scalar kernel's; the lane dimension only adds independent
/// work between the steps of each lane's dependency chain.
#[allow(clippy::too_many_lines)]
fn lanes_pack<const N: usize, const CP: bool, const W: usize>(jobs: &mut [PackJob]) {
    // SoA mirrors of the per-lane parameters, lane index innermost.
    let mut v0 = [0.0; W];
    let mut beta = [0.0; W];
    let mut g2 = [0.0; W];
    let mut lo = [0.0; W];
    let mut hi = [0.0; W];
    let mut bw = [0.0; W];
    let mut cwm = [0.0; W];
    let mut ds = [0.0; W];
    let mut dlv = [false; W];
    let mut p_out = [0.0; W];
    let mut inv_eta0 = [0.0; W];
    let mut xs = [0.0; W];
    let mut p_pow = [0.0; W];
    let mut ic0 = [0.0; W];
    let mut vprev = [0.0; W];
    let mut ic = [0.0; W];
    let mut max = [0usize; W];
    let mut active = [false; W];
    let mut a = [[0.0; W]; N];
    let mut bv = [[0.0; W]; N];
    let mut c = [[0.0; W]; N];
    let mut aw = [[0.0; W]; N];
    let mut rinv = [[0.0; W]; N];
    let mut y = [[0.0; W]; N];
    let mut esr_sq = [[0.0; W]; N];
    let mut leak_sum = [[0.0; W]; N];
    let mut hsum = [0.0; W];
    let mut bsum = [0.0; W];
    let mut v_last = [0.0; W];
    let mut v_min = [f64::MAX; W];
    let mut k_min = [0usize; W];
    let mut done = [0usize; W];

    for (l, job) in jobs.iter().enumerate() {
        let p = &job.prep.params;
        v0[l] = p.v0;
        beta[l] = p.beta;
        g2[l] = 0.5 * p.gamma;
        lo[l] = p.lo;
        hi[l] = p.hi;
        dlv[l] = p.delivering;
        p_out[l] = p.p_out;
        inv_eta0[l] = p.inv_eta0;
        xs[l] = p.xs;
        p_pow[l] = p.p_pow;
        ic0[l] = p.ic0;
        ic[l] = p.ic0;
        vprev[l] = p.v_prev;
        max[l] = job.max_steps;
        let mut cw = -p.w0;
        let mut bwl = 0.0;
        for b in 0..N {
            let bvv = p.rinv[b] * p.dtc[b];
            let av = 1.0 - bvv;
            a[b][l] = av;
            bv[b][l] = bvv;
            c[b][l] = -(p.leak[b] * p.dtc[b]);
            aw[b][l] = p.rinv[b] * av;
            bwl += p.rinv[b] * bvv;
            cw += p.rinv[b] * c[b][l];
            rinv[b][l] = p.rinv[b];
            y[b][l] = job.y[b];
        }
        bw[l] = bwl;
        cwm[l] = cw;
        // The anchor's fold is reproduced bitwise, so ds starts exactly 0.
        let mut w = 0.0;
        for b in 0..N {
            w += job.y[b] * p.rinv[b];
        }
        ds[l] = w - p.w0;
        active[l] = job.max_steps > 0;
    }

    // Live-lane compaction: `order[..live]` holds the lanes still
    // stepping; a finished lane swaps to the tail, so the hot loop never
    // revisits dead slots. Lanes are arithmetically independent, so the
    // visit order within a row cannot affect any lane's values.
    let mut order = [0usize; W];
    let mut live = 0;
    for (l, &on) in active.iter().enumerate() {
        if on {
            order[live] = l;
            live += 1;
        }
    }
    while live > 0 {
        let mut j = 0;
        while j < live {
            let l = order[j];
            let dst = if CP {
                ic[l] = p_pow[l] / vprev[l];
                ds[l] + (ic[l] - ic0[l])
            } else {
                ds[l]
            };
            let v = v0[l] + dst * (beta[l] + g2[l] * dst);
            if !(v > lo[l] && v < hi[l]) {
                live -= 1;
                order.swap(j, live);
                continue;
            }
            let mut ynew = [0.0; N];
            let mut floored = false;
            let mut t_off = cwm[l];
            for b in 0..N {
                let next = a[b][l] * y[b][l] + (bv[b][l] * v + c[b][l]);
                floored |= next < 0.0;
                ynew[b] = next;
                t_off += aw[b][l] * y[b][l];
            }
            if floored {
                live -= 1;
                order.swap(j, live);
                continue;
            }
            for b in 0..N {
                let ib = (y[b][l] - v) * rinv[b][l];
                esr_sq[b][l] += ib * ib;
                leak_sum[b][l] += y[b][l];
                y[b][l] = ynew[b];
            }
            ds[l] = bw[l] * v + t_off;
            if CP {
                hsum[l] += v * ic[l];
                vprev[l] = v;
            } else {
                hsum[l] += v;
            }
            if dlv[l] {
                let x = xs[l] * (v - v0[l]);
                bsum[l] += (p_out[l] * (1.0 - x + x * x) * inv_eta0[l] - p_out[l]).max(0.0);
            }
            if v < v_min[l] {
                v_min[l] = v;
                k_min[l] = done[l];
            }
            done[l] += 1;
            v_last[l] = v;
            if done[l] >= max[l] {
                live -= 1;
                order.swap(j, live);
                continue;
            }
            j += 1;
        }
    }

    for (l, job) in jobs.iter_mut().enumerate() {
        for b in 0..N {
            job.y[b] = y[b][l];
            job.sums.esr_sq[b] = esr_sq[b][l];
            job.sums.leak_sum[b] = leak_sum[b][l];
        }
        job.sums.hsum = hsum[l];
        job.sums.bsum = bsum[l];
        job.sums.v_last = v_last[l];
        job.sums.v_min = v_min[l];
        job.sums.k_min = k_min[l];
        job.sums.done = done[l];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Harvester;

    fn ma(v: f64) -> Amps {
        Amps::from_milli(v)
    }

    fn probe_cfg() -> RunConfig {
        RunConfig {
            dt: Seconds::from_micro(10.0),
            record_stride: usize::MAX,
            summary_only: true,
            kernel: Kernel::Event,
            ..RunConfig::default()
        }
    }

    /// Runs the same jobs serially and batched and demands bitwise-equal
    /// outcomes and final plant states.
    fn assert_batch_matches_serial(
        systems: &[PowerSystem],
        profiles: &[&LoadProfile],
        cfgs: &[RunConfig],
    ) {
        let mut serial: Vec<PowerSystem> = systems.to_vec();
        let expected: Vec<RunOutcome> = serial
            .iter_mut()
            .zip(profiles)
            .zip(cfgs)
            .map(|((sys, profile), &cfg)| sys.run_profile(profile, cfg))
            .collect();
        for width in [1usize, 3, 8] {
            let mut batched: Vec<PowerSystem> = systems.to_vec();
            let got = match width {
                1 => Lanes::<1>::run(&mut batched, profiles, cfgs),
                3 => Lanes::<3>::run(&mut batched, profiles, cfgs),
                _ => Lanes::<8>::run(&mut batched, profiles, cfgs),
            };
            assert_eq!(got, expected, "outcomes diverged at W={width}");
            for (i, (b, s)) in batched.iter().zip(&serial).enumerate() {
                assert_eq!(
                    b.v_node(),
                    s.v_node(),
                    "lane {i} plant state diverged at W={width}"
                );
            }
        }
    }

    fn plant_at(v: f64) -> PowerSystem {
        let mut sys = PowerSystem::capybara_two_branch();
        sys.set_buffer_voltage(Volts::new(v));
        sys.force_output_enabled();
        sys
    }

    #[test]
    fn probe_grid_batch_is_bitwise_serial() {
        let pulse = LoadProfile::constant("pulse", ma(25.0), Seconds::from_milli(10.0));
        let heavy = LoadProfile::constant("heavy", ma(50.0), Seconds::from_milli(100.0));
        let mixed = LoadProfile::builder("mixed")
            .hold(ma(25.0), Seconds::from_milli(5.0))
            .ramp(ma(25.0), ma(2.0), Seconds::from_milli(5.0))
            .burst(
                ma(40.0),
                ma(1.0),
                Seconds::from_milli(4.0),
                0.25,
                Seconds::from_milli(20.0),
            )
            .build();
        let mut systems = Vec::new();
        let mut profiles: Vec<&LoadProfile> = Vec::new();
        for (i, v) in [2.4, 2.2, 2.05, 1.9, 1.75, 2.3, 2.1].iter().enumerate() {
            systems.push(plant_at(*v));
            profiles.push(match i % 3 {
                0 => &pulse,
                1 => &heavy,
                _ => &mixed,
            });
        }
        let cfgs = vec![probe_cfg(); systems.len()];
        assert_batch_matches_serial(&systems, &profiles, &cfgs);
    }

    #[test]
    fn mixed_charge_modes_group_into_separate_packs() {
        let load = LoadProfile::constant("task", ma(20.0), Seconds::from_milli(30.0));
        let harvesters = [
            Harvester::Off,
            Harvester::ConstantCurrent(ma(5.0)),
            Harvester::weak_solar(),
            Harvester::weak_solar(),
            Harvester::ConstantCurrent(ma(2.0)),
        ];
        let systems: Vec<PowerSystem> = harvesters
            .iter()
            .map(|&h| {
                let mut sys = PowerSystem::builder()
                    .two_branch_bank()
                    .harvester(h)
                    .initial_voltage(Volts::new(2.15))
                    .build();
                sys.force_output_enabled();
                sys
            })
            .collect();
        let profiles: Vec<&LoadProfile> = vec![&load; systems.len()];
        let cfg = RunConfig {
            settle_timeout: Seconds::from_milli(200.0),
            ..probe_cfg()
        };
        let cfgs = vec![cfg; systems.len()];
        assert_batch_matches_serial(&systems, &profiles, &cfgs);
    }

    #[test]
    fn ineligible_lanes_fall_back_inside_the_batch() {
        let load = LoadProfile::constant("task", ma(10.0), Seconds::from_milli(5.0));
        let systems = vec![plant_at(2.3), plant_at(2.3), plant_at(2.3)];
        let profiles: Vec<&LoadProfile> = vec![&load; 3];
        // Lane 1 asks for the fixed-step kernel, lane 2 for a decimated
        // trace — both out of the batch kernel's scope.
        let cfgs = vec![
            probe_cfg(),
            RunConfig {
                kernel: Kernel::FixedStep,
                ..probe_cfg()
            },
            RunConfig {
                record_stride: 4,
                summary_only: false,
                ..probe_cfg()
            },
        ];
        assert_batch_matches_serial(&systems, &profiles, &cfgs);
    }

    #[test]
    fn brownout_lanes_mix_with_completing_lanes() {
        let heavy = LoadProfile::constant("heavy", ma(50.0), Seconds::from_milli(100.0));
        let systems = vec![plant_at(1.75), plant_at(2.45), plant_at(1.8), plant_at(2.4)];
        let profiles: Vec<&LoadProfile> = vec![&heavy; systems.len()];
        let cfgs = vec![probe_cfg(); systems.len()];
        assert_batch_matches_serial(&systems, &profiles, &cfgs);
    }

    #[test]
    #[ignore = "manual perf probe: cargo test -p culpeo-powersim --release -- --ignored lanes_perf"]
    fn lanes_perf_smoke() {
        let load = LoadProfile::constant("long", ma(25.0), Seconds::from_milli(100.0));
        let cfg = RunConfig {
            settle_timeout: Seconds::ZERO,
            ..probe_cfg()
        };
        let systems: Vec<PowerSystem> = (0..8).map(|_| plant_at(2.4)).collect();
        let profiles: Vec<&LoadProfile> = vec![&load; 8];
        let cfgs = vec![cfg; 8];

        let t0 = std::time::Instant::now();
        for _ in 0..50 {
            let mut s = systems.clone();
            for (sys, p) in s.iter_mut().zip(&profiles) {
                std::hint::black_box(sys.run_profile(p, cfg));
            }
        }
        println!("serial 8x100ms: {:?}", t0.elapsed() / 50);

        let t0 = std::time::Instant::now();
        for _ in 0..50 {
            let mut s = systems.clone();
            std::hint::black_box(Lanes::<8>::run(&mut s, &profiles, &cfgs));
        }
        println!("lanes8 8x100ms: {:?}", t0.elapsed() / 50);

        use std::sync::atomic::Ordering::Relaxed;
        crate::event::CHUNK_STEPS.store(0, Relaxed);
        crate::event::REAL_STEPS.store(0, Relaxed);
        crate::event::CHUNKS.store(0, Relaxed);
        let mut s = systems.clone();
        std::hint::black_box(Lanes::<8>::run(&mut s, &profiles, &cfgs));
        println!(
            "one batch: chunk_steps {} real_steps {} chunks {}",
            crate::event::CHUNK_STEPS.load(Relaxed),
            crate::event::REAL_STEPS.load(Relaxed),
            crate::event::CHUNKS.load(Relaxed),
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let got = Lanes::<8>::run(&mut [], &[], &[]);
        assert!(got.is_empty());
    }
}

//! The output booster: a regulated converter whose efficiency varies with
//! its input voltage.

use culpeo_units::{Amps, Volts, Watts};

/// A linear efficiency model `η(V) = m·V + b`, clamped to a sane range.
///
/// The paper assumes the output booster's efficiency changes little with
/// current and models it "as a line relating input voltage to efficiency"
/// (§IV-B); both Culpeo implementations share that assumption, and the
/// simulator uses the same family so model error comes from dynamics, not
/// from an unfair efficiency mismatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyCurve {
    slope: f64,
    intercept: f64,
    floor: f64,
    ceiling: f64,
}

impl EfficiencyCurve {
    /// Creates a curve from slope (per volt) and intercept, clamped to
    /// `[floor, ceiling]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < floor ≤ ceiling ≤ 1`.
    #[must_use]
    pub fn new(slope: f64, intercept: f64, floor: f64, ceiling: f64) -> Self {
        assert!(
            0.0 < floor && floor <= ceiling && ceiling <= 1.0,
            "efficiency clamp must satisfy 0 < floor ≤ ceiling ≤ 1"
        );
        Self {
            slope,
            intercept,
            floor,
            ceiling,
        }
    }

    /// A curve through two `(voltage, efficiency)` points.
    ///
    /// # Panics
    ///
    /// Panics if the two voltages coincide or the clamp range is invalid.
    #[must_use]
    pub fn through(p1: (Volts, f64), p2: (Volts, f64), floor: f64, ceiling: f64) -> Self {
        let dv = p2.0.get() - p1.0.get();
        assert!(dv.abs() > 1e-12, "efficiency points must differ in voltage");
        let slope = (p2.1 - p1.1) / dv;
        let intercept = p1.1 - slope * p1.0.get();
        Self::new(slope, intercept, floor, ceiling)
    }

    /// The TPS61200-like curve used for the simulated Capybara: 78 %
    /// efficient at 1.6 V rising to 87 % at 2.5 V.
    #[must_use]
    pub fn tps61200_like() -> Self {
        Self::through((Volts::new(1.6), 0.78), (Volts::new(2.5), 0.87), 0.05, 0.95)
    }

    /// Efficiency at input voltage `v`, clamped to the configured range.
    #[must_use]
    pub fn at(&self, v: Volts) -> f64 {
        (self.slope * v.get() + self.intercept).clamp(self.floor, self.ceiling)
    }

    /// The efficiency and its derivative `dη/dV` at `v`: the line's slope
    /// inside the clamp band, zero on the flats.
    #[must_use]
    pub fn at_with_slope(&self, v: Volts) -> (f64, f64) {
        let raw = self.slope * v.get() + self.intercept;
        if raw <= self.floor {
            (self.floor, 0.0)
        } else if raw >= self.ceiling {
            (self.ceiling, 0.0)
        } else {
            (raw, self.slope)
        }
    }

    /// The slope `m` of the underlying line.
    #[must_use]
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// The intercept `b` of the underlying line.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl Default for EfficiencyCurve {
    fn default() -> Self {
        Self::tps61200_like()
    }
}

/// The output booster: regulates the buffer's (sagging) voltage up/down to a
/// stable `V_out` for the load side, at the cost of `η(V_in)` efficiency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputBooster {
    v_out: Volts,
    efficiency: EfficiencyCurve,
    min_input: Volts,
}

impl OutputBooster {
    /// Creates a booster regulating to `v_out`.
    ///
    /// `min_input` is the input voltage below which the converter leaves
    /// its operational region entirely (distinct from — and lower than —
    /// the monitor's `V_off`); Figure 11 shows Energy-V estimates driving
    /// the booster into exactly this region.
    ///
    /// # Panics
    ///
    /// Panics if `v_out` or `min_input` is not strictly positive.
    #[must_use]
    pub fn new(v_out: Volts, efficiency: EfficiencyCurve, min_input: Volts) -> Self {
        assert!(v_out.get() > 0.0, "output voltage must be positive");
        assert!(
            min_input.get() > 0.0,
            "minimum input voltage must be positive"
        );
        Self {
            v_out,
            efficiency,
            min_input,
        }
    }

    /// The Capybara-like default: `V_out` = 2.55 V, TPS61200-like
    /// efficiency, operational down to 0.5 V input.
    #[must_use]
    pub fn capybara() -> Self {
        Self::new(
            Volts::new(2.55),
            EfficiencyCurve::tps61200_like(),
            Volts::new(0.5),
        )
    }

    /// The regulated output voltage.
    #[must_use]
    pub fn v_out(&self) -> Volts {
        self.v_out
    }

    /// The efficiency curve.
    #[must_use]
    pub fn efficiency(&self) -> &EfficiencyCurve {
        &self.efficiency
    }

    /// The minimum operational input voltage.
    #[must_use]
    pub fn min_input(&self) -> Volts {
        self.min_input
    }

    /// Power drawn from the buffer node at `v_in` to deliver `i_load` at
    /// the regulated output (`P_in = V_out·I_load / η(V_in)`).
    ///
    /// Returns `None` if the converter is below its operational input
    /// voltage — it cannot deliver at all there.
    #[must_use]
    pub fn input_power(&self, v_in: Volts, i_load: Amps) -> Option<Watts> {
        if v_in < self.min_input {
            return None;
        }
        let p_out = self.v_out * i_load;
        Some(Watts::new(p_out.get() / self.efficiency.at(v_in)))
    }

    /// Current drawn from the buffer node at `v_in` for load `i_load`
    /// (`I_in = P_in / V_in`), or `None` below the operational region.
    #[must_use]
    pub fn input_current(&self, v_in: Volts, i_load: Amps) -> Option<Amps> {
        self.input_power(v_in, i_load).map(|p| p.current_at(v_in))
    }
}

impl Default for OutputBooster {
    fn default() -> Self {
        Self::capybara()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_line_and_clamp() {
        let e = EfficiencyCurve::tps61200_like();
        assert!((e.at(Volts::new(1.6)) - 0.78).abs() < 1e-12);
        assert!((e.at(Volts::new(2.5)) - 0.87).abs() < 1e-12);
        // Far below the line: clamped at the floor, not negative.
        assert!((e.at(Volts::new(-10.0)) - 0.05).abs() < 1e-12);
        assert!((e.at(Volts::new(100.0)) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn efficiency_through_points_recovers_line() {
        let e = EfficiencyCurve::through((Volts::new(1.0), 0.7), (Volts::new(2.0), 0.8), 0.1, 0.9);
        assert!((e.slope() - 0.1).abs() < 1e-12);
        assert!((e.intercept() - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "differ in voltage")]
    fn through_rejects_coincident_points() {
        let _ = EfficiencyCurve::through((Volts::new(1.0), 0.7), (Volts::new(1.0), 0.8), 0.1, 0.9);
    }

    #[test]
    fn input_power_inflates_by_efficiency() {
        let b = OutputBooster::capybara();
        let v_in = Volts::new(2.0);
        let i = Amps::from_milli(50.0);
        let p_in = b.input_power(v_in, i).unwrap();
        let eta = b.efficiency().at(v_in);
        assert!((p_in.get() - 2.55 * 0.050 / eta).abs() < 1e-12);
        // Input current exceeds load current at similar voltages because of
        // the efficiency loss.
        let i_in = b.input_current(v_in, i).unwrap();
        assert!(i_in.get() > i.get());
    }

    #[test]
    fn below_operational_region_delivers_nothing() {
        let b = OutputBooster::capybara();
        assert!(b
            .input_power(Volts::new(0.4), Amps::from_milli(1.0))
            .is_none());
        assert!(b
            .input_current(Volts::new(0.3), Amps::from_milli(1.0))
            .is_none());
    }

    #[test]
    fn lower_input_voltage_draws_more_current() {
        let b = OutputBooster::capybara();
        let i = Amps::from_milli(25.0);
        let hi = b.input_current(Volts::new(2.5), i).unwrap();
        let lo = b.input_current(Volts::new(1.7), i).unwrap();
        // The §IV-C observation: "as V_cap decreases, the booster draws
        // more current from the capacitor".
        assert!(lo.get() > hi.get());
    }
}

//! The energy buffer as a parallel network of capacitor branches, and the
//! node solver that finds the observable buffer voltage under load.

use culpeo_units::{Amps, Farads, Joules, Volts};

use crate::{CapacitorBranch, OutputBooster};

/// A parallel network of [`CapacitorBranch`]es sharing one observable node.
///
/// One branch models a plain supercapacitor bank; two branches model either
/// the §II-D decoupling-capacitor ablation (a small low-ESR cap beside the
/// high-ESR bank) or the two-time-constant ladder that gives real
/// supercapacitors their frequency-dependent ESR; the representation
/// generalises to any branch count.
///
/// Branches can be individually *disconnected* — the reconfigurable
/// energy-storage arrays of Capybara and Morphy (§V-B) switch capacitor
/// banks in and out at runtime. A disconnected branch holds its charge
/// (minus its own leakage) and contributes nothing to the node.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferNetwork {
    branches: Vec<CapacitorBranch>,
    /// Per-branch switch state; disconnected branches float.
    connected: Vec<bool>,
}

/// The solved electrical state of the buffer node for one time step.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSolution {
    /// The observable node voltage (what the monitor and ADCs see).
    pub v_node: Volts,
    /// Current flowing into the output booster.
    pub i_in: Amps,
    /// Per-branch currents (positive = branch discharging into the node).
    pub branch_currents: BranchCurrents,
    /// True if no operating point exists — the load demands more power
    /// than the network can deliver at any voltage, so the rail collapses.
    pub collapsed: bool,
}

/// Per-branch currents for one solved step.
///
/// A `NodeSolution` is produced on every simulator step, so its branch
/// currents are stored inline for the branch counts that actually occur
/// (every plant in the workspace has ≤ 4 branches), spilling to the heap
/// only beyond that. This keeps `PowerSystem::step` allocation-free.
#[derive(Debug, Clone)]
pub struct BranchCurrents {
    inline: [Amps; Self::INLINE],
    len: usize,
    /// Holds *all* currents once the count exceeds `INLINE`; empty
    /// otherwise, so the live data is always one contiguous slice.
    spill: Vec<Amps>,
}

impl BranchCurrents {
    const INLINE: usize = 4;

    fn new() -> Self {
        Self {
            inline: [Amps::ZERO; Self::INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    fn push(&mut self, i: Amps) {
        if !self.spill.is_empty() {
            self.spill.push(i);
        } else if self.len < Self::INLINE {
            self.inline[self.len] = i;
        } else {
            self.spill.reserve(self.len + 1);
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(i);
        }
        self.len += 1;
    }

    /// The currents as one contiguous slice, in branch order.
    #[must_use]
    pub fn as_slice(&self) -> &[Amps] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Number of branches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no branches.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the currents in branch order.
    pub fn iter(&self) -> std::slice::Iter<'_, Amps> {
        self.as_slice().iter()
    }
}

impl std::ops::Index<usize> for BranchCurrents {
    type Output = Amps;

    fn index(&self, idx: usize) -> &Amps {
        &self.as_slice()[idx]
    }
}

impl<'a> IntoIterator for &'a BranchCurrents {
    type Item = &'a Amps;
    type IntoIter = std::slice::Iter<'a, Amps>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<Amps> for BranchCurrents {
    fn from_iter<I: IntoIterator<Item = Amps>>(iter: I) -> Self {
        let mut out = Self::new();
        for i in iter {
            out.push(i);
        }
        out
    }
}

impl PartialEq for BranchCurrents {
    fn eq(&self, other: &Self) -> bool {
        // Representation-insensitive: inline vs spilled storage of the
        // same currents compares equal.
        self.as_slice() == other.as_slice()
    }
}

impl BufferNetwork {
    /// Builds a network from its branches.
    ///
    /// # Panics
    ///
    /// Panics if no branches are supplied.
    #[must_use]
    pub fn new(branches: Vec<CapacitorBranch>) -> Self {
        assert!(!branches.is_empty(), "buffer needs at least one branch");
        let connected = vec![true; branches.len()];
        Self {
            branches,
            connected,
        }
    }

    /// A single-branch buffer.
    #[must_use]
    pub fn single(branch: CapacitorBranch) -> Self {
        Self::new(vec![branch])
    }

    /// The branches.
    #[must_use]
    pub fn branches(&self) -> &[CapacitorBranch] {
        &self.branches
    }

    /// Mutable access to the branches (test harness "discharge to level").
    pub fn branches_mut(&mut self) -> &mut [CapacitorBranch] {
        &mut self.branches
    }

    /// Adds a branch (e.g. bolts a decoupling capacitor onto the rail),
    /// connected.
    pub fn add_branch(&mut self, branch: CapacitorBranch) {
        self.branches.push(branch);
        self.connected.push(true);
    }

    /// Connects or disconnects branch `idx` (reconfigurable arrays,
    /// §V-B). Disconnecting is instantaneous; reconnecting a branch whose
    /// voltage differs from the node triggers the usual redistribution
    /// currents through the branch ESRs.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range, or if the change would leave the
    /// buffer with no connected branch.
    pub fn set_branch_connected(&mut self, idx: usize, connected: bool) {
        assert!(idx < self.branches.len(), "branch index out of range");
        self.connected[idx] = connected;
        assert!(
            self.connected.iter().any(|&c| c),
            "at least one branch must remain connected"
        );
    }

    /// Whether branch `idx` is connected.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn branch_connected(&self, idx: usize) -> bool {
        self.connected[idx]
    }

    /// Total capacitance of the *connected* branches only.
    #[must_use]
    pub fn connected_capacitance(&self) -> Farads {
        self.branches
            .iter()
            .zip(&self.connected)
            .filter(|&(_, &c)| c)
            .map(|(b, _)| b.capacitance())
            .sum()
    }

    /// Total capacitance of all branches.
    #[must_use]
    pub fn total_capacitance(&self) -> Farads {
        self.branches.iter().map(CapacitorBranch::capacitance).sum()
    }

    /// Total stored energy across branches.
    #[must_use]
    pub fn stored_energy(&self) -> Joules {
        self.branches
            .iter()
            .map(CapacitorBranch::stored_energy)
            .sum()
    }

    /// Sets every branch's internal voltage to `v` (a fully settled buffer).
    pub fn set_voltage(&mut self, v: Volts) {
        for b in &mut self.branches {
            b.set_v_internal(v);
        }
    }

    /// The node voltage with no load and no charging: the
    /// conductance-weighted average of branch internal voltages.
    #[must_use]
    pub fn open_circuit_voltage(&self) -> Volts {
        self.node_for_external(Amps::ZERO)
    }

    /// Node voltage given a fixed external current draw `i_ext`
    /// (positive = out of the network). Exact linear solve.
    fn node_for_external(&self, i_ext: Amps) -> Volts {
        let g: f64 = self.connected_branches().map(|b| 1.0 / b.esr().get()).sum();
        let weighted: f64 = self
            .connected_branches()
            .map(|b| b.v_internal().get() / b.esr().get())
            .sum();
        Volts::new((weighted - i_ext.get()) / g)
    }

    /// Iterates the connected branches.
    fn connected_branches(&self) -> impl Iterator<Item = &CapacitorBranch> {
        self.branches
            .iter()
            .zip(&self.connected)
            .filter(|&(_, &c)| c)
            .map(|(b, _)| b)
    }

    /// Supply-minus-demand imbalance at candidate node voltage `v`.
    fn imbalance(&self, v: Volts, booster: &OutputBooster, i_load: Amps, i_charge: Amps) -> f64 {
        let supply: f64 = self
            .connected_branches()
            .map(|b| b.current_into_node(v).get())
            .sum::<f64>()
            + i_charge.get();
        let demand = booster.input_current(v, i_load).map_or(0.0, |i| i.get());
        supply - demand
    }

    /// Solves the node voltage under a booster load of `i_load` (at the
    /// regulated output) plus a harvester charge current `i_charge`.
    ///
    /// The electrical balance is
    /// `Σ (V_i − V_n)/R_i + I_charge = P_out / (η(V_n)·V_n)`;
    /// the solver finds the **largest** root (the stable operating point)
    /// via damped Newton from the open-circuit voltage, falling back to a
    /// bracketed bisection. If no root exists above the booster's minimum
    /// input voltage, the rail has collapsed and
    /// [`NodeSolution::collapsed`] is set.
    #[must_use]
    pub fn solve_node(
        &self,
        booster: &OutputBooster,
        i_load: Amps,
        i_charge: Amps,
    ) -> NodeSolution {
        self.solve_node_hinted(booster, i_load, i_charge, None)
    }

    /// [`BufferNetwork::solve_node`] with an optional warm-start: `hint`
    /// is a previous solve's root for the *same load*, used as the Newton
    /// starting point instead of the closed-form seed. Between consecutive
    /// steps of a constant load segment the root drifts by microvolts, so
    /// the warm-started iteration converges immediately; a hint outside
    /// the physical bracket is ignored.
    #[must_use]
    pub fn solve_node_hinted(
        &self,
        booster: &OutputBooster,
        i_load: Amps,
        i_charge: Amps,
        hint: Option<f64>,
    ) -> NodeSolution {
        // Supply is affine in the node voltage —
        // `Σ (V_i − V_n)/R_i = W − G·V_n` — so the branch loop folds into
        // two constants for the whole solve and every Newton iteration
        // below is pure scalar arithmetic.
        let mut g = 0.0;
        let mut w = 0.0;
        for b in self.connected_branches() {
            let r = b.esr().get();
            g += 1.0 / r;
            w += b.v_internal().get() / r;
        }
        let v_oc = Volts::new((w + i_charge.get()) / g);

        // No load → exact linear solve, no iteration.
        if i_load.get() <= 0.0 {
            return self.solution_at(v_oc, Amps::ZERO, false);
        }

        let floor = booster.min_input();
        if v_oc <= floor {
            // Even unloaded the node is below the booster's reach.
            return self.solution_at(v_oc, Amps::ZERO, true);
        }

        // Seed Newton from the closed-form largest root of the η-frozen
        // balance: holding η at η(V_oc), `(W + I_c − G·v)·v = P_out/η` is
        // quadratic in v. Since η is non-decreasing in v, freezing it at
        // V_oc under-estimates demand, which puts this root at or *above*
        // the true operating point — the safe side for a largest-root
        // descent. The seed lands within the η-slope error of the answer,
        // so Newton below needs only a couple of iterations.
        let s = w + i_charge.get();
        let p_out = (booster.v_out() * i_load).get();
        let eta_curve = booster.efficiency();
        let mut v = match hint {
            Some(h) if h > floor.get() && h < v_oc.get() => h,
            _ => {
                let disc = s * s - 4.0 * g * (p_out / eta_curve.at(v_oc));
                if disc >= 0.0 {
                    ((s + disc.sqrt()) / (2.0 * g)).max(floor.get())
                } else {
                    // No η-frozen root; start just below open circuit as
                    // before (f(v_oc) < 0 because demand is positive
                    // there).
                    v_oc.get() - 1e-6
                }
            }
        };
        // Analytic-derivative Newton: with `I_in = P_out/(η(v)·v)`,
        // `f(v) = S − G·v − I_in` and `f′(v) = −G + I_in·(η′·v + η)/(η·v)`.
        for _ in 0..40 {
            let (eta, d_eta) = eta_curve.at_with_slope(Volts::new(v));
            let denom = eta * v;
            let demand = p_out / denom;
            let f = s - g * v - demand;
            let d_demand = -demand * (d_eta * v + eta) / denom;
            let df = -g - d_demand;
            if df.abs() < 1e-12 {
                break;
            }
            let step = f / df;
            let next = v - step;
            if !(floor.get()..=v_oc.get()).contains(&next) {
                break; // left the physical bracket; fall back to bisection
            }
            if (next - v).abs() < 1e-9 {
                // First-order demand update to the converged point — the
                // shift is < 1 nV, far below any downstream resolution.
                let i_in = Amps::new(demand + d_demand * (next - v));
                return self.solution_at(Volts::new(next), i_in, false);
            }
            v = next;
        }

        // Newton left the bracket or stalled: bracketed bisection fallback.
        match self.bisect_root(booster, i_load, i_charge, floor, v_oc) {
            Some(v) => {
                let v = Volts::new(v);
                let i_in = booster.input_current(v, i_load).unwrap_or(Amps::ZERO);
                self.solution_at(v, i_in, false)
            }
            None => {
                // No operating point: the node falls to wherever the branch
                // network alone would put it with the booster cut out.
                self.solution_at(floor, Amps::ZERO, true)
            }
        }
    }

    /// Finds the largest root of the imbalance in `[floor, hi]` by scanning
    /// down for a sign change then bisecting.
    fn bisect_root(
        &self,
        booster: &OutputBooster,
        i_load: Amps,
        i_charge: Amps,
        floor: Volts,
        hi: Volts,
    ) -> Option<f64> {
        // f(hi) < 0 (demand exceeds zero supply at open circuit). Scan down
        // until f > 0.
        let span = hi.get() - floor.get();
        let steps = 256;
        let mut upper = hi.get();
        let mut lower = None;
        for k in 1..=steps {
            let v = hi.get() - span * (k as f64) / (steps as f64);
            if self.imbalance(Volts::new(v), booster, i_load, i_charge) > 0.0 {
                lower = Some(v);
                break;
            }
            upper = v;
        }
        let mut lo = lower?;
        let mut hi = upper;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.imbalance(Volts::new(mid), booster, i_load, i_charge) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }

    fn solution_at(&self, v_node: Volts, i_in: Amps, collapsed: bool) -> NodeSolution {
        let branch_currents = self
            .branches
            .iter()
            .zip(&self.connected)
            .map(|(b, &c)| {
                if c {
                    b.current_into_node(v_node)
                } else {
                    Amps::ZERO
                }
            })
            .collect();
        NodeSolution {
            v_node,
            i_in,
            branch_currents,
            collapsed,
        }
    }

    /// Advances every branch by one step given the solved node state.
    ///
    /// # Panics
    ///
    /// Panics if the solution's branch count does not match.
    pub fn integrate(&mut self, solution: &NodeSolution, dt: culpeo_units::Seconds) {
        assert_eq!(
            solution.branch_currents.len(),
            self.branches.len(),
            "solution does not match network"
        );
        for (b, &i) in self.branches.iter_mut().zip(&solution.branch_currents) {
            b.integrate(i, dt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_units::{Ohms, Seconds};

    fn bank(v: f64) -> CapacitorBranch {
        CapacitorBranch::ideal(Farads::from_milli(45.0), Ohms::new(3.3), Volts::new(v))
    }

    fn booster() -> OutputBooster {
        OutputBooster::capybara()
    }

    #[test]
    fn open_circuit_equals_internal_for_single_branch() {
        let n = BufferNetwork::single(bank(2.4));
        assert!(n.open_circuit_voltage().approx_eq(Volts::new(2.4), 1e-12));
    }

    #[test]
    fn open_circuit_is_conductance_weighted() {
        let a = CapacitorBranch::ideal(Farads::from_milli(10.0), Ohms::new(1.0), Volts::new(2.0));
        let b = CapacitorBranch::ideal(Farads::from_milli(10.0), Ohms::new(3.0), Volts::new(2.6));
        let n = BufferNetwork::new(vec![a, b]);
        // (2.0/1 + 2.6/3)/(1/1 + 1/3) = (2.0 + 0.8667)/1.3333 = 2.15
        assert!(n.open_circuit_voltage().approx_eq(Volts::new(2.15), 1e-9));
    }

    #[test]
    fn load_drops_node_by_esr() {
        let n = BufferNetwork::single(bank(2.4));
        let sol = n.solve_node(&booster(), Amps::from_milli(25.0), Amps::ZERO);
        assert!(!sol.collapsed);
        // The drop must equal I_in · R.
        let expected = Volts::new(2.4 - sol.i_in.get() * 3.3);
        assert!(sol.v_node.approx_eq(expected, 1e-6), "v = {}", sol.v_node);
        assert!(sol.v_node < Volts::new(2.4));
        // Balance: branch current equals booster input current.
        assert!(sol.branch_currents[0].approx_eq(sol.i_in, 1e-9));
    }

    #[test]
    fn heavier_load_drops_more() {
        let n = BufferNetwork::single(bank(2.4));
        let light = n.solve_node(&booster(), Amps::from_milli(5.0), Amps::ZERO);
        let heavy = n.solve_node(&booster(), Amps::from_milli(50.0), Amps::ZERO);
        assert!(heavy.v_node < light.v_node);
    }

    #[test]
    fn charge_current_raises_node() {
        let n = BufferNetwork::single(bank(2.0));
        let idle = n.solve_node(&booster(), Amps::ZERO, Amps::ZERO);
        let charging = n.solve_node(&booster(), Amps::ZERO, Amps::from_milli(10.0));
        assert!(charging.v_node > idle.v_node);
    }

    #[test]
    fn decoupling_capacitor_shrinks_the_instantaneous_drop() {
        let solo = BufferNetwork::single(bank(2.4));
        let mut decoupled = BufferNetwork::single(bank(2.4));
        decoupled.add_branch(CapacitorBranch::ideal(
            Farads::from_micro(400.0),
            Ohms::new(0.05),
            Volts::new(2.4),
        ));
        let i = Amps::from_milli(50.0);
        let d1 = solo.solve_node(&booster(), i, Amps::ZERO);
        let d2 = decoupled.solve_node(&booster(), i, Amps::ZERO);
        assert!(d2.v_node > d1.v_node);
    }

    #[test]
    fn impossible_load_collapses() {
        // A tiny, high-ESR cap asked for an enormous load.
        let n = BufferNetwork::single(CapacitorBranch::ideal(
            Farads::from_micro(100.0),
            Ohms::new(50.0),
            Volts::new(2.0),
        ));
        let sol = n.solve_node(&booster(), Amps::new(1.0), Amps::ZERO);
        assert!(sol.collapsed);
        assert_eq!(sol.i_in, Amps::ZERO);
    }

    #[test]
    fn integrate_discharges_toward_load() {
        let mut n = BufferNetwork::single(bank(2.4));
        let sol = n.solve_node(&booster(), Amps::from_milli(25.0), Amps::ZERO);
        let v0 = n.branches()[0].v_internal();
        n.integrate(&sol, Seconds::from_milli(1.0));
        assert!(n.branches()[0].v_internal() < v0);
    }

    #[test]
    fn charge_redistribution_between_branches() {
        // Two branches at different internal voltages, no load: current
        // flows from the higher to the lower through both ESRs.
        let a = CapacitorBranch::ideal(Farads::from_milli(20.0), Ohms::new(2.0), Volts::new(2.5));
        let b = CapacitorBranch::ideal(Farads::from_milli(20.0), Ohms::new(2.0), Volts::new(2.0));
        let mut n = BufferNetwork::new(vec![a, b]);
        for _ in 0..20_000 {
            let sol = n.solve_node(&booster(), Amps::ZERO, Amps::ZERO);
            n.integrate(&sol, Seconds::from_milli(1.0));
        }
        let va = n.branches()[0].v_internal();
        let vb = n.branches()[1].v_internal();
        assert!(va.approx_eq(vb, 1e-3), "va = {va}, vb = {vb}");
        // Energy is conserved up to ESR dissipation: final common voltage
        // is the charge-weighted mean, 2.25 V.
        assert!(va.approx_eq(Volts::new(2.25), 1e-3));
    }

    #[test]
    fn stored_energy_sums_branches() {
        let n = BufferNetwork::new(vec![bank(2.0), bank(2.0)]);
        let e = n.stored_energy();
        assert!(e.approx_eq(Joules::new(2.0 * 0.5 * 0.045 * 4.0), 1e-12));
        assert!(n
            .total_capacitance()
            .approx_eq(Farads::from_milli(90.0), 1e-12));
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn rejects_empty_network() {
        let _ = BufferNetwork::new(vec![]);
    }

    #[test]
    fn disconnected_branch_floats() {
        let mut n = BufferNetwork::new(vec![bank(2.4), bank(2.4)]);
        n.set_branch_connected(1, false);
        assert!(!n.branch_connected(1));
        assert!(n
            .connected_capacitance()
            .approx_eq(Farads::from_milli(45.0), 1e-12));
        // The node only sees the connected branch.
        let sol = n.solve_node(&booster(), Amps::from_milli(25.0), Amps::ZERO);
        assert_eq!(sol.branch_currents[1], Amps::ZERO);
        // Integrating leaves the floating branch's charge untouched.
        let v1_before = n.branches()[1].v_internal();
        n.integrate(&sol, Seconds::from_milli(10.0));
        assert_eq!(n.branches()[1].v_internal(), v1_before);
        assert!(n.branches()[0].v_internal() < Volts::new(2.4));
    }

    #[test]
    fn reconnecting_triggers_redistribution() {
        let mut n = BufferNetwork::new(vec![bank(2.4), bank(2.4)]);
        n.set_branch_connected(1, false);
        // Drain the connected branch.
        for _ in 0..1000 {
            let sol = n.solve_node(&booster(), Amps::from_milli(50.0), Amps::ZERO);
            n.integrate(&sol, Seconds::from_milli(1.0));
        }
        let drained = n.branches()[0].v_internal();
        assert!(drained < Volts::new(2.3));
        // Reconnect: the fresh branch recharges the drained one.
        n.set_branch_connected(1, true);
        for _ in 0..60_000 {
            let sol = n.solve_node(&booster(), Amps::ZERO, Amps::ZERO);
            n.integrate(&sol, Seconds::from_milli(1.0));
        }
        let va = n.branches()[0].v_internal();
        let vb = n.branches()[1].v_internal();
        assert!(va.approx_eq(vb, 2e-3), "va = {va}, vb = {vb}");
        assert!(va > drained);
    }

    #[test]
    #[should_panic(expected = "at least one branch must remain connected")]
    fn cannot_disconnect_everything() {
        let mut n = BufferNetwork::single(bank(2.4));
        n.set_branch_connected(0, false);
    }

    #[test]
    fn smaller_active_configuration_sags_deeper() {
        // Fewer connected branches ⇒ higher effective ESR and less C:
        // the drop under the same load grows — why V_safe must be
        // re-derived per configuration (§V-B).
        let full = BufferNetwork::new(vec![bank(2.4), bank(2.4)]);
        let mut half = BufferNetwork::new(vec![bank(2.4), bank(2.4)]);
        half.set_branch_connected(1, false);
        let i = Amps::from_milli(25.0);
        let v_full = full.solve_node(&booster(), i, Amps::ZERO).v_node;
        let v_half = half.solve_node(&booster(), i, Amps::ZERO).v_node;
        assert!(v_half < v_full);
    }
}

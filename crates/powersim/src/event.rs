//! The event-driven analytic kernel behind [`Kernel::Event`].
//!
//! Between events — load edges from the profile's piece plan, harvester
//! window flips, `V_high`/`V_off`/collapse threshold crossings — the plant
//! is a constant-load RC network feeding a booster whose demand curve is
//! smooth, so the per-step Newton solve of the fixed-step loop is
//! redundant: the solved node voltage is an analytic function `v(S)` of the
//! supply intercept `S = Σ Vᵢ/Rᵢ + I_charge`, and `S` moves by microvolts
//! per step. The kernel re-solves the node *once per chunk* (the anchor),
//! expands `v(S)` to second order around it, and then advances whole spans
//! of the dt grid with a ~30-flop inner loop: fold `S`, evaluate the
//! Taylor, update the branch states, accumulate the ledger sums. The Taylor
//! is re-anchored every `DELTA_V` of node movement, which keeps its
//! truncation error near 1e-12 V — two to three orders below the 1e-9 V
//! equivalence budget against [`Kernel::FixedStep`].
//!
//! Crossings are never trusted to the analytic model: every chunk carries a
//! guard band ([`GUARD_BAND_V`]) around each live threshold (`V_off` while
//! the monitor is enabled, `V_high` while charging or recharging, the
//! booster's minimum input while delivering), checked against the computed
//! voltage *before* a step commits. Inside a band the kernel falls back to
//! literal [`PowerSystem::step`] blocks, so monitor transitions, brownout
//! verdicts, and rail collapse happen on exactly the grid step the
//! fixed-step loop would pick.
//!
//! [`Kernel::Event`]: crate::engine::Kernel
//! [`Kernel::FixedStep`]: crate::engine::Kernel

use culpeo_loadgen::{LoadProfile, Segment};
use culpeo_units::{Amps, Joules, Seconds, Volts};

use crate::{
    engine::RunConfig, Harvester, MonitorState, PowerSystem, RunOutcome, StepOutput, VoltageSample,
    VoltageTrace,
};

/// Guard band around each live threshold: within this distance of
/// `V_off`, `V_high`, or the booster's minimum input, the kernel real-steps
/// so crossings land on exactly the fixed-step grid step.
const GUARD_BAND_V: f64 = 1e-3;

/// Maximum node movement per Taylor anchor. The second-order expansion's
/// truncation error grows with the cube of this, so 2 mV keeps worst-case
/// per-step error near 1e-10 V (an order under the 1e-9 V equivalence
/// budget) while amortising one Newton solve over ~100 steps.
const DELTA_V: f64 = 2e-3;

/// Number of literal [`PowerSystem::step`] calls per guard-band block.
pub(crate) const REAL_BLOCK: usize = 32;

/// The chunk model is rejected when `G + dD/dv` falls below this fraction
/// of `G`: the operating point is approaching the fold where the Newton
/// root vanishes (rail collapse), so the reference solver must decide.
const FOLD_GUARD: f64 = 0.05;

/// Largest branch count the kernel's fixed-size state arrays cover; wider
/// plants silently run the fixed-step loop.
pub(crate) const MAX_BRANCHES: usize = 4;

/// What ends a [`EventStepper::run_const`] span early.
///
/// The fixed-step [`PowerSystem::run_profile`] loop breaks on monitor
/// recharging or undelivered load; device models (CatNap's profiler, the
/// ISR sampler) break on load faults only; rebound/settle loops never
/// break. Each caller picks the policy matching the loop it replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakOn {
    /// Run the full span regardless of monitor state (settle/rebound loops).
    Never,
    /// Break when a positive requested load goes undelivered (the device
    /// died mid-task): `i > 0 && !out.delivering`.
    LoadFault,
    /// Break on a load fault *or* the monitor entering
    /// [`MonitorState::Recharging`] — the `run_profile` loop's policy.
    MonitorRecharging,
}

/// How a [`EventStepper::run_const`] span ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpanEnd {
    /// Every requested step executed.
    Completed,
    /// The break policy fired.
    Broke {
        /// Steps executed including the breaking one.
        steps: usize,
        /// Output of the step that triggered the break.
        out: StepOutput,
    },
}

/// Running summary of a span: the strict-first-occurrence minimum the
/// fixed-step loop tracks, plus the collapse latch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Acc {
    pub(crate) v_min: f64,
    pub(crate) t_min: f64,
    pub(crate) seen: bool,
    pub(crate) collapsed: bool,
}

impl Acc {
    pub(crate) fn new() -> Self {
        Self {
            v_min: f64::MAX,
            t_min: 0.0,
            seen: false,
            collapsed: false,
        }
    }

    pub(crate) fn observe(&mut self, out: &StepOutput) {
        self.seen = true;
        if out.collapsed {
            self.collapsed = true;
        }
        let v = out.v_node.get();
        if v < self.v_min {
            self.v_min = v;
            self.t_min = out.t.get();
        }
    }
}

type Sink<'s> = Option<&'s mut dyn FnMut(StepOutput)>;

/// The charge source seen by one chunk: either a constant current for the
/// whole span (Off, constant-current, one phase of a windowed source) or
/// constant-power charging, whose current is an explicit function of the
/// previous step's node voltage (`i = p / v_prev`, clamps guarded away).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Charge {
    Const(f64),
    Power(f64),
}

/// The post-step break check shared by every span/plan loop — evaluated
/// *after* a step executes, exactly like the fixed-step loops it replaces.
pub(crate) fn breaks(brk: BreakOn, i: Amps, out: &StepOutput) -> bool {
    let fault = i.get() > 0.0 && !out.delivering;
    match brk {
        BreakOn::Never => false,
        BreakOn::LoadFault => fault,
        BreakOn::MonitorRecharging => fault || out.monitor == MonitorState::Recharging,
    }
}

#[cfg(test)]
pub(crate) static CHUNK_STEPS: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(0);
#[cfg(test)]
pub(crate) static REAL_STEPS: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(0);
#[cfg(test)]
pub(crate) static CHUNKS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// The event kernel's stepping facade over a [`PowerSystem`].
///
/// Drives the same plant state as [`PowerSystem::step`] — afterwards the
/// system's buffer voltages, monitor state, clock, and ledger are where a
/// fixed-step caller would have left them (to ~1e-12 V) — but advances
/// quiet spans with the anchored-Taylor chunk loop instead of one Newton
/// solve per step. Device models port their hand-rolled `step()` loops to
/// [`EventStepper::run_const`]; `run_profile` goes through the internal
/// piece planner.
pub struct EventStepper<'a> {
    sys: &'a mut PowerSystem,
    dt: f64,
    n: usize,
    /// Per-branch 1/R, dt/C, leakage (A), and ESR (Ω).
    rinv: [f64; MAX_BRANCHES],
    dtc: [f64; MAX_BRANCHES],
    leak: [f64; MAX_BRANCHES],
    esr: [f64; MAX_BRANCHES],
    g: f64,
    v_high: f64,
    v_off: f64,
    min_input: f64,
    capable: bool,
}

impl<'a> EventStepper<'a> {
    /// Wraps a system for event-driven stepping at step size `dt`.
    ///
    /// Always succeeds; on plants the chunk model does not cover
    /// (constant-power harvesters, disconnected or >4 branches) the
    /// stepper still works but [`EventStepper::capable`] is false and
    /// every span real-steps.
    #[must_use]
    pub fn new(sys: &'a mut PowerSystem, dt: Seconds) -> Self {
        let dt = dt.get();
        let n = sys.buffer().branches().len();
        let mut rinv = [0.0; MAX_BRANCHES];
        let mut dtc = [0.0; MAX_BRANCHES];
        let mut leak = [0.0; MAX_BRANCHES];
        let mut esr = [0.0; MAX_BRANCHES];
        let mut g = 0.0;
        let mut capable = n <= MAX_BRANCHES && dt > 0.0;
        if capable {
            for (b, branch) in sys.buffer().branches().iter().enumerate() {
                if !sys.buffer().branch_connected(b) {
                    // Floating branches follow different (leak-only)
                    // dynamics; leave them to the reference loop.
                    capable = false;
                    break;
                }
                let r = branch.esr().get();
                rinv[b] = 1.0 / r;
                dtc[b] = dt / branch.capacitance().get();
                leak[b] = branch.leakage().get();
                esr[b] = r;
                g += 1.0 / r;
            }
        }
        capable = capable
            && match sys.harvester() {
                // Constant-power charging is handled by the chunk loop's
                // explicit i = p/v_prev recurrence (clamps guarded away);
                // windowed sources flipping nearly every step would chunk
                // badly, so they stay on the reference loop.
                Harvester::Off | Harvester::ConstantCurrent(_) | Harvester::ConstantPower(_) => {
                    true
                }
                Harvester::Windowed { period, .. } => period.get() >= 4.0 * dt,
            };
        let v_high = sys.monitor().v_high().get();
        let v_off = sys.monitor().v_off().get();
        let min_input = sys.booster().min_input().get();
        Self {
            sys,
            dt,
            n,
            rinv,
            dtc,
            leak,
            esr,
            g,
            v_high,
            v_off,
            min_input,
            capable,
        }
    }

    /// True when the plant admits chunked advancement; false means every
    /// span degrades to literal [`PowerSystem::step`] calls.
    #[must_use]
    pub fn capable(&self) -> bool {
        self.capable
    }

    /// The node voltage solved at the most recent step, as
    /// [`PowerSystem::step`]'s return would have reported it.
    #[must_use]
    pub fn last_step_v(&self) -> Volts {
        self.sys.last_v()
    }

    /// The unloaded node voltage right now (what an idle ADC would read).
    #[must_use]
    pub fn v_node(&self) -> Volts {
        self.sys.v_node()
    }

    /// Runs `steps` steps of a constant requested load, breaking per the
    /// policy, optionally observing every step through `sink`.
    ///
    /// Semantically equivalent (to ~1e-12 V) to calling
    /// [`PowerSystem::step`] `steps` times with the same break checks after
    /// each call.
    pub fn run_const(
        &mut self,
        i_load: Amps,
        steps: usize,
        brk: BreakOn,
        mut sink: Sink<'_>,
    ) -> SpanEnd {
        let mut acc = Acc::new();
        match self.run_span(i_load, steps, brk, &mut acc, &mut sink) {
            None => SpanEnd::Completed,
            Some((steps, out)) => SpanEnd::Broke { steps, out },
        }
    }

    /// Runs the first `steps` grid steps of `profile` with `offset` added
    /// to every step's requested current (a profiler's own draw, charged
    /// to the task), breaking per the policy, optionally observing every
    /// step through `sink`.
    ///
    /// Reproduces the fixed-step idiom
    /// `sys.step(profile.current_at(k·dt) + offset, dt)` step for step,
    /// including the profile's boundary semantics at and past its end.
    pub fn run_profile_steps(
        &mut self,
        profile: &LoadProfile,
        steps: usize,
        offset: Amps,
        brk: BreakOn,
        mut sink: Sink<'_>,
    ) -> SpanEnd {
        let mut acc = Acc::new();
        match self.run_plan(profile, steps, offset, brk, &mut acc, &mut sink) {
            None => SpanEnd::Completed,
            Some((steps, out)) => SpanEnd::Broke { steps, out },
        }
    }

    /// Plan-driven profile execution: split the grid into constant-current
    /// runs, chunk each, real-step the per-step pieces (ramps, terminal
    /// boundary). Returns `Some((steps_executed, breaking_output))` if the
    /// policy fired.
    fn run_plan(
        &mut self,
        profile: &LoadProfile,
        steps: usize,
        offset: Amps,
        brk: BreakOn,
        acc: &mut Acc,
        sink: &mut Sink<'_>,
    ) -> Option<(usize, StepOutput)> {
        let plan = plan_pieces(profile, self.dt, steps);
        let mut cursor = profile.cursor();
        let mut k_base = 0usize;
        for piece in &plan {
            match *piece {
                Piece::Const { i, steps } => {
                    let i = Amps::new(i.get() + offset.get());
                    if let Some((done, out)) = self.run_span(i, steps, brk, acc, sink) {
                        return Some((k_base + done, out));
                    }
                    k_base += steps;
                }
                Piece::Each { k0, steps } => {
                    for k in k0..k0 + steps {
                        let i_task = cursor.current_at(Seconds::new(k as f64 * self.dt));
                        let i = Amps::new(i_task.get() + offset.get());
                        let out = self.sys.step(i, Seconds::new(self.dt));
                        acc.observe(&out);
                        if let Some(f) = sink.as_mut() {
                            f(out);
                        }
                        k_base += 1;
                        if breaks(brk, i, &out) {
                            return Some((k_base, out));
                        }
                    }
                }
            }
        }
        None
    }

    /// Decides how the next stretch of a constant-condition span advances:
    /// `Some((charge, max_steps))` when the chunk model may try (states the
    /// policy could break on within a step, imminent `V_high` crossings,
    /// and incapable plants all force `None` → real-step).
    pub(crate) fn span_action(
        &self,
        i_load: Amps,
        remaining: usize,
        brk: BreakOn,
    ) -> Option<(Charge, usize)> {
        if !self.capable {
            return None;
        }
        let loaded = i_load.get() > 0.0;
        let enabled = self.sys.monitor().output_enabled();
        let policy_live = match brk {
            BreakOn::Never => false,
            BreakOn::LoadFault => loaded && !enabled,
            BreakOn::MonitorRecharging => {
                (loaded && !enabled) || self.sys.monitor().state() == MonitorState::Recharging
            }
        };
        if policy_live {
            return None;
        }
        let (charge, phase_steps) = self.harvest_phase(remaining);
        let near_high = self.sys.last_v().get() >= self.v_high - GUARD_BAND_V;
        let (charging, nonneg) = match charge {
            Charge::Const(ic) => (ic != 0.0, ic >= 0.0),
            Charge::Power(p) => (p != 0.0, p >= 0.0),
        };
        let needs_high_rail = charging || !enabled;
        if nonneg && !(needs_high_rail && near_high) {
            Some((charge, phase_steps))
        } else {
            None
        }
    }

    /// The span engine: chunk where quiet, real-step near events. Returns
    /// `Some((steps_executed, breaking_output))` if the policy fired.
    fn run_span(
        &mut self,
        i_load: Amps,
        steps: usize,
        brk: BreakOn,
        acc: &mut Acc,
        sink: &mut Sink<'_>,
    ) -> Option<(usize, StepOutput)> {
        let mut k = 0;
        while k < steps {
            let remaining = steps - k;
            let mut done = 0;
            if let Some((charge, phase_steps)) = self.span_action(i_load, remaining, brk) {
                done = self.run_chunk(i_load, charge, phase_steps, acc, sink);
            }
            if done == 0 {
                // Guard-band (or incapable-plant) block: literal steps with
                // the exact fixed-step break semantics.
                let block = remaining.min(REAL_BLOCK);
                for _ in 0..block {
                    #[cfg(test)]
                    REAL_STEPS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let out = self.sys.step(i_load, Seconds::new(self.dt));
                    acc.observe(&out);
                    if let Some(f) = sink.as_mut() {
                        f(out);
                    }
                    k += 1;
                    if breaks(brk, i_load, &out) {
                        return Some((k, out));
                    }
                }
            } else {
                k += done;
            }
        }
        None
    }

    /// The charge mode for the system's *current* window phase and how
    /// many steps that phase still covers (both bounded by `remaining`).
    fn harvest_phase(&self, remaining: usize) -> (Charge, usize) {
        match self.sys.harvester() {
            Harvester::Off => (Charge::Const(0.0), remaining),
            Harvester::ConstantCurrent(i) => (Charge::Const(i.get()), remaining),
            Harvester::ConstantPower(p) => (Charge::Power(p.get()), remaining),
            Harvester::Windowed {
                i,
                period,
                duty,
                phase,
            } => {
                let p = period.get();
                if p <= 0.0 {
                    return (Charge::Const(0.0), remaining);
                }
                let d = duty.clamp(0.0, 1.0);
                let t = self.sys.time().get();
                let gate = |x: f64| ((x + phase.get()) / p).rem_euclid(1.0) < d;
                let cycle = ((t + phase.get()) / p).rem_euclid(1.0);
                let on = cycle < d;
                let t_flip = if on {
                    (d - cycle) * p
                } else {
                    (1.0 - cycle) * p
                };
                let mut l = (t_flip / self.dt).ceil().max(1.0) as usize;
                l = l.min(remaining).max(1);
                // Float slop near the flip: shrink until the last covered
                // step is verifiably still in this phase.
                while l > 1 && gate(t + (l - 1) as f64 * self.dt) != on {
                    l -= 1;
                }
                (Charge::Const(if on { i.get() } else { 0.0 }), l)
            }
        }
    }

    /// One anchored-Taylor chunk: advance up to `max_steps` grid steps of
    /// constant load `i_load` + the given charge mode, committing state,
    /// clock, and ledger for exactly the steps that stayed inside every
    /// guard bound. Returns the number of committed steps (0 ⇒ caller must
    /// real-step).
    fn run_chunk(
        &mut self,
        i_load: Amps,
        charge: Charge,
        max_steps: usize,
        acc: &mut Acc,
        sink: &mut Sink<'_>,
    ) -> usize {
        let Some(prep) = self.prepare_chunk(i_load, charge) else {
            return 0;
        };
        let mut y = prep.y;
        let sums = if let Some(f) = sink.as_mut() {
            let monitor = self.sys.monitor().state();
            let dt = self.dt;
            let delivering = prep.params.delivering;
            let p_out = prep.params.p_out;
            let v0 = prep.params.v0;
            let (t_base, eta0, eslope) = (prep.t_base, prep.eta0, prep.eslope);
            let mut observe = |k: usize, v: f64| {
                let i_in = if delivering {
                    p_out / ((eta0 + eslope * (v - v0)) * v)
                } else {
                    0.0
                };
                f(StepOutput {
                    t: Seconds::new(t_base + (k + 1) as f64 * dt),
                    v_node: Volts::new(v),
                    i_in: Amps::new(i_in),
                    delivering,
                    collapsed: false,
                    monitor,
                });
            };
            dispatch_chunk_loop(
                self.n,
                prep.is_cp,
                &prep.params,
                &mut y,
                max_steps,
                &mut observe,
            )
        } else {
            dispatch_chunk_loop(
                self.n,
                prep.is_cp,
                &prep.params,
                &mut y,
                max_steps,
                &mut |_, _| {},
            )
        };
        self.commit_chunk(&prep, &y, &sums, acc);
        sums.done
    }

    /// Anchors one chunk: resolves the charge mode, solves the node
    /// exactly, expands `v(S)` to second order, and assembles the guard
    /// bounds. `None` on any model-scope guard (rail collapse, an η kink
    /// inside the validity window, fold proximity, the constant-power clamp
    /// range) — the caller must real-step.
    #[allow(clippy::too_many_lines)]
    pub(crate) fn prepare_chunk(&self, i_load: Amps, charge: Charge) -> Option<ChunkPrep> {
        let n = self.n;
        let enabled = self.sys.monitor().output_enabled();
        let delivering = enabled && i_load.get() > 0.0;
        let booster = *self.sys.booster();

        // Resolve the charge mode. Constant-power charging is evaluated by
        // the reference at the *previous* step's solved voltage, so it is
        // an explicit recurrence the chunk loop can follow with one extra
        // division per step. Its clamps — `i = (p/max(v, 1e-3)).min(0.1)` —
        // are kept out of scope by a lower guard bound with margin, so the
        // in-chunk division is bitwise the reference's current.
        let last_v = self.sys.last_v().get();
        let (ic, p_pow, cp_lo) = match charge {
            Charge::Const(i) => (i, 0.0, f64::NEG_INFINITY),
            Charge::Power(p) => {
                let cp_lo = (10.0 * p * 1.0001).max(1.001e-3);
                if last_v <= cp_lo {
                    return None;
                }
                (p / last_v, p, cp_lo)
            }
        };
        let is_cp = matches!(charge, Charge::Power(_));

        let mut y = [0.0; MAX_BRANCHES];
        for (b, branch) in self.sys.buffer().branches().iter().enumerate() {
            y[b] = branch.v_internal().get();
        }
        let mut w0 = 0.0;
        for (&yb, &rb) in y.iter().zip(&self.rinv).take(n) {
            w0 += yb * rb;
        }

        // Anchor: exact node solve + local expansion v(S) ≈ v0 + β·dS + ½γ·dS².
        let (v0, beta, gamma, eta0, eslope, p_out) = if delivering {
            let sol = self
                .sys
                .buffer()
                .solve_node(&booster, i_load, Amps::new(ic));
            if sol.collapsed {
                return None;
            }
            let v0 = sol.v_node.get();
            let p_out = (booster.v_out() * i_load).get();
            let curve = booster.efficiency();
            let (eta0, s) = curve.at_with_slope(Volts::new(v0));
            // The expansion assumes η stays on one piece of its clamped
            // line across the whole validity window; a kink inside it
            // (floor/ceiling knee) sends the span to the reference loop.
            let (el, sl) = curve.at_with_slope(Volts::new(v0 - DELTA_V));
            let (eh, sh) = curve.at_with_slope(Volts::new(v0 + DELTA_V));
            if sl != s || sh != s || (s == 0.0 && (el != eta0 || eh != eta0)) {
                return None;
            }
            // Demand D(v) = P/(η·v); with u = η·v: D' = −D·u'/u,
            // D'' = 2D·(u'² − s·u)/u². Then β = 1/(G + D'), γ = −D''·β³.
            let u0 = eta0 * v0;
            let d0 = p_out / u0;
            let up = s * v0 + eta0;
            let dp = -d0 * up / u0;
            let ddp = 2.0 * d0 * (up * up - s * u0) / (u0 * u0);
            let denom = self.g + dp;
            if denom <= FOLD_GUARD * self.g {
                return None;
            }
            let beta = 1.0 / denom;
            (v0, beta, -ddp * beta * beta * beta, eta0, s, p_out)
        } else {
            // Unloaded node: exact linear solve, the expansion is exact.
            ((w0 + ic) / self.g, 1.0 / self.g, 0.0, 1.0, 0.0, 0.0)
        };

        // Guard bounds: every live threshold plus the Taylor's own
        // validity window, all checked on v before a step commits.
        let mut lo = cp_lo;
        let mut hi = f64::INFINITY;
        if enabled {
            lo = lo.max(self.v_off + GUARD_BAND_V);
        }
        if delivering {
            lo = lo.max(self.min_input + GUARD_BAND_V).max(v0 - DELTA_V);
            hi = hi.min(v0 + DELTA_V);
        }
        if ic != 0.0 || !enabled {
            hi = hi.min(self.v_high - GUARD_BAND_V);
        }

        let t_base = self.sys.time().get();
        let inv_eta0 = 1.0 / eta0;
        let xs = eslope * inv_eta0;
        Some(ChunkPrep {
            params: ChunkParams {
                v0,
                w0,
                beta,
                gamma,
                lo,
                hi,
                delivering,
                p_out,
                inv_eta0,
                xs,
                p_pow,
                ic0: ic,
                v_prev: last_v,
                rinv: self.rinv,
                dtc: self.dtc,
                leak: self.leak,
            },
            y,
            is_cp,
            ic,
            t_base,
            eta0,
            eslope,
        })
    }

    /// Commits a finished chunk loop: clock, last solved voltage, ledger
    /// sums, branch charges, and the span accumulator. A zero-step result
    /// commits nothing.
    pub(crate) fn commit_chunk(
        &mut self,
        prep: &ChunkPrep,
        y: &[f64; MAX_BRANCHES],
        sums: &ChunkSums,
        acc: &mut Acc,
    ) {
        let ChunkSums {
            esr_sq,
            leak_sum,
            hsum,
            bsum,
            v_last,
            v_min,
            k_min,
            done,
        } = *sums;
        if done == 0 {
            return;
        }
        #[cfg(test)]
        {
            CHUNK_STEPS.fetch_add(done, std::sync::atomic::Ordering::Relaxed);
            CHUNKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let dt = self.dt;
        acc.seen = true;
        if v_min < acc.v_min {
            acc.v_min = v_min;
            acc.t_min = prep.t_base + (k_min + 1) as f64 * dt;
        }
        self.sys.advance_clock(Seconds::new(done as f64 * dt));
        self.sys.set_last_v(Volts::new(v_last));
        {
            let led = self.sys.ledger_mut();
            if prep.params.delivering {
                led.delivered += Joules::new(prep.params.p_out * dt * done as f64);
                led.booster_loss += Joules::new(bsum * dt);
            }
            // The constant-power loop folds each step's own current into
            // `hsum`; the constant path defers the shared factor.
            led.harvested += Joules::new(if prep.is_cp {
                hsum * dt
            } else {
                hsum * prep.ic * dt
            });
            for b in 0..self.n {
                led.esr_loss += Joules::new(esr_sq[b] * self.esr[b] * dt);
                led.leakage_loss += Joules::new(leak_sum[b] * self.leak[b] * dt);
            }
        }
        for (b, branch) in self
            .sys
            .buffer_mut()
            .branches_mut()
            .iter_mut()
            .enumerate()
            .take(self.n)
        {
            branch.set_v_internal(Volts::new(y[b]));
        }
    }
}

/// An anchored chunk ready to run: the inner-loop parameters, a working
/// copy of the branch charges, and everything the commit phase needs.
#[derive(Clone, Copy)]
pub(crate) struct ChunkPrep {
    pub(crate) params: ChunkParams,
    pub(crate) y: [f64; MAX_BRANCHES],
    pub(crate) is_cp: bool,
    pub(crate) ic: f64,
    pub(crate) t_base: f64,
    pub(crate) eta0: f64,
    pub(crate) eslope: f64,
}

/// Loop-invariant parameters of one chunk's inner loop.
#[derive(Clone, Copy)]
pub(crate) struct ChunkParams {
    pub(crate) v0: f64,
    pub(crate) w0: f64,
    pub(crate) beta: f64,
    pub(crate) gamma: f64,
    pub(crate) lo: f64,
    pub(crate) hi: f64,
    pub(crate) delivering: bool,
    pub(crate) p_out: f64,
    pub(crate) inv_eta0: f64,
    pub(crate) xs: f64,
    /// Constant-power mode (`CP = true`): the power, the anchor's charge
    /// current `p/v_prev`, and the entry value of the previous-step
    /// voltage. Dead when the charge is constant.
    pub(crate) p_pow: f64,
    pub(crate) ic0: f64,
    pub(crate) v_prev: f64,
    pub(crate) rinv: [f64; MAX_BRANCHES],
    pub(crate) dtc: [f64; MAX_BRANCHES],
    pub(crate) leak: [f64; MAX_BRANCHES],
}

/// Per-chunk accumulators the commit phase folds into the ledger.
#[derive(Clone, Copy)]
pub(crate) struct ChunkSums {
    pub(crate) esr_sq: [f64; MAX_BRANCHES],
    pub(crate) leak_sum: [f64; MAX_BRANCHES],
    pub(crate) hsum: f64,
    pub(crate) bsum: f64,
    pub(crate) v_last: f64,
    pub(crate) v_min: f64,
    pub(crate) k_min: usize,
    pub(crate) done: usize,
}

impl ChunkSums {
    /// Zeroed accumulators (`v_min` starts at `f64::MAX`).
    pub(crate) fn new() -> Self {
        Self {
            esr_sq: [0.0; MAX_BRANCHES],
            leak_sum: [0.0; MAX_BRANCHES],
            hsum: 0.0,
            bsum: 0.0,
            v_last: 0.0,
            v_min: f64::MAX,
            k_min: 0,
            done: 0,
        }
    }
}

/// Monomorphises the inner loop on the branch count and charge mode so the
/// per-branch loops unroll, every array index is bounds-check-free, and the
/// constant-charge path carries no per-step division.
fn dispatch_chunk_loop<F: FnMut(usize, f64)>(
    n: usize,
    is_cp: bool,
    p: &ChunkParams,
    y: &mut [f64; MAX_BRANCHES],
    max_steps: usize,
    observe: &mut F,
) -> ChunkSums {
    match (n, is_cp) {
        (1, false) => chunk_loop::<1, false, F>(p, y, max_steps, observe),
        (2, false) => chunk_loop::<2, false, F>(p, y, max_steps, observe),
        (3, false) => chunk_loop::<3, false, F>(p, y, max_steps, observe),
        (_, false) => chunk_loop::<4, false, F>(p, y, max_steps, observe),
        (1, true) => chunk_loop::<1, true, F>(p, y, max_steps, observe),
        (2, true) => chunk_loop::<2, true, F>(p, y, max_steps, observe),
        (3, true) => chunk_loop::<3, true, F>(p, y, max_steps, observe),
        (_, true) => chunk_loop::<4, true, F>(p, y, max_steps, observe),
    }
}

/// The ~25-flop cheap step: fold the supply intercept, evaluate the
/// anchored Taylor, advance the branch charges, accumulate ledger sums.
/// Stops (without committing the offending step) at the first guard-bound
/// exit or branch-charge floor.
// Index loops over the first N slots of MAX_BRANCHES-sized arrays are
// deliberate: N is the const-generic branch count, and the flagged
// "copy" loop also folds the ledger sums.
#[allow(clippy::needless_range_loop, clippy::manual_memcpy)]
fn chunk_loop<const N: usize, const CP: bool, F: FnMut(usize, f64)>(
    p: &ChunkParams,
    y: &mut [f64; MAX_BRANCHES],
    max_steps: usize,
    observe: &mut F,
) -> ChunkSums {
    let mut s = ChunkSums::new();
    // Per-branch affine step y' = a·y + bv·v + c (algebraically the
    // reference integrator's y − (i + leak)·dt/C), plus its fold into the
    // intercept offset: ds' = Σ aw·y + bw·v + cwm. Expressing the
    // recurrence this way keeps the loop-carried critical path to three
    // fused multiply-adds (v → ds → v); branch updates and ledger sums
    // fall off the path. Rounding differs from the reference by ~1 ulp
    // per step (~1e-13 V over the longest chunk), far inside the budget.
    let mut a = [0.0; MAX_BRANCHES];
    let mut bv = [0.0; MAX_BRANCHES];
    let mut c = [0.0; MAX_BRANCHES];
    let mut aw = [0.0; MAX_BRANCHES];
    let mut bw = 0.0;
    let mut cwm = -p.w0;
    for b in 0..N {
        bv[b] = p.rinv[b] * p.dtc[b];
        a[b] = 1.0 - bv[b];
        c[b] = -(p.leak[b] * p.dtc[b]);
        aw[b] = p.rinv[b] * a[b];
        bw += p.rinv[b] * bv[b];
        cwm += p.rinv[b] * c[b];
    }
    let g2 = 0.5 * p.gamma;
    // The anchor's fold is reproduced bitwise, so ds starts at exactly 0.
    let mut ds = {
        let mut w = 0.0;
        for b in 0..N {
            w += y[b] * p.rinv[b];
        }
        w - p.w0
    };
    // Constant-power mode: the reference evaluates `i = p/v` at the
    // previous step's solved voltage, so the charge current is a second
    // loop-carried recurrence riding on v; `ds` keeps tracking only the
    // branch fold and the charge delta joins at evaluation time.
    let mut vprev = p.v_prev;
    let mut ic = p.ic0;
    while s.done < max_steps {
        let dst = if CP {
            ic = p.p_pow / vprev;
            ds + (ic - p.ic0)
        } else {
            ds
        };
        let v = p.v0 + dst * (p.beta + g2 * dst);
        if !(v > p.lo && v < p.hi) {
            break;
        }
        let mut ynew = [0.0; MAX_BRANCHES];
        let mut floored = false;
        let mut t_off = cwm;
        for b in 0..N {
            let next = a[b] * y[b] + (bv[b] * v + c[b]);
            // The reference integrator clamps a depleted branch at zero
            // charge; hand that step to it instead of committing.
            floored |= next < 0.0;
            ynew[b] = next;
            t_off += aw[b] * y[b];
        }
        if floored {
            break;
        }
        for b in 0..N {
            let ib = (y[b] - v) * p.rinv[b];
            s.esr_sq[b] += ib * ib;
            s.leak_sum[b] += y[b];
            y[b] = ynew[b];
        }
        ds = bw * v + t_off;
        if CP {
            s.hsum += v * ic;
            vprev = v;
        } else {
            s.hsum += v;
        }
        if p.delivering {
            // 1/η expanded to second order around the anchor — the
            // relative truncation is ~(s·δv/η)³ ≈ 1e-13.
            let x = p.xs * (v - p.v0);
            s.bsum += (p.p_out * (1.0 - x + x * x) * p.inv_eta0 - p.p_out).max(0.0);
        }
        if v < s.v_min {
            s.v_min = v;
            s.k_min = s.done;
        }
        observe(s.done, v);
        s.done += 1;
        s.v_last = v;
    }
    s
}

/// One run of equal-condition grid steps from the profile's piece plan.
#[derive(Clone, Copy)]
pub(crate) enum Piece {
    /// `steps` steps at one constant requested current.
    Const {
        /// The requested current of every step in the run.
        i: Amps,
        /// Run length in grid steps.
        steps: usize,
    },
    /// `steps` steps whose current must be evaluated per step (ramps, the
    /// trailing boundary of the grid).
    Each {
        /// First grid index of the run.
        k0: usize,
        /// Run length in grid steps.
        steps: usize,
    },
}

/// Splits the fixed-step grid `k ∈ [0, total)` into constant-current runs,
/// reproducing the fixed-step loop's exact per-step current choice
/// `profile.current_at(k·dt)` (boundary semantics included).
pub(crate) fn plan_pieces(profile: &LoadProfile, dt: f64, total: usize) -> Vec<Piece> {
    // Rebuild the cumulative segment end times with the builder's own fold
    // so boundary comparisons see bit-identical values.
    let segments = profile.segments();
    let mut ends = Vec::with_capacity(segments.len());
    let mut acc = 0.0;
    for s in segments {
        acc += s.duration().get();
        ends.push(acc);
    }

    // First grid step at or past time `e`: smallest k with k·dt ≥ e,
    // located with the exact grid expression rather than float division.
    let k_at = |e: f64| -> usize {
        let mut k = (e / dt).ceil().max(0.0) as usize;
        while k > 0 && (k - 1) as f64 * dt >= e {
            k -= 1;
        }
        while (k as f64) * dt < e {
            k += 1;
        }
        k
    };

    let mut pieces = Vec::new();
    let push_const = |pieces: &mut Vec<Piece>, i: Amps, steps: usize| {
        if steps == 0 {
            return;
        }
        if let Some(Piece::Const { i: pi, steps: ps }) = pieces.last_mut() {
            if *pi == i {
                *ps += steps;
                return;
            }
        }
        pieces.push(Piece::Const { i, steps });
    };

    let mut k = 0usize;
    for (j, seg) in segments.iter().enumerate() {
        if k >= total {
            break;
        }
        let k_end = k_at(ends[j]).min(total);
        if k_end <= k {
            continue;
        }
        let steps = k_end - k;
        match *seg {
            Segment::Constant { current, .. } => push_const(&mut pieces, current, steps),
            Segment::Burst { .. } => {
                // Run-length encode the burst's on/off lattice with the
                // profile's own evaluator, so edge steps land exactly
                // where the fixed-step cursor puts them.
                let mut run_i = profile.current_at(Seconds::new(k as f64 * dt));
                let mut run_len = 1usize;
                for kk in (k + 1)..k_end {
                    let i = profile.current_at(Seconds::new(kk as f64 * dt));
                    if i == run_i {
                        run_len += 1;
                    } else {
                        push_const(&mut pieces, run_i, run_len);
                        run_i = i;
                        run_len = 1;
                    }
                }
                push_const(&mut pieces, run_i, run_len);
            }
            Segment::Ramp { .. } => pieces.push(Piece::Each { k0: k, steps }),
        }
        k = k_end;
    }
    if k < total {
        // Steps at or past the last segment end: terminal-value/zero
        // boundary semantics, evaluated per step.
        pieces.push(Piece::Each {
            k0: k,
            steps: total - k,
        });
    }
    pieces
}

/// Event-kernel implementation of [`PowerSystem::run_profile`]. Returns
/// `None` when the configuration or plant is out of scope (full-trace
/// recording, constant-power harvesters, exotic buffers), in which case the
/// caller runs the fixed-step loop.
pub(crate) fn try_run_profile(
    sys: &mut PowerSystem,
    profile: &LoadProfile,
    cfg: RunConfig,
) -> Option<RunOutcome> {
    if !(cfg.summary_only || cfg.record_stride == usize::MAX) {
        // Decimated trace recording is the fixed-step loop's job.
        return None;
    }
    let ledger_before = sys.ledger();
    let v_start = sys.v_node();
    let t0 = sys.time();
    let total = profile.duration().steps(cfg.dt).max(1);

    let mut stepper = EventStepper::new(sys, cfg.dt);
    if !stepper.capable() {
        return None;
    }

    let mut acc = Acc::new();
    let mut sink: Sink<'_> = None;
    let brownout = stepper
        .run_plan(
            profile,
            total,
            Amps::ZERO,
            BreakOn::MonitorRecharging,
            &mut acc,
            &mut sink,
        )
        .map(|(_, out)| Seconds::new(out.t.get() - t0.get()));

    if !acc.seen {
        acc.v_min = v_start.get();
        acc.t_min = 0.0;
    }

    let v_final = if brownout.is_none() {
        sys.settle(cfg)
    } else {
        sys.v_node()
    };

    let trace = if cfg.summary_only {
        VoltageTrace::min_only()
    } else {
        // Full-trace mode only reaches here with stride = MAX, whose
        // observable state is "no samples retained, minimum tracked":
        // reproduce it with a single push of the minimum.
        let mut tr = VoltageTrace::new(usize::MAX);
        tr.push(VoltageSample {
            t: Seconds::new(acc.t_min),
            v_node: Volts::new(acc.v_min),
            i_in: Amps::ZERO,
        });
        tr
    };

    Some(RunOutcome {
        trace,
        v_start,
        v_min: Volts::new(acc.v_min),
        t_min: Seconds::new(acc.t_min),
        v_final,
        brownout,
        collapsed: acc.collapsed,
        ledger: sys.ledger().delta(&ledger_before),
    })
}

/// Event-kernel implementation of [`PowerSystem::settle`]: the same 10 ms
/// convergence windows, advanced by the chunk loop. `None` when the plant
/// is out of scope.
pub(crate) fn try_settle(sys: &mut PowerSystem, cfg: RunConfig) -> Option<Volts> {
    if cfg.settle_timeout.get() <= 0.0 {
        return Some(sys.v_node());
    }
    let window = Seconds::from_milli(10.0);
    let window_steps = window.steps(cfg.dt).max(1);
    let max_windows = (cfg.settle_timeout.get() / window.get()).ceil().max(1.0) as usize;
    let mut prev = sys.v_node();
    let mut stepper = EventStepper::new(sys, cfg.dt);
    if !stepper.capable() {
        return None;
    }
    for _ in 0..max_windows {
        let _ = stepper.run_const(Amps::ZERO, window_steps, BreakOn::Never, None);
        let last = stepper.last_step_v();
        if (last - prev).abs() < cfg.settle_tolerance {
            return Some(last);
        }
        prev = last;
    }
    Some(prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Kernel;
    use culpeo_units::Seconds;

    fn ma(v: f64) -> Amps {
        Amps::from_milli(v)
    }

    fn compare(sys: &PowerSystem, profile: &LoadProfile, cfg: RunConfig) {
        let mut fixed_sys = sys.clone();
        let mut event_sys = sys.clone();
        let fixed = fixed_sys.run_profile(profile, cfg.with_kernel(Kernel::FixedStep));
        let event = event_sys.run_profile(profile, cfg.with_kernel(Kernel::Event));
        assert_eq!(
            fixed.brownout.is_some(),
            event.brownout.is_some(),
            "verdict mismatch: fixed {:?} event {:?}",
            fixed.brownout,
            event.brownout
        );
        assert_eq!(fixed.collapsed, event.collapsed);
        assert!(
            (fixed.v_min - event.v_min).abs().get() < 1e-9,
            "v_min: fixed {} event {}",
            fixed.v_min,
            event.v_min
        );
        assert!(
            (fixed.v_final - event.v_final).abs().get() < 1e-9,
            "v_final: fixed {} event {}",
            fixed.v_final,
            event.v_final
        );
        assert!(
            (fixed_sys.v_node() - event_sys.v_node()).abs().get() < 1e-9,
            "plant state diverged"
        );
    }

    fn probe_cfg() -> RunConfig {
        RunConfig {
            dt: Seconds::from_micro(10.0),
            record_stride: usize::MAX,
            summary_only: true,
            ..RunConfig::default()
        }
    }

    #[test]
    fn matches_fixed_step_on_completing_pulse() {
        let mut sys = PowerSystem::capybara_two_branch();
        sys.set_buffer_voltage(Volts::new(2.3));
        let profile = LoadProfile::constant("pulse", ma(25.0), Seconds::from_milli(10.0));
        compare(&sys, &profile, probe_cfg());
    }

    #[test]
    fn matches_fixed_step_on_brownout() {
        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(Volts::new(1.75));
        let profile = LoadProfile::constant("lora", ma(50.0), Seconds::from_milli(100.0));
        compare(&sys, &profile, probe_cfg());
    }

    #[test]
    fn matches_fixed_step_on_multi_segment_profile() {
        let mut sys = PowerSystem::capybara_two_branch();
        sys.set_buffer_voltage(Volts::new(2.4));
        let profile = LoadProfile::builder("mixed")
            .hold(ma(25.0), Seconds::from_milli(10.0))
            .ramp(ma(25.0), ma(2.0), Seconds::from_milli(5.0))
            .burst(
                ma(40.0),
                ma(1.0),
                Seconds::from_milli(4.0),
                0.25,
                Seconds::from_milli(30.0),
            )
            .hold(ma(1.5), Seconds::from_milli(50.0))
            .build();
        compare(&sys, &profile, probe_cfg());
    }

    #[test]
    fn matches_fixed_step_with_harvester_and_settle() {
        let mut sys = PowerSystem::builder()
            .two_branch_bank()
            .harvester(Harvester::ConstantCurrent(ma(5.0)))
            .initial_voltage(Volts::new(2.1))
            .build();
        sys.force_output_enabled();
        let profile = LoadProfile::constant("task", ma(20.0), Seconds::from_milli(40.0));
        let cfg = RunConfig {
            dt: Seconds::from_micro(10.0),
            record_stride: usize::MAX,
            summary_only: true,
            settle_timeout: Seconds::new(1.0),
            ..RunConfig::default()
        };
        compare(&sys, &profile, cfg);
    }

    #[test]
    fn matches_fixed_step_with_constant_power_harvester() {
        // weak_solar charges at P/V of the *previous* step's node voltage —
        // the chunk loop's second loop-carried recurrence.
        let mut sys = PowerSystem::builder()
            .two_branch_bank()
            .harvester(Harvester::weak_solar())
            .initial_voltage(Volts::new(2.1))
            .build();
        sys.force_output_enabled();
        let profile = LoadProfile::constant("task", ma(20.0), Seconds::from_milli(40.0));
        let cfg = RunConfig {
            dt: Seconds::from_micro(10.0),
            record_stride: usize::MAX,
            summary_only: true,
            settle_timeout: Seconds::new(1.0),
            ..RunConfig::default()
        };
        compare(&sys, &profile, cfg);
    }

    #[test]
    fn unsupported_plant_falls_back_to_fixed() {
        let mut sys = PowerSystem::builder()
            .harvester(Harvester::Windowed {
                i: ma(5.0),
                period: Seconds::from_micro(20.0),
                duty: 0.5,
                phase: Seconds::ZERO,
            })
            .build();
        sys.set_buffer_voltage(Volts::new(2.2));
        let profile = LoadProfile::constant("p", ma(10.0), Seconds::from_milli(5.0));
        let cfg = probe_cfg().with_kernel(Kernel::Event);
        // A windowed source flipping nearly every grid step is out of the
        // chunk model's scope: the event entry point must decline rather
        // than approximate.
        assert!(try_run_profile(&mut sys.clone(), &profile, cfg).is_none());
        // And the public API silently produces the fixed-step result.
        let a = sys.clone().run_profile(&profile, cfg);
        let b = sys.run_profile(&profile, cfg.with_kernel(Kernel::FixedStep));
        assert_eq!(a, b);
    }

    #[test]
    #[ignore = "timing smoke, run manually with --release"]
    fn perf_smoke() {
        let mut sys = PowerSystem::capybara_two_branch();
        sys.set_buffer_voltage(Volts::new(2.3));
        let profile = LoadProfile::constant("pulse", ma(25.0), Seconds::from_milli(100.0));
        let cfg = RunConfig {
            settle_timeout: Seconds::new(1.0),
            ..probe_cfg()
        };
        for kernel in [Kernel::FixedStep, Kernel::Event] {
            let t0 = std::time::Instant::now();
            let mut v = 0.0;
            for _ in 0..100 {
                let mut s = sys.clone();
                let out = s.run_profile(&profile, cfg.with_kernel(kernel));
                v = out.v_final.get();
            }
            println!("{kernel:?}: {:?} (v_final {v})", t0.elapsed() / 100);
        }
        let t0 = std::time::Instant::now();
        for _ in 0..100 {
            std::hint::black_box(sys.clone());
        }
        println!("clone: {:?}", t0.elapsed() / 100);
        let cfg0 = RunConfig {
            settle_timeout: Seconds::ZERO,
            ..probe_cfg()
        };
        for kernel in [Kernel::FixedStep, Kernel::Event] {
            let t0 = std::time::Instant::now();
            for _ in 0..100 {
                let mut s = sys.clone();
                std::hint::black_box(s.run_profile(&profile, cfg0.with_kernel(kernel)));
            }
            println!("{kernel:?} no-settle: {:?}", t0.elapsed() / 100);
        }
        use std::sync::atomic::Ordering::Relaxed;
        println!(
            "chunk_steps {} real_steps {} chunks {}",
            CHUNK_STEPS.load(Relaxed),
            REAL_STEPS.load(Relaxed),
            CHUNKS.load(Relaxed)
        );
    }

    #[test]
    fn run_const_matches_manual_step_loop() {
        let mut manual = PowerSystem::capybara_two_branch();
        manual.set_buffer_voltage(Volts::new(2.35));
        let mut event = manual.clone();
        let dt = Seconds::from_micro(10.0);
        let steps = 2000;
        let mut v_last = Volts::ZERO;
        for _ in 0..steps {
            v_last = manual.step(ma(30.0), dt).v_node;
        }
        let mut stepper = EventStepper::new(&mut event, dt);
        assert!(stepper.capable());
        let end = stepper.run_const(ma(30.0), steps, BreakOn::LoadFault, None);
        assert_eq!(end, SpanEnd::Completed);
        assert!(
            (stepper.last_step_v() - v_last).abs().get() < 1e-9,
            "manual {} event {}",
            v_last,
            stepper.last_step_v()
        );
        assert!((manual.v_node() - event.v_node()).abs().get() < 1e-9);
    }
}

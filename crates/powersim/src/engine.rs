//! The composed power system and its fixed-step simulation engine.

use culpeo_loadgen::LoadProfile;
use culpeo_units::{Amps, Farads, Joules, Ohms, Seconds, Volts};

use crate::{
    BufferNetwork, CapacitorBranch, EnergyLedger, Harvester, MonitorState, OutputBooster,
    VoltageMonitor, VoltageSample, VoltageTrace, DEFAULT_DT,
};

/// A complete energy-harvesting power system: buffer network, output
/// booster, harvester/input booster, and voltage monitor (Figure 2).
///
/// The system is stepped at fixed `dt`; each step solves the buffer node,
/// advances the capacitors, updates the monitor's hysteresis, and keeps the
/// energy ledger. Higher layers either drive [`PowerSystem::step`]
/// directly (the scheduler does) or hand a whole [`LoadProfile`] to
/// [`PowerSystem::run_profile`].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSystem {
    buffer: BufferNetwork,
    booster: OutputBooster,
    harvester: Harvester,
    monitor: VoltageMonitor,
    time: Seconds,
    last_v_node: Volts,
    ledger: EnergyLedger,
    hint: SolverHint,
}

/// The previous step's solved node root, carried purely as a Newton
/// warm-start for [`BufferNetwork::solve_node_hinted`]. While the load is
/// segment-constant the root drifts by microvolts per step, so starting
/// from it converges immediately; any external state change clears it.
///
/// Equality-transparent: two systems in the same electrical state compare
/// equal regardless of solver-history hints.
#[derive(Debug, Clone, Copy, Default)]
struct SolverHint {
    root: Option<f64>,
    load_bits: u64,
}

impl PartialEq for SolverHint {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// The observable result of one simulation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutput {
    /// Simulation time at the *end* of the step.
    pub t: Seconds,
    /// Buffer-node voltage during the step.
    pub v_node: Volts,
    /// Current drawn by the output booster.
    pub i_in: Amps,
    /// True if the requested load was actually powered this step.
    pub delivering: bool,
    /// True if the rail collapsed (no electrical operating point).
    pub collapsed: bool,
    /// Monitor state after observing this step's node voltage.
    pub monitor: MonitorState,
}

/// Which integration kernel [`PowerSystem::run_profile`] and
/// [`PowerSystem::settle`] use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// The reference loop: one Newton node-solve per `dt` step.
    #[default]
    FixedStep,
    /// The event-driven analytic kernel (`event` module): between load
    /// edges and threshold crossings the state advances in closed-form
    /// chunks on the same `dt` grid, falling back to literal
    /// [`PowerSystem::step`] blocks inside a guard band around each
    /// crossing and for plants the chunk model does not cover. Summaries
    /// agree with [`Kernel::FixedStep`] to ~1 nV; brownout/completion
    /// verdicts are grid-exact.
    Event,
}

/// Configuration for [`PowerSystem::run_profile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Integration step.
    pub dt: Seconds,
    /// Record every n-th sample into the returned trace (minimum voltage is
    /// always exact regardless).
    pub record_stride: usize,
    /// After the load ends, keep simulating (zero load) until the node
    /// voltage stops rebounding, up to this long. Zero skips the rebound
    /// wait entirely (`v_final` is then the node voltage at the instant
    /// the run ended).
    pub settle_timeout: Seconds,
    /// Rebound is considered settled when the node moves less than this
    /// over 10 ms.
    pub settle_tolerance: Volts,
    /// Skip voltage-trace recording entirely: the returned
    /// [`RunOutcome::trace`] is empty, while `v_start` / `v_min` / `t_min` /
    /// `v_final` / `brownout` are exactly what a recording run would report.
    /// The bisection searches and application trials only consume the
    /// summary, so they skip the per-step trace work.
    pub summary_only: bool,
    /// Which integration kernel to use. [`Kernel::Event`] produces the
    /// same verdicts and (to ~1 nV) the same summaries, much faster on
    /// supported plants; unsupported configurations silently run the
    /// fixed-step loop.
    pub kernel: Kernel,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            dt: DEFAULT_DT,
            record_stride: 8, // 125 kHz integration, ~15.6 kHz recording
            settle_timeout: Seconds::new(2.0),
            settle_tolerance: Volts::from_micro(100.0),
            summary_only: false,
            kernel: Kernel::FixedStep,
        }
    }
}

impl RunConfig {
    /// A coarse configuration for long application runs: 100 µs steps,
    /// minimum-only recording, event kernel.
    #[must_use]
    pub fn coarse() -> Self {
        Self {
            dt: Seconds::from_micro(100.0),
            record_stride: usize::MAX,
            kernel: Kernel::Event,
            ..Self::default()
        }
    }

    /// The probe-mode configuration every bisection/completion search
    /// uses: summary-only, no settle wait (the verdict is decided before
    /// settling starts), event kernel, and a step size matched to the
    /// load length — 10 µs for sub-second loads, 50 µs beyond that.
    ///
    /// Hoisted here so the ground-truth searches and the event/fixed-step
    /// comparison paths cannot drift on dt/settle defaults.
    #[must_use]
    pub fn probe(load_duration: Seconds) -> Self {
        let dt = if load_duration.get() > 1.0 {
            Seconds::from_micro(50.0)
        } else {
            Seconds::from_micro(10.0)
        };
        Self {
            dt,
            record_stride: usize::MAX,
            settle_timeout: Seconds::ZERO,
            summary_only: true,
            kernel: Kernel::Event,
            ..Self::default()
        }
    }

    /// The same configuration with [`RunConfig::summary_only`] set.
    #[must_use]
    pub fn without_trace(mut self) -> Self {
        self.summary_only = true;
        self
    }

    /// The same configuration with a different [`Kernel`].
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }
}

/// The result of running a load profile on the plant.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Recorded node-voltage trace (decimated per the run configuration;
    /// empty when the run was configured [`RunConfig::summary_only`]).
    pub trace: VoltageTrace,
    /// Node voltage just before the load was applied.
    pub v_start: Volts,
    /// Minimum node voltage observed during the load.
    pub v_min: Volts,
    /// When the minimum occurred.
    pub t_min: Seconds,
    /// Node voltage after the post-load rebound settled (or at the failure
    /// instant for a browned-out run).
    pub v_final: Volts,
    /// If the monitor cut power during the load, the time at which it did.
    pub brownout: Option<Seconds>,
    /// True if the rail electrically collapsed at some step.
    pub collapsed: bool,
    /// Energy movements over this run (including the settle phase).
    pub ledger: EnergyLedger,
}

impl RunOutcome {
    /// True if the load ran to completion without losing power.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.brownout.is_none() && !self.collapsed
    }

    /// The paper's `V_δ`: the recoverable, ESR-induced part of the dip —
    /// final (rebounded) voltage minus the minimum during execution
    /// (Figure 8a).
    #[must_use]
    pub fn v_delta(&self) -> Volts {
        Volts::new((self.v_final - self.v_min).get().max(0.0))
    }
}

impl PowerSystem {
    /// Starts building a custom system.
    #[must_use]
    pub fn builder() -> PowerSystemBuilder {
        PowerSystemBuilder::default()
    }

    /// The simulated Capybara configuration used throughout the paper's
    /// evaluation: a 45 mF supercapacitor bank (six CPX-class parts) with
    /// 3.3 Ω of effective ESR and 20 nA-class leakage, a TPS61200-like
    /// output booster at 2.55 V, a BU4924-like monitor (2.56 V / 1.6 V),
    /// and no incoming power.
    ///
    /// The buffer starts fully charged at `V_high` with the output enabled,
    /// as in the paper's test-harness setup.
    #[must_use]
    pub fn capybara() -> Self {
        Self::builder().build()
    }

    /// Capybara with a different bank: total capacitance `c` and effective
    /// ESR `esr` as a single branch.
    #[must_use]
    pub fn capybara_with_bank(c: Farads, esr: Ohms) -> Self {
        Self::builder().bank(c, esr).build()
    }

    /// Capybara with the two-time-constant supercapacitor ladder: a large,
    /// slow branch and a small, fast branch whose combination produces the
    /// frequency-dependent ESR real supercapacitors exhibit.
    #[must_use]
    pub fn capybara_two_branch() -> Self {
        Self::builder().two_branch_bank().build()
    }

    /// The output booster.
    #[must_use]
    pub fn booster(&self) -> &OutputBooster {
        &self.booster
    }

    /// The voltage monitor.
    #[must_use]
    pub fn monitor(&self) -> &VoltageMonitor {
        &self.monitor
    }

    /// The buffer network.
    #[must_use]
    pub fn buffer(&self) -> &BufferNetwork {
        &self.buffer
    }

    /// Mutable buffer access (aging experiments swap branches in place).
    pub fn buffer_mut(&mut self) -> &mut BufferNetwork {
        self.hint = SolverHint::default();
        &mut self.buffer
    }

    /// Replaces the harvester model.
    pub fn set_harvester(&mut self, harvester: Harvester) {
        self.hint = SolverHint::default();
        self.harvester = harvester;
    }

    /// The harvester model.
    #[must_use]
    pub fn harvester(&self) -> Harvester {
        self.harvester
    }

    /// Current simulation time.
    #[must_use]
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// The cumulative energy ledger.
    #[must_use]
    pub fn ledger(&self) -> EnergyLedger {
        self.ledger
    }

    /// The unloaded node voltage right now (what an idle ADC would read).
    #[must_use]
    pub fn v_node(&self) -> Volts {
        self.buffer.open_circuit_voltage()
    }

    /// Sets every buffer branch to `v` — the test harness's "discharge the
    /// capacitor to the starting level" operation.
    pub fn set_buffer_voltage(&mut self, v: Volts) {
        self.buffer.set_voltage(v);
        self.last_v_node = v;
        self.hint = SolverHint::default();
    }

    /// Forces the monitor's output-enabled state (test harness trigger).
    pub fn force_output_enabled(&mut self) {
        self.monitor.force_enable();
    }

    /// Advances the system by `dt` with the load requesting `i_load` at the
    /// regulated output.
    ///
    /// If the monitor has the output disabled, the load receives nothing
    /// (`delivering = false`) and only charging/leakage dynamics run.
    pub fn step(&mut self, i_load: Amps, dt: Seconds) -> StepOutput {
        let charging_enabled = self.last_v_node < self.monitor.v_high();
        let i_charge = if charging_enabled {
            self.harvester
                .charge_current_at(self.last_v_node, self.time)
        } else {
            Amps::ZERO
        };

        let delivering = self.monitor.output_enabled() && i_load.get() > 0.0;
        let effective_load = if delivering { i_load } else { Amps::ZERO };
        // Warm-start the node solve from the previous step's root while
        // the requested load is unchanged (segment-constant profiles).
        let hint = if self.hint.load_bits == effective_load.get().to_bits() {
            self.hint.root
        } else {
            None
        };
        let sol = self
            .buffer
            .solve_node_hinted(&self.booster, effective_load, i_charge, hint);
        self.hint = if delivering && !sol.collapsed {
            SolverHint {
                root: Some(sol.v_node.get()),
                load_bits: effective_load.get().to_bits(),
            }
        } else {
            SolverHint::default()
        };

        // Energy bookkeeping (before integrating, using this step's state).
        let dt_s = dt.get();
        if delivering && !sol.collapsed {
            let p_out = self.booster.v_out() * i_load;
            let p_in = sol.v_node * sol.i_in;
            self.ledger.delivered += p_out * dt;
            self.ledger.booster_loss += Joules::new((p_in.get() - p_out.get()).max(0.0) * dt_s);
        }
        for (b, &i) in self.buffer.branches().iter().zip(&sol.branch_currents) {
            self.ledger.esr_loss += Joules::new(i.get() * i.get() * b.esr().get() * dt_s);
            self.ledger.leakage_loss +=
                Joules::new(b.v_internal().get() * b.leakage().get() * dt_s);
        }
        self.ledger.harvested += Joules::new(sol.v_node.get() * i_charge.get() * dt_s);

        self.buffer.integrate(&sol, dt);
        let monitor = self.monitor.observe(sol.v_node);
        self.time += dt;
        self.last_v_node = sol.v_node;

        StepOutput {
            t: self.time,
            v_node: sol.v_node,
            i_in: sol.i_in,
            delivering: delivering && !sol.collapsed,
            collapsed: sol.collapsed,
            monitor,
        }
    }

    /// Runs a complete load profile, then lets the node rebound, returning
    /// the full outcome.
    ///
    /// The run aborts (with `brownout = Some(t)`) the moment the monitor
    /// cuts the output or the rail collapses — on the real device the task
    /// dies there.
    #[must_use]
    pub fn run_profile(&mut self, profile: &LoadProfile, cfg: RunConfig) -> RunOutcome {
        if cfg.kernel == Kernel::Event {
            if let Some(out) = crate::event::try_run_profile(self, profile, cfg) {
                return out;
            }
        }
        self.run_profile_fixed(profile, cfg)
    }

    /// The reference fixed-step loop behind [`PowerSystem::run_profile`].
    fn run_profile_fixed(&mut self, profile: &LoadProfile, cfg: RunConfig) -> RunOutcome {
        let ledger_before = self.ledger;
        let v_start = self.v_node();
        // A `None` trace (summary-only mode) skips all recording work; the
        // minimum is tracked in the loop below either way.
        let mut trace = if cfg.summary_only {
            None
        } else {
            Some(VoltageTrace::new(cfg.record_stride))
        };
        let t0 = self.time;
        let steps = profile.duration().steps(cfg.dt).max(1);
        // Forward-only cursor: query times are k·dt, strictly increasing,
        // so the per-step segment lookup is amortised O(1).
        let mut load = profile.cursor();

        let mut brownout = None;
        let mut collapsed = false;
        // Running minimum, tracked here rather than read back from the
        // trace: same strict-< / first-occurrence rule as
        // `VoltageTrace::minimum`, but independent of whether a trace
        // exists at all.
        let mut v_min = Volts::new(f64::MAX);
        let mut t_min = Seconds::ZERO;
        let mut seen_any = false;
        for k in 0..steps {
            let offset = Seconds::new(k as f64 * cfg.dt.get());
            let i = load.current_at(offset);
            let out = self.step(i, cfg.dt);
            if let Some(trace) = trace.as_mut() {
                trace.push(VoltageSample {
                    t: out.t,
                    v_node: out.v_node,
                    i_in: out.i_in,
                });
            }
            if out.v_node < v_min {
                v_min = out.v_node;
                t_min = out.t;
            }
            seen_any = true;
            if out.collapsed {
                collapsed = true;
            }
            if i.get() > 0.0 && !out.delivering {
                brownout = Some(Seconds::new(out.t.get() - t0.get()));
                break;
            }
            if out.monitor == MonitorState::Recharging {
                brownout = Some(Seconds::new(out.t.get() - t0.get()));
                break;
            }
        }
        if !seen_any {
            // Unreachable today (`steps ≥ 1`), but keep the degenerate case
            // well-defined rather than reporting the f64::MAX sentinel.
            v_min = v_start;
            t_min = Seconds::ZERO;
        }

        let v_final = if brownout.is_none() {
            self.settle(cfg)
        } else {
            self.v_node()
        };

        // Report only this run's movements.
        let ledger = self.ledger.delta(&ledger_before);

        RunOutcome {
            trace: trace.unwrap_or_else(VoltageTrace::min_only),
            v_start,
            v_min,
            t_min,
            v_final,
            brownout,
            collapsed,
            ledger,
        }
    }

    /// Runs the system unloaded until the node voltage stops moving (the
    /// post-task rebound of Figure 1b), returning the settled voltage.
    pub fn settle(&mut self, cfg: RunConfig) -> Volts {
        if cfg.settle_timeout.get() <= 0.0 {
            // A zero timeout disables the rebound wait entirely: report the
            // node as it stands. Completion-probe runs use this — their
            // verdict is decided before settling starts.
            return self.v_node();
        }
        if cfg.kernel == Kernel::Event {
            if let Some(v) = crate::event::try_settle(self, cfg) {
                return v;
            }
        }
        self.settle_fixed(cfg)
    }

    /// The reference fixed-step settle loop behind [`PowerSystem::settle`].
    fn settle_fixed(&mut self, cfg: RunConfig) -> Volts {
        if cfg.settle_timeout.get() <= 0.0 {
            return self.v_node();
        }
        let window = Seconds::from_milli(10.0);
        let window_steps = window.steps(cfg.dt).max(1);
        let max_windows = (cfg.settle_timeout.get() / window.get()).ceil().max(1.0) as usize;
        let mut prev = self.v_node();
        for _ in 0..max_windows {
            let mut last = prev;
            for _ in 0..window_steps {
                last = self.step(Amps::ZERO, cfg.dt).v_node;
            }
            if (last - prev).abs() < cfg.settle_tolerance {
                return last;
            }
            prev = last;
        }
        prev
    }

    /// The node voltage solved at the previous step (the value the
    /// charging gate and warm-start logic key on).
    pub(crate) fn last_v(&self) -> Volts {
        self.last_v_node
    }

    /// Chunk-advance bookkeeping for the event kernel: overwrites the
    /// last-step node voltage the next step's charging gate will see.
    pub(crate) fn set_last_v(&mut self, v: Volts) {
        self.last_v_node = v;
    }

    /// Chunk-advance bookkeeping for the event kernel: advances the clock
    /// by a whole chunk in one add.
    pub(crate) fn advance_clock(&mut self, elapsed: Seconds) {
        self.time += elapsed;
    }

    /// Ledger access for the event kernel's closed-form chunk sums.
    pub(crate) fn ledger_mut(&mut self) -> &mut EnergyLedger {
        &mut self.ledger
    }

    /// Runs unloaded (charging if a harvester is set) for a fixed duration.
    /// Returns the node voltage at the end.
    pub fn run_idle(&mut self, duration: Seconds, dt: Seconds) -> Volts {
        let steps = duration.steps(dt);
        let mut v = self.v_node();
        for _ in 0..steps {
            v = self.step(Amps::ZERO, dt).v_node;
        }
        v
    }
}

/// Builder for a [`PowerSystem`]; defaults reproduce the simulated Capybara.
#[derive(Debug, Clone)]
pub struct PowerSystemBuilder {
    branches: Vec<CapacitorBranch>,
    booster: OutputBooster,
    harvester: Harvester,
    monitor: VoltageMonitor,
    initial_voltage: Option<Volts>,
    output_enabled: bool,
}

impl Default for PowerSystemBuilder {
    fn default() -> Self {
        Self {
            branches: Vec::new(),
            booster: OutputBooster::capybara(),
            harvester: Harvester::Off,
            monitor: VoltageMonitor::capybara(),
            initial_voltage: None,
            output_enabled: true,
        }
    }
}

impl PowerSystemBuilder {
    /// Uses a single-branch bank of capacitance `c` and ESR `esr`
    /// (leakage 20 nA-class, scaled by capacitance).
    #[must_use]
    pub fn bank(mut self, c: Farads, esr: Ohms) -> Self {
        let leakage = Amps::new(20e-9 * (c.get() / 45e-3).max(0.1));
        self.branches = vec![CapacitorBranch::new(c, esr, leakage, Volts::ZERO)];
        self
    }

    /// Uses the two-branch supercapacitor ladder (40 mF/4.5 Ω slow branch +
    /// 5 mF/1.2 Ω fast branch) whose effective ESR falls with frequency.
    #[must_use]
    pub fn two_branch_bank(mut self) -> Self {
        self.branches = vec![
            CapacitorBranch::new(
                Farads::from_milli(40.0),
                Ohms::new(4.5),
                Amps::new(18e-9),
                Volts::ZERO,
            ),
            CapacitorBranch::new(
                Farads::from_milli(5.0),
                Ohms::new(1.2),
                Amps::new(2e-9),
                Volts::ZERO,
            ),
        ];
        self
    }

    /// Adds an extra branch (decoupling capacitance, reconfigurable-bank
    /// segments, …).
    #[must_use]
    pub fn extra_branch(mut self, branch: CapacitorBranch) -> Self {
        if self.branches.is_empty() {
            self.branches = default_bank();
        }
        self.branches.push(branch);
        self
    }

    /// Replaces the output booster.
    #[must_use]
    pub fn booster(mut self, booster: OutputBooster) -> Self {
        self.booster = booster;
        self
    }

    /// Replaces the harvester.
    #[must_use]
    pub fn harvester(mut self, harvester: Harvester) -> Self {
        self.harvester = harvester;
        self
    }

    /// Replaces the voltage monitor.
    #[must_use]
    pub fn monitor(mut self, monitor: VoltageMonitor) -> Self {
        self.monitor = monitor;
        self
    }

    /// Sets the initial buffer voltage (defaults to the monitor's
    /// `V_high`).
    #[must_use]
    pub fn initial_voltage(mut self, v: Volts) -> Self {
        self.initial_voltage = Some(v);
        self
    }

    /// Starts with the output booster disabled (a cold, uncharged device).
    #[must_use]
    pub fn cold_start(mut self) -> Self {
        self.output_enabled = false;
        self
    }

    /// Builds the system.
    #[must_use]
    pub fn build(self) -> PowerSystem {
        let mut branches = if self.branches.is_empty() {
            default_bank()
        } else {
            self.branches
        };
        let v0 = self
            .initial_voltage
            .unwrap_or_else(|| self.monitor.v_high());
        for b in &mut branches {
            b.set_v_internal(v0);
        }
        let mut monitor = self.monitor;
        if self.output_enabled {
            monitor.force_enable();
        }
        PowerSystem {
            buffer: BufferNetwork::new(branches),
            booster: self.booster,
            harvester: self.harvester,
            monitor,
            time: Seconds::ZERO,
            last_v_node: v0,
            ledger: EnergyLedger::new(),
            hint: SolverHint::default(),
        }
    }
}

/// The default 45 mF / 3.3 Ω single-branch Capybara bank.
fn default_bank() -> Vec<CapacitorBranch> {
    vec![CapacitorBranch::new(
        Farads::from_milli(45.0),
        Ohms::new(3.3),
        Amps::new(20e-9),
        Volts::ZERO,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(v: f64) -> Amps {
        Amps::from_milli(v)
    }

    #[test]
    fn capybara_starts_charged_and_enabled() {
        let sys = PowerSystem::capybara();
        assert!(sys.v_node().approx_eq(Volts::new(2.56), 1e-9));
        assert!(sys.monitor().output_enabled());
        assert!(sys
            .buffer()
            .total_capacitance()
            .approx_eq(Farads::from_milli(45.0), 1e-12));
    }

    #[test]
    fn step_under_load_shows_esr_drop() {
        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(Volts::new(2.3));
        let out = sys.step(ma(25.0), DEFAULT_DT);
        assert!(out.delivering);
        // Node sits below the internal voltage by I_in·R.
        assert!(out.v_node < Volts::new(2.3));
        let expected = Volts::new(2.3 - out.i_in.get() * 3.3);
        assert!(out.v_node.approx_eq(expected, 1e-4), "v = {}", out.v_node);
    }

    #[test]
    fn esr_drop_rebounds_after_load_removed() {
        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(Volts::new(2.3));
        let profile = LoadProfile::constant("pulse", ma(25.0), Seconds::from_milli(10.0));
        let out = sys.run_profile(&profile, RunConfig::default());
        assert!(out.completed());
        // Figure 1b: the minimum dips well below the settled final voltage.
        assert!(out.v_min < out.v_final);
        assert!(out.v_delta().get() > 0.05, "V_δ = {}", out.v_delta());
        // Yet the energy-consumption drop (start − final) is much smaller
        // than the total drop (start − min).
        let energy_drop = out.v_start - out.v_final;
        let total_drop = out.v_start - out.v_min;
        assert!(total_drop.get() > 2.0 * energy_drop.get());
    }

    #[test]
    fn brownout_when_starting_too_low() {
        let mut sys = PowerSystem::capybara();
        // Plenty of stored energy at 1.75 V, but a 50 mA load's ESR drop
        // crosses V_off = 1.6 V: the Figure 4 scenario.
        sys.set_buffer_voltage(Volts::new(1.75));
        let profile = LoadProfile::constant("lora", ma(50.0), Seconds::from_milli(100.0));
        let out = sys.run_profile(&profile, RunConfig::default());
        assert!(!out.completed());
        assert!(out.brownout.is_some());
        // Energy remained: the buffer still holds far more than the load
        // would have consumed.
        assert!(sys.buffer().stored_energy().get() > 0.5 * 0.045 * (1.6f64.powi(2)) * 0.9);
    }

    #[test]
    fn same_energy_lower_current_completes() {
        // The same charge delivered at 5 mA over 1 s completes from 1.9 V
        // while 50 mA over 100 ms browns out from the same voltage:
        // voltage, not energy, is the binding constraint.
        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(Volts::new(1.9));
        let gentle = LoadProfile::constant("gentle", ma(5.0), Seconds::new(1.0));
        let out = sys.run_profile(&gentle, RunConfig::default());
        assert!(out.completed(), "brownout at {:?}", out.brownout);

        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(Volts::new(1.9));
        let harsh = LoadProfile::constant("harsh", ma(50.0), Seconds::from_milli(100.0));
        let out = sys.run_profile(&harsh, RunConfig::default());
        assert!(!out.completed());
    }

    #[test]
    fn monitor_gates_delivery_after_brownout() {
        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(Volts::new(1.7));
        let profile = LoadProfile::constant("radio", ma(50.0), Seconds::from_milli(100.0));
        let out = sys.run_profile(&profile, RunConfig::default());
        assert!(!out.completed());
        // Further steps deliver nothing until recharged to V_high.
        let next = sys.step(ma(5.0), DEFAULT_DT);
        assert!(!next.delivering);
    }

    #[test]
    fn charging_recovers_output_at_v_high() {
        let mut sys = PowerSystem::builder()
            .harvester(Harvester::ConstantCurrent(ma(10.0)))
            .initial_voltage(Volts::new(1.5))
            .cold_start()
            .build();
        assert!(!sys.monitor().output_enabled());
        // 45 mF from 1.5 V to 2.56 V at 10 mA ≈ 4.8 s.
        sys.run_idle(Seconds::new(6.0), Seconds::from_micro(100.0));
        assert!(sys.monitor().output_enabled());
        // Input booster cut off at V_high: voltage must not run away.
        assert!(sys.v_node().get() < 2.6);
    }

    #[test]
    fn energy_ledger_balances() {
        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(Volts::new(2.4));
        let e0 = sys.buffer().stored_energy();
        let profile = LoadProfile::constant("p", ma(25.0), Seconds::from_milli(50.0));
        let out = sys.run_profile(&profile, RunConfig::default());
        assert!(out.completed());
        let e1 = sys.buffer().stored_energy();
        let actual_delta = e1 - e0;
        let expected_delta = out.ledger.expected_storage_delta();
        let tol = e0.get() * 1e-4 + 1e-9;
        assert!(
            actual_delta.approx_eq(expected_delta, tol),
            "actual {actual_delta} vs ledger {expected_delta}"
        );
    }

    #[test]
    fn two_branch_system_rebounds_gradually() {
        let mut sys = PowerSystem::capybara_two_branch();
        sys.set_buffer_voltage(Volts::new(2.3));
        let profile = LoadProfile::constant("pulse", ma(50.0), Seconds::from_milli(10.0));
        let out = sys.run_profile(&profile, RunConfig::default());
        assert!(out.completed());
        assert!(out.v_delta().get() > 0.0);
    }

    #[test]
    fn run_outcome_v_delta_never_negative() {
        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(Volts::new(2.5));
        let tiny = LoadProfile::constant("tiny", Amps::from_micro(10.0), Seconds::from_milli(1.0));
        let out = sys.run_profile(&tiny, RunConfig::default());
        assert!(out.v_delta().get() >= 0.0);
    }

    #[test]
    fn collapse_reported_for_absurd_load() {
        let mut sys = PowerSystem::capybara_with_bank(Farads::from_micro(100.0), Ohms::new(80.0));
        sys.set_buffer_voltage(Volts::new(2.5));
        let out = sys.step(Amps::new(2.0), DEFAULT_DT);
        assert!(out.collapsed);
        assert!(!out.delivering);
    }
}

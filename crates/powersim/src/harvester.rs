//! Harvester + input-booster charging models.

use culpeo_units::{Amps, Seconds, Volts, Watts};

/// What the input booster delivers into the energy buffer.
///
/// The paper decouples charging from the harvester's quirks via a BQ25504
/// input booster (§II-A), and its analyses assume either no incoming power
/// (Culpeo-PG's worst case) or roughly constant power (Culpeo-R, §IV-D,
/// "the supercapacitor-enabled devices Culpeo targets generally rely on
/// more powerful, slowly changing energy sources"). These variants model
/// that space; charging always cuts off at the monitor's `V_high`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Harvester {
    /// No incoming energy — Culpeo-PG's worst-case assumption and the test
    /// harness configuration for `V_safe` validation (§VI-A disables the
    /// charging circuit during tests).
    #[default]
    Off,
    /// Constant harvested power (an MPPT-tracked solar panel under steady
    /// illumination). Current into the buffer is `P / V_cap`.
    ConstantPower(Watts),
    /// Constant charge current (a current-limited charger).
    ConstantCurrent(Amps),
    /// Square-wave gated constant current: `i` flows while the wave is
    /// "on", nothing during the rest of each period. Models periodic
    /// harvester dropouts (shadowed solar, duty-cycled RF) for fault
    /// injection; all fields are plain scalars so the enum stays `Copy`.
    Windowed {
        /// Charge current while the window is on.
        i: Amps,
        /// Full on+off cycle length; non-positive means permanently off.
        period: Seconds,
        /// Fraction of each period the harvester is on, clamped to 0..=1.
        duty: f64,
        /// Offset added to the wall clock before windowing, so scenarios
        /// can start mid-dropout.
        phase: Seconds,
    },
}

impl Harvester {
    /// A weak indoor-solar harvester matched to the paper's application
    /// evaluation (§VI-B charges a 45 mF bank over tens of seconds).
    #[must_use]
    pub fn weak_solar() -> Self {
        Harvester::ConstantPower(Watts::from_milli(8.0))
    }

    /// The charge current pushed into the buffer node at voltage `v_node`,
    /// ignoring any time windowing (a [`Harvester::Windowed`] source is
    /// treated as inside its on-window). Time-invariant callers — the
    /// `V_safe` analyses, which assume zero harvest anyway — use this;
    /// the simulation engine calls [`Harvester::charge_current_at`].
    ///
    /// Constant-power charging saturates at a boost-converter-style current
    /// limit as the node voltage approaches zero (a real BQ25504 is
    /// current-limited; dividing by a near-zero voltage would otherwise
    /// produce unbounded current).
    #[must_use]
    pub fn charge_current(&self, v_node: Volts) -> Amps {
        match *self {
            Harvester::Off => Amps::ZERO,
            Harvester::ConstantPower(p) => {
                const CURRENT_LIMIT: f64 = 0.100; // 100 mA input-booster limit
                let v = v_node.get().max(1e-3);
                Amps::new((p.get() / v).min(CURRENT_LIMIT))
            }
            Harvester::ConstantCurrent(i) => i,
            Harvester::Windowed { i, .. } => i,
        }
    }

    /// The charge current at wall-clock time `t` — windowed sources gate
    /// [`Harvester::charge_current`] on the square wave, everything else
    /// ignores `t`.
    #[must_use]
    pub fn charge_current_at(&self, v_node: Volts, t: Seconds) -> Amps {
        match *self {
            Harvester::Windowed {
                period,
                duty,
                phase,
                ..
            } => {
                let p = period.get();
                if p <= 0.0 {
                    return Amps::ZERO;
                }
                let cycle = ((t.get() + phase.get()) / p).rem_euclid(1.0);
                if cycle < duty.clamp(0.0, 1.0) {
                    self.charge_current(v_node)
                } else {
                    Amps::ZERO
                }
            }
            _ => self.charge_current(v_node),
        }
    }

    /// True when this source delivers no energy, ever.
    #[must_use]
    pub fn is_off(&self) -> bool {
        match *self {
            Harvester::Off => true,
            Harvester::Windowed {
                i, period, duty, ..
            } => i == Amps::ZERO || period.get() <= 0.0 || duty <= 0.0,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_delivers_nothing() {
        assert_eq!(Harvester::Off.charge_current(Volts::new(2.0)), Amps::ZERO);
        assert!(Harvester::Off.is_off());
    }

    #[test]
    fn constant_power_scales_inversely_with_voltage() {
        let h = Harvester::ConstantPower(Watts::from_milli(10.0));
        let hi = h.charge_current(Volts::new(2.5));
        let lo = h.charge_current(Volts::new(1.6));
        assert!(lo.get() > hi.get());
        assert!((hi.get() - 0.010 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn constant_power_is_current_limited_near_zero() {
        let h = Harvester::ConstantPower(Watts::new(1.0));
        let i = h.charge_current(Volts::ZERO);
        assert!(i.get() <= 0.100 + 1e-12);
    }

    #[test]
    fn windowed_gates_on_the_square_wave() {
        let h = Harvester::Windowed {
            i: Amps::from_milli(5.0),
            period: Seconds::new(10.0),
            duty: 0.7,
            phase: Seconds::ZERO,
        };
        let v = Volts::new(2.0);
        // On for the first 7 s of each 10 s cycle, off for the last 3 s.
        assert_eq!(
            h.charge_current_at(v, Seconds::new(0.0)),
            Amps::from_milli(5.0)
        );
        assert_eq!(
            h.charge_current_at(v, Seconds::new(6.9)),
            Amps::from_milli(5.0)
        );
        assert_eq!(h.charge_current_at(v, Seconds::new(7.1)), Amps::ZERO);
        assert_eq!(h.charge_current_at(v, Seconds::new(9.9)), Amps::ZERO);
        assert_eq!(
            h.charge_current_at(v, Seconds::new(10.1)),
            Amps::from_milli(5.0)
        );
        // The time-blind view reports the on-window current.
        assert_eq!(h.charge_current(v), Amps::from_milli(5.0));
        assert!(!h.is_off());
    }

    #[test]
    fn windowed_phase_shifts_the_window() {
        let h = Harvester::Windowed {
            i: Amps::from_milli(5.0),
            period: Seconds::new(10.0),
            duty: 0.5,
            phase: Seconds::new(5.0),
        };
        let v = Volts::new(2.0);
        // Phase 5 s of a 50 % duty wave: starts inside the dropout.
        assert_eq!(h.charge_current_at(v, Seconds::new(0.0)), Amps::ZERO);
        assert_eq!(
            h.charge_current_at(v, Seconds::new(5.5)),
            Amps::from_milli(5.0)
        );
    }

    #[test]
    fn degenerate_windows_are_off() {
        let dead = Harvester::Windowed {
            i: Amps::from_milli(5.0),
            period: Seconds::ZERO,
            duty: 0.5,
            phase: Seconds::ZERO,
        };
        assert!(dead.is_off());
        assert_eq!(
            dead.charge_current_at(Volts::new(2.0), Seconds::new(1.0)),
            Amps::ZERO
        );
        let zero_duty = Harvester::Windowed {
            i: Amps::from_milli(5.0),
            period: Seconds::new(10.0),
            duty: 0.0,
            phase: Seconds::ZERO,
        };
        assert!(zero_duty.is_off());
    }

    #[test]
    fn non_windowed_sources_ignore_time() {
        let h = Harvester::ConstantCurrent(Amps::from_milli(5.0));
        let v = Volts::new(2.0);
        assert_eq!(
            h.charge_current_at(v, Seconds::new(123.0)),
            h.charge_current(v)
        );
    }

    #[test]
    fn constant_current_ignores_voltage() {
        let h = Harvester::ConstantCurrent(Amps::from_milli(5.0));
        assert_eq!(h.charge_current(Volts::new(0.1)), Amps::from_milli(5.0));
        assert_eq!(h.charge_current(Volts::new(2.5)), Amps::from_milli(5.0));
        assert!(!h.is_off());
    }
}

//! Harvester + input-booster charging models.

use culpeo_units::{Amps, Volts, Watts};

/// What the input booster delivers into the energy buffer.
///
/// The paper decouples charging from the harvester's quirks via a BQ25504
/// input booster (§II-A), and its analyses assume either no incoming power
/// (Culpeo-PG's worst case) or roughly constant power (Culpeo-R, §IV-D,
/// "the supercapacitor-enabled devices Culpeo targets generally rely on
/// more powerful, slowly changing energy sources"). These variants model
/// that space; charging always cuts off at the monitor's `V_high`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Harvester {
    /// No incoming energy — Culpeo-PG's worst-case assumption and the test
    /// harness configuration for `V_safe` validation (§VI-A disables the
    /// charging circuit during tests).
    #[default]
    Off,
    /// Constant harvested power (an MPPT-tracked solar panel under steady
    /// illumination). Current into the buffer is `P / V_cap`.
    ConstantPower(Watts),
    /// Constant charge current (a current-limited charger).
    ConstantCurrent(Amps),
}

impl Harvester {
    /// A weak indoor-solar harvester matched to the paper's application
    /// evaluation (§VI-B charges a 45 mF bank over tens of seconds).
    #[must_use]
    pub fn weak_solar() -> Self {
        Harvester::ConstantPower(Watts::from_milli(8.0))
    }

    /// The charge current pushed into the buffer node at voltage `v_node`.
    ///
    /// Constant-power charging saturates at a boost-converter-style current
    /// limit as the node voltage approaches zero (a real BQ25504 is
    /// current-limited; dividing by a near-zero voltage would otherwise
    /// produce unbounded current).
    #[must_use]
    pub fn charge_current(&self, v_node: Volts) -> Amps {
        match *self {
            Harvester::Off => Amps::ZERO,
            Harvester::ConstantPower(p) => {
                const CURRENT_LIMIT: f64 = 0.100; // 100 mA input-booster limit
                let v = v_node.get().max(1e-3);
                Amps::new((p.get() / v).min(CURRENT_LIMIT))
            }
            Harvester::ConstantCurrent(i) => i,
        }
    }

    /// True when this source delivers no energy.
    #[must_use]
    pub fn is_off(&self) -> bool {
        matches!(self, Harvester::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_delivers_nothing() {
        assert_eq!(Harvester::Off.charge_current(Volts::new(2.0)), Amps::ZERO);
        assert!(Harvester::Off.is_off());
    }

    #[test]
    fn constant_power_scales_inversely_with_voltage() {
        let h = Harvester::ConstantPower(Watts::from_milli(10.0));
        let hi = h.charge_current(Volts::new(2.5));
        let lo = h.charge_current(Volts::new(1.6));
        assert!(lo.get() > hi.get());
        assert!((hi.get() - 0.010 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn constant_power_is_current_limited_near_zero() {
        let h = Harvester::ConstantPower(Watts::new(1.0));
        let i = h.charge_current(Volts::ZERO);
        assert!(i.get() <= 0.100 + 1e-12);
    }

    #[test]
    fn constant_current_ignores_voltage() {
        let h = Harvester::ConstantCurrent(Amps::from_milli(5.0));
        assert_eq!(h.charge_current(Volts::new(0.1)), Amps::from_milli(5.0));
        assert_eq!(h.charge_current(Volts::new(2.5)), Amps::from_milli(5.0));
        assert!(!h.is_off());
    }
}

//! A single capacitor branch: ideal capacitance in series with its ESR.

use culpeo_units::{Amps, Farads, Joules, Ohms, Volts};

/// One branch of the energy buffer: an ideal capacitor in series with a
/// resistance (its ESR), with a constant intrinsic leakage (DCL).
///
/// This is exactly the model the paper uses for the energy buffer (§IV-B),
/// plus the leakage term that matters for the capacitor-technology
/// comparison of Figure 3. Several branches in parallel form a
/// [`BufferNetwork`](crate::BufferNetwork).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitorBranch {
    capacitance: Farads,
    esr: Ohms,
    leakage: Amps,
    /// Internal (ideal-capacitor) voltage — *not* directly observable; the
    /// terminal sees this minus the ESR drop of whatever current flows.
    v_internal: Volts,
}

impl CapacitorBranch {
    /// Creates a branch at `initial` internal voltage.
    ///
    /// # Panics
    ///
    /// Panics if capacitance or ESR is not strictly positive, or leakage is
    /// negative.
    #[must_use]
    pub fn new(capacitance: Farads, esr: Ohms, leakage: Amps, initial: Volts) -> Self {
        assert!(capacitance.get() > 0.0, "capacitance must be positive");
        assert!(esr.get() > 0.0, "ESR must be positive");
        assert!(leakage.get() >= 0.0, "leakage cannot be negative");
        Self {
            capacitance,
            esr,
            leakage,
            v_internal: initial,
        }
    }

    /// A leakage-free branch (fine for short-horizon experiments where DCL
    /// is negligible).
    #[must_use]
    pub fn ideal(capacitance: Farads, esr: Ohms, initial: Volts) -> Self {
        Self::new(capacitance, esr, Amps::ZERO, initial)
    }

    /// The branch capacitance.
    #[must_use]
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }

    /// The branch ESR.
    #[must_use]
    pub fn esr(&self) -> Ohms {
        self.esr
    }

    /// The branch's intrinsic leakage current.
    #[must_use]
    pub fn leakage(&self) -> Amps {
        self.leakage
    }

    /// The internal (ideal-capacitor) voltage.
    #[must_use]
    pub fn v_internal(&self) -> Volts {
        self.v_internal
    }

    /// Forces the internal voltage (test-harness "discharge to level").
    pub fn set_v_internal(&mut self, v: Volts) {
        self.v_internal = v;
    }

    /// Stored energy at the current internal voltage (`½CV²`).
    #[must_use]
    pub fn stored_energy(&self) -> Joules {
        self.capacitance.stored_energy(self.v_internal)
    }

    /// The current this branch sources into a node held at `v_node`
    /// (`I = (V_int − V_node)/R`, positive = discharging into the node).
    #[must_use]
    pub fn current_into_node(&self, v_node: Volts) -> Amps {
        (self.v_internal - v_node) / self.esr
    }

    /// Advances the internal voltage after sourcing `i` (plus leakage) for
    /// `dt`. The internal voltage is floored at zero — a capacitor cannot
    /// be driven to negative charge by leakage.
    pub fn integrate(&mut self, i: Amps, dt: culpeo_units::Seconds) {
        let total = Amps::new(i.get() + self.leakage.get());
        let dv = self.capacitance.slew_for_current(total, dt);
        self.v_internal = Volts::new((self.v_internal - dv).get().max(0.0));
    }

    /// Applies capacitor aging: capacitance retention `c_factor` (e.g. 0.8
    /// at end-of-life) and ESR growth `r_factor` (e.g. 2.0 at end-of-life),
    /// the §IV-C lifetime drift that motivates runtime re-profiling.
    ///
    /// # Panics
    ///
    /// Panics if either factor is not strictly positive.
    #[must_use]
    pub fn aged(&self, aging: AgingState) -> Self {
        Self {
            capacitance: self.capacitance * aging.capacitance_retention,
            esr: self.esr * aging.esr_growth,
            ..*self
        }
    }
}

/// Lifetime drift of a capacitor: how much capacitance remains and how much
/// the ESR has grown.
///
/// Datasheets consider a supercapacitor dead once capacitance falls below
/// 80 % of nominal or ESR doubles; [`AgingState::END_OF_LIFE`] encodes that
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingState {
    /// Remaining fraction of nominal capacitance, in `(0, 1]`.
    pub capacitance_retention: f64,
    /// Multiplier on nominal ESR, `≥ 1`.
    pub esr_growth: f64,
}

impl AgingState {
    /// A fresh part: full capacitance, nominal ESR.
    pub const FRESH: Self = Self {
        capacitance_retention: 1.0,
        esr_growth: 1.0,
    };

    /// The datasheet end-of-life boundary: 80 % capacitance, 2× ESR.
    pub const END_OF_LIFE: Self = Self {
        capacitance_retention: 0.8,
        esr_growth: 2.0,
    };

    /// Linear interpolation between fresh (`t = 0`) and end-of-life
    /// (`t = 1`). `t` may exceed 1 to model beyond-spec wear.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative.
    #[must_use]
    pub fn at_fraction(t: f64) -> Self {
        assert!(t >= 0.0, "aging fraction cannot be negative");
        Self {
            capacitance_retention: (1.0 + (0.8 - 1.0) * t).max(0.05),
            esr_growth: 1.0 + (2.0 - 1.0) * t,
        }
    }
}

impl Default for AgingState {
    fn default() -> Self {
        Self::FRESH
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_units::Seconds;

    fn bank() -> CapacitorBranch {
        CapacitorBranch::ideal(Farads::from_milli(45.0), Ohms::new(3.3), Volts::new(2.5))
    }

    #[test]
    fn current_into_node_follows_ohms_law() {
        let b = bank();
        let i = b.current_into_node(Volts::new(2.17));
        assert!(i.approx_eq(Amps::new((2.5 - 2.17) / 3.3), 1e-15));
        // Node above internal voltage → branch absorbs current (charging).
        assert!(b.current_into_node(Volts::new(2.6)).get() < 0.0);
    }

    #[test]
    fn integrate_discharges() {
        let mut b = bank();
        b.integrate(Amps::from_milli(45.0), Seconds::new(1.0));
        // ΔV = I·t/C = 0.045·1/0.045 = 1 V.
        assert!(b.v_internal().approx_eq(Volts::new(1.5), 1e-12));
    }

    #[test]
    fn integrate_floors_at_zero() {
        let mut b = bank();
        b.integrate(Amps::new(10.0), Seconds::new(10.0));
        assert_eq!(b.v_internal(), Volts::ZERO);
    }

    #[test]
    fn leakage_drains_without_load() {
        let mut b = CapacitorBranch::new(
            Farads::from_milli(45.0),
            Ohms::new(3.3),
            Amps::from_micro(20.0),
            Volts::new(2.5),
        );
        b.integrate(Amps::ZERO, Seconds::new(3600.0));
        // 20 nA·h ≈ 20 µA × 3600 s / 45 mF = 1.6 V of droop.
        assert!(b.v_internal().get() < 1.0);
    }

    #[test]
    fn stored_energy_tracks_half_cv_squared() {
        let b = bank();
        assert!(b
            .stored_energy()
            .approx_eq(Joules::new(0.5 * 0.045 * 6.25), 1e-12));
    }

    #[test]
    fn aging_scales_parameters() {
        let aged = bank().aged(AgingState::END_OF_LIFE);
        assert!(aged
            .capacitance()
            .approx_eq(Farads::from_milli(36.0), 1e-12));
        assert!(aged.esr().approx_eq(Ohms::new(6.6), 1e-12));
    }

    #[test]
    fn aging_interpolation_endpoints() {
        assert_eq!(AgingState::at_fraction(0.0), AgingState::FRESH);
        let eol = AgingState::at_fraction(1.0);
        assert!((eol.capacitance_retention - 0.8).abs() < 1e-12);
        assert!((eol.esr_growth - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ESR must be positive")]
    fn rejects_zero_esr() {
        let _ = CapacitorBranch::ideal(Farads::from_milli(1.0), Ohms::ZERO, Volts::ZERO);
    }
}

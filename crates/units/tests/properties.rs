//! Property-based tests of the unit algebra.

use culpeo_units::{Amps, Farads, Joules, Ohms, Quantity, Seconds, Volts, Watts};
use proptest::prelude::*;

fn finite_positive() -> impl Strategy<Value = f64> {
    // Stay in a physically plausible range to avoid overflow artifacts.
    1e-9..1e6f64
}

proptest! {
    #[test]
    fn ohms_law_roundtrip(i in finite_positive(), r in finite_positive()) {
        let v: Volts = Amps::new(i) * Ohms::new(r);
        let i_back: Amps = v / Ohms::new(r);
        prop_assert!((i_back.get() - i).abs() <= i * 1e-12);
    }

    #[test]
    fn power_energy_roundtrip(v in finite_positive(), i in finite_positive(), t in finite_positive()) {
        let p: Watts = Volts::new(v) * Amps::new(i);
        let e: Joules = p * Seconds::new(t);
        let p_back: Watts = e / Seconds::new(t);
        prop_assert!((p_back.get() - p.get()).abs() <= p.get() * 1e-12);
    }

    #[test]
    fn stored_energy_is_monotone_in_voltage(c in finite_positive(), v1 in 0.0..10.0f64, v2 in 0.0..10.0f64) {
        let c = Farads::new(c);
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(c.stored_energy(Volts::new(hi)).get() >= c.stored_energy(Volts::new(lo)).get());
    }

    #[test]
    fn energy_between_is_antisymmetric(c in finite_positive(), a in 0.0..10.0f64, b in 0.0..10.0f64) {
        let c = Farads::new(c);
        let fwd = c.energy_between(Volts::new(a), Volts::new(b));
        let rev = c.energy_between(Volts::new(b), Volts::new(a));
        let tol = 1e-12 * (1.0 + fwd.get().abs());
        prop_assert!((fwd.get() + rev.get()).abs() <= tol);
    }

    #[test]
    fn voltage_for_energy_inverts(c in finite_positive(), v in 0.0..10.0f64) {
        let c = Farads::new(c);
        let v_back = c.voltage_for_energy(c.stored_energy(Volts::new(v)));
        prop_assert!((v_back.get() - v).abs() <= 1e-9 * (1.0 + v));
    }

    #[test]
    fn slew_roundtrip(c in finite_positive(), dv in -5.0..5.0f64, dt in finite_positive()) {
        let c = Farads::new(c);
        let i = c.current_for_slew(Volts::new(dv), Seconds::new(dt));
        let dv_back = c.slew_for_current(i, Seconds::new(dt));
        prop_assert!((dv_back.get() - dv).abs() <= 1e-9 * (1.0 + dv.abs()));
    }

    #[test]
    fn lerp_stays_in_range(a in -10.0..10.0f64, b in -10.0..10.0f64, t in 0.0..1.0f64) {
        let lo = a.min(b);
        let hi = a.max(b);
        let x = Volts::new(a).lerp(Volts::new(b), t).get();
        prop_assert!(x >= lo - 1e-12 && x <= hi + 1e-12);
    }

    #[test]
    fn si_formatting_never_panics(v in -1e20..1e20f64) {
        let _ = culpeo_units::si(v, "V");
    }
}

//! Physical-quantity newtypes for the Culpeo workspace.
//!
//! Every crate in the workspace moves electrical quantities around — volts on
//! a capacitor, amps into a booster, joules out of a task. Mixing those up in
//! bare `f64`s is exactly the class of bug a reproduction of a measurement
//! paper cannot afford, so this crate wraps each quantity in a newtype and
//! implements only the physically meaningful arithmetic between them:
//!
//! ```
//! use culpeo_units::{Volts, Amps, Ohms, Watts, Seconds, Quantity};
//!
//! let esr = Ohms::new(3.3);
//! let draw = Amps::from_milli(25.0);
//! let drop: Volts = draw * esr;             // Ohm's law
//! let power: Watts = Volts::new(2.5) * draw; // P = V·I
//! let energy = power * Seconds::from_milli(10.0);
//! assert!((drop.get() - 0.0825).abs() < 1e-12);
//! assert!(energy.get() > 0.0);
//! ```
//!
//! The wrappers are `Copy` and free at runtime; [`Quantity::get`] recovers
//! the raw `f64` when interfacing with code that does not care about units.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fmt;
mod interval;
mod ops;
mod quantity;
pub mod seed;

pub use fmt::si;
pub use interval::{IntervalJ, IntervalV};
pub use quantity::{
    Amps, Celsius, Farads, Hertz, Joules, Ohms, Percent, Quantity, Seconds, Volts, Watts,
};

/// A cubic-millimetre volume, used by the capacitor catalog (`culpeo-capbank`).
///
/// Kept separate from the electrical quantities because it participates in no
/// electrical arithmetic; it exists so part volumes cannot be confused with,
/// say, capacitance in the Figure 3 sweep.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct CubicMillimetres(pub f64);

impl CubicMillimetres {
    /// Creates a volume from a raw value in mm³.
    ///
    /// Under `strict-finite`, debug builds reject NaN and ±∞ like the
    /// electrical quantities do.
    #[must_use]
    pub const fn new(v: f64) -> Self {
        #[cfg(feature = "strict-finite")]
        debug_assert!(v.is_finite(), "non-finite quantity constructed");
        Self(v)
    }

    /// Returns the raw value in mm³.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }
}

impl core::ops::Add for CubicMillimetres {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::ops::Mul<f64> for CubicMillimetres {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl core::iter::Sum for CubicMillimetres {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|v| v.0).sum())
    }
}

impl core::fmt::Display for CubicMillimetres {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} mm³", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_addition_and_sum() {
        let a = CubicMillimetres::new(10.0);
        let b = CubicMillimetres::new(2.5);
        assert_eq!((a + b).get(), 12.5);
        let total: CubicMillimetres = [a, b, b].into_iter().sum();
        assert_eq!(total.get(), 15.0);
    }

    #[test]
    fn volume_scaling() {
        let a = CubicMillimetres::new(4.0) * 6.0;
        assert_eq!(a.get(), 24.0);
    }

    #[test]
    fn volume_display() {
        assert_eq!(CubicMillimetres::new(3.0).to_string(), "3 mm³");
    }
}

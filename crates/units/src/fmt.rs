//! Human-readable `Display` with SI-prefix auto-scaling.
//!
//! Figure binaries print values like "45 mF" and "82.5 mV"; centralising the
//! prefix logic keeps all output consistent with the paper's notation.

use crate::{Amps, Celsius, Farads, Hertz, Joules, Ohms, Percent, Seconds, Volts, Watts};

/// Formats `value` (in base units) with an auto-selected SI prefix.
///
/// Returns e.g. `"25 mA"`, `"3.3 Ω"`, `"140 nW"`. Values are rendered with
/// up to four significant digits, trailing zeros trimmed.
#[must_use]
pub fn si(value: f64, symbol: &str) -> String {
    if value == 0.0 {
        return format!("0 {symbol}");
    }
    if !value.is_finite() {
        return format!("{value} {symbol}");
    }
    const PREFIXES: [(f64, &str); 9] = [
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
    ];
    let magnitude = value.abs();
    let (scale, prefix) = PREFIXES
        .iter()
        .find(|(s, _)| magnitude >= *s)
        .copied()
        .unwrap_or((1e-15, "f"));
    let scaled = value / scale;
    // Four significant digits, then trim trailing zeros and a dangling dot.
    let mut text = format!("{scaled:.4}");
    if text.contains('.') {
        while text.ends_with('0') {
            text.pop();
        }
        if text.ends_with('.') {
            text.pop();
        }
    }
    format!("{text} {prefix}{symbol}")
}

macro_rules! display_si {
    ($($t:ty),+) => {
        $(
            impl core::fmt::Display for $t {
                fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                    write!(f, "{}", si(self.get(), <$t as crate::Quantity>::SYMBOL))
                }
            }
        )+
    };
}

display_si!(Volts, Amps, Ohms, Farads, Seconds, Joules, Watts, Hertz);

impl core::fmt::Display for Percent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2} %", self.get())
    }
}

impl core::fmt::Display for Celsius {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1} °C", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_prefix_selection() {
        assert_eq!(si(0.025, "A"), "25 mA");
        assert_eq!(si(45e-3, "F"), "45 mF");
        assert_eq!(si(140e-9, "W"), "140 nW");
        assert_eq!(si(125_000.0, "Hz"), "125 kHz");
        assert_eq!(si(3.3, "Ω"), "3.3 Ω");
    }

    #[test]
    fn si_zero_and_negative() {
        assert_eq!(si(0.0, "V"), "0 V");
        assert_eq!(si(-0.5, "V"), "-500 mV");
    }

    #[test]
    fn si_non_finite_values_do_not_panic() {
        assert_eq!(si(f64::INFINITY, "V"), "inf V");
        assert!(si(f64::NAN, "V").contains("NaN"));
    }

    #[test]
    fn display_uses_si() {
        assert_eq!(Amps::from_milli(50.0).to_string(), "50 mA");
        assert_eq!(Volts::new(2.5).to_string(), "2.5 V");
        assert_eq!(Percent::new(62.5).to_string(), "62.50 %");
        assert_eq!(Celsius::new(25.0).to_string(), "25.0 °C");
    }

    #[test]
    fn tiny_values_saturate_at_femto() {
        assert!(si(1e-18, "A").ends_with("fA"));
    }
}

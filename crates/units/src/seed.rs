//! Deterministic seed derivation: the workspace's one splitmix64.
//!
//! Three crates need small, fast, deterministic pseudo-randomness that
//! is *not* statistics-grade: `culpeo-faults` derives per-scenario
//! sub-seeds and garbage byte payloads, `culpeo-race` derives
//! per-depth schedule rotations, and the served fuzz tests synthesize
//! malformed request bodies. They all want the same primitive —
//! splitmix64, the standard 64-bit finalizer-based generator — and
//! duplicated copies of it had already begun to accumulate. This module
//! is the single implementation; everything else re-exports or wraps
//! it.
//!
//! Nothing here is suitable for cryptography, and nothing here feeds
//! the physics: simulation randomness goes through the vendored `rand`
//! stub so experiment seeds stay on their own, documented stream.

/// Advances `state` by one splitmix64 step and returns the mixed output.
///
/// This is the canonical splitmix64 round: add the golden-ratio
/// increment, then run the 64-bit variant-13 finalizer. Every
/// deterministic stream in the workspace is some arrangement of this
/// function.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the `index`-th deterministic sub-seed from a master seed
/// (one splitmix64 round over their combination).
///
/// Every consumer gets its own stream: re-ordering or skipping
/// consumers must not shift the randomness any other consumer sees.
/// `culpeo-faults` keys this by roster index, `culpeo-race` by
/// exploration depth.
#[must_use]
pub fn sub_seed(master: u64, index: u64) -> u64 {
    let mut state = master.wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    splitmix64(&mut state)
}

/// Deterministic pseudo-random bytes from a seed (splitmix64 stream).
#[must_use]
pub fn byte_stream(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed;
    let mut out = Vec::with_capacity(len + 8);
    while out.len() < len {
        out.extend_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_seeds_are_deterministic_and_distinct() {
        assert_eq!(sub_seed(42, 0), sub_seed(42, 0));
        let seeds: Vec<u64> = (0..32).map(|i| sub_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "sub-seeds must not collide");
        assert_ne!(sub_seed(1, 0), sub_seed(2, 0), "master seed must matter");
    }

    /// Pins the exact output so the dedup of the old `culpeo-faults`
    /// copies cannot silently change any seeded artifact in results/.
    #[test]
    fn sub_seed_matches_the_historical_stream() {
        // Literal transcription of the pre-dedup faults implementation.
        let reference = |master: u64, index: u64| -> u64 {
            let mut z = master
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for master in [0, 1, 42, u64::MAX] {
            for index in [0, 1, 7, 1 << 40] {
                assert_eq!(sub_seed(master, index), reference(master, index));
            }
        }
    }

    #[test]
    fn byte_stream_is_deterministic_seed_sensitive_and_exact_length() {
        assert_eq!(byte_stream(1, 64), byte_stream(1, 64));
        assert_ne!(byte_stream(1, 64), byte_stream(2, 64));
        for len in [0, 1, 7, 8, 9, 64, 100] {
            assert_eq!(byte_stream(3, len).len(), len);
        }
        // A longer stream starts with the shorter one: truncation only.
        assert_eq!(byte_stream(5, 100)[..32], byte_stream(5, 32)[..]);
    }
}

//! Directed-rounding interval arithmetic over voltages and energies.
//!
//! The static verifier (`culpeo-verify`) propagates a worst-case voltage
//! envelope `[v_lo, v_hi]` through the charge model. For its `Proved`
//! verdict to be *sound*, every arithmetic step must round outward: the
//! lower endpoint toward −∞, the upper endpoint toward +∞. Rust's default
//! round-to-nearest is within half an ulp of the true value, so stepping
//! each endpoint one ulp outward after every operation ([`f64::next_down`]
//! / [`f64::next_up`]) brackets the exact real-number result.
//!
//! Two wrappers are provided, matching the two quantities the charge walk
//! moves between: [`IntervalV`] (volts) and [`IntervalJ`] (joules).
//! Operations are the small closed set the verifier's transfer functions
//! need — addition, scaling, clamping, and the `½CV²` conversions between
//! voltage and energy space — each one outward-rounded.

use crate::quantity::{Joules, Volts};

/// One ulp downward, used on lower endpoints after every operation.
#[inline]
fn down(x: f64) -> f64 {
    x.next_down()
}

/// One ulp upward, used on upper endpoints after every operation.
#[inline]
fn up(x: f64) -> f64 {
    x.next_up()
}

/// A closed voltage interval `[lo, hi]` with outward-rounded endpoints.
///
/// Endpoints are kept non-negative (a capacitor voltage cannot be) and
/// finite, so the wrapper composes with the `strict-finite` feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalV {
    lo: Volts,
    hi: Volts,
}

impl IntervalV {
    /// Creates an interval from ordered endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is negative.
    #[must_use]
    pub fn new(lo: Volts, hi: Volts) -> Self {
        assert!(
            Volts::ZERO <= lo && lo <= hi,
            "interval endpoints must satisfy 0 ≤ lo ≤ hi; got [{lo}, {hi}]"
        );
        Self { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    #[must_use]
    pub fn point(v: Volts) -> Self {
        Self::new(v, v)
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(self) -> Volts {
        self.lo
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(self) -> Volts {
        self.hi
    }

    /// `hi − lo`.
    #[must_use]
    pub fn width(self) -> Volts {
        self.hi - self.lo
    }

    /// Whether `v` lies inside the closed interval.
    #[must_use]
    pub fn contains(self, v: Volts) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// The smallest interval containing both operands (lattice join).
    #[must_use]
    pub fn join(self, other: Self) -> Self {
        Self::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Whether `self` encloses `other` entirely.
    #[must_use]
    pub fn encloses(self, other: Self) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Clamps both endpoints to at most `cap` (the `V_high` charge cutoff).
    /// Exact: clamping introduces no rounding error.
    #[must_use]
    pub fn min(self, cap: Volts) -> Self {
        Self::new(self.lo.min(cap), self.hi.min(cap))
    }

    /// Clamps both endpoints to at least `floor`. Exact.
    #[must_use]
    pub fn max(self, floor: Volts) -> Self {
        Self::new(self.lo.max(floor), self.hi.max(floor))
    }

    /// Outward-rounded squared endpoints `[lo², hi²]` in V².
    ///
    /// Monotone because endpoints are non-negative.
    #[must_use]
    pub fn squared(self) -> (f64, f64) {
        (
            down(self.lo.get() * self.lo.get()).max(0.0),
            up(self.hi.get() * self.hi.get()),
        )
    }

    /// Rebuilds a voltage interval from squared-space bounds, rounding the
    /// square roots outward and clamping negative squared values to zero
    /// (a drained capacitor, mirroring [`Volts::from_squared`]).
    #[must_use]
    pub fn from_squared(lo_sq: f64, hi_sq: f64) -> Self {
        let lo = down(lo_sq.max(0.0).sqrt()).max(0.0);
        let hi = up(hi_sq.max(0.0).sqrt());
        Self::new(Volts::new(lo), Volts::new(hi))
    }

    /// The charge transfer function `v ↦ √(v² + 2E/C)` lifted to
    /// intervals, outward-rounded at every step. Monotone in both `v` and
    /// `E`, so the lower endpoint pairs with `e.lo()` and the upper with
    /// `e.hi()`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not strictly positive.
    #[must_use]
    pub fn charge(self, e: IntervalJ, c: f64) -> Self {
        let (v_lo_sq, v_hi_sq) = self.squared();
        let (e_lo_sq, e_hi_sq) = e.v_squared_swing(c);
        Self::from_squared(down(v_lo_sq + e_lo_sq), up(v_hi_sq + e_hi_sq))
    }

    /// The discharge transfer function `v ↦ √(max(v² − 2E/C, 0))` lifted
    /// to intervals, outward-rounded. Anti-monotone in `E`: the lower
    /// endpoint assumes the *largest* admissible draw (`e.hi()`), the
    /// upper the smallest (`e.lo()`).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not strictly positive.
    #[must_use]
    pub fn discharge(self, e: IntervalJ, c: f64) -> Self {
        let (v_lo_sq, v_hi_sq) = self.squared();
        let (e_lo_sq, e_hi_sq) = e.v_squared_swing(c);
        Self::from_squared(down(v_lo_sq - e_hi_sq), up(v_hi_sq - e_lo_sq))
    }
}

impl core::ops::Add for IntervalV {
    type Output = Self;

    /// Interval addition, outward-rounded.
    fn add(self, rhs: Self) -> Self {
        Self::new(
            Volts::new(down(self.lo.get() + rhs.lo.get()).max(0.0)),
            Volts::new(up(self.hi.get() + rhs.hi.get())),
        )
    }
}

impl core::ops::Sub for IntervalV {
    type Output = Self;

    /// Interval subtraction, outward-rounded, floored at zero volts on
    /// both endpoints.
    fn sub(self, rhs: Self) -> Self {
        let lo = down(self.lo.get() - rhs.hi.get()).max(0.0);
        let hi = up(self.hi.get() - rhs.lo.get()).max(0.0);
        Self::new(Volts::new(lo), Volts::new(hi.max(lo)))
    }
}

impl core::fmt::Display for IntervalV {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// A closed energy interval `[lo, hi]` with outward-rounded endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalJ {
    lo: Joules,
    hi: Joules,
}

impl IntervalJ {
    /// Creates an interval from ordered endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is negative.
    #[must_use]
    pub fn new(lo: Joules, hi: Joules) -> Self {
        assert!(
            Joules::ZERO <= lo && lo <= hi,
            "interval endpoints must satisfy 0 ≤ lo ≤ hi; got [{lo}, {hi}]"
        );
        Self { lo, hi }
    }

    /// The degenerate interval `[e, e]`.
    #[must_use]
    pub fn point(e: Joules) -> Self {
        Self::new(e, e)
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(self) -> Joules {
        self.lo
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(self) -> Joules {
        self.hi
    }

    /// Scales by a non-negative factor, outward-rounded.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or non-finite.
    #[must_use]
    pub fn scale(self, k: f64) -> Self {
        assert!(k.is_finite() && k >= 0.0, "scale factor must be ≥ 0");
        Self::new(
            Joules::new(down(self.lo.get() * k).max(0.0)),
            Joules::new(up(self.hi.get() * k)),
        )
    }

    /// The smallest interval containing both operands (lattice join).
    /// Exact: selecting endpoints introduces no rounding error.
    #[must_use]
    pub fn join(self, other: Self) -> Self {
        Self::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// The energy of repeating this draw between `lo_n` and `hi_n` times:
    /// `[lo·lo_n, hi·hi_n]`, outward-rounded. This is the symbolic
    /// loop-bound multiplication the worst-case analyzer uses — the
    /// repeat count is an interval of its own, so the cheapest trajectory
    /// takes the fewest iterations of the cheapest body and the dearest
    /// takes the most of the dearest.
    ///
    /// # Panics
    ///
    /// Panics if `lo_n > hi_n`.
    #[must_use]
    pub fn repeat(self, lo_n: u32, hi_n: u32) -> Self {
        assert!(lo_n <= hi_n, "repeat bounds must satisfy lo_n ≤ hi_n");
        Self::new(
            Joules::new(down(self.lo.get() * f64::from(lo_n)).max(0.0)),
            Joules::new(up(self.hi.get() * f64::from(hi_n))),
        )
    }

    /// The voltage-squared swing `2·E/C` of this much energy on a buffer
    /// of capacitance `c` farads, outward-rounded (V² per endpoint).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not strictly positive.
    #[must_use]
    pub fn v_squared_swing(self, c: f64) -> (f64, f64) {
        assert!(c > 0.0, "capacitance must be positive");
        (
            down(2.0 * self.lo.get() / c).max(0.0),
            up(2.0 * self.hi.get() / c),
        )
    }
}

impl core::ops::Add for IntervalJ {
    type Output = Self;

    /// Interval addition, outward-rounded.
    fn add(self, rhs: Self) -> Self {
        Self::new(
            Joules::new(down(self.lo.get() + rhs.lo.get()).max(0.0)),
            Joules::new(up(self.hi.get() + rhs.hi.get())),
        )
    }
}

impl core::fmt::Display for IntervalJ {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Directed-rounding pins: every operation must land exactly one
    // nextafter step outside the round-to-nearest result.

    #[test]
    fn add_endpoints_pin_to_nextafter() {
        let a = IntervalV::point(Volts::new(2.5));
        let b = IntervalV::point(Volts::new(0.25));
        let sum = a + b;
        assert_eq!(sum.lo().get(), (2.5f64 + 0.25).next_down());
        assert_eq!(sum.hi().get(), (2.5f64 + 0.25).next_up());
    }

    #[test]
    fn squared_endpoints_pin_to_nextafter() {
        let v = IntervalV::point(Volts::new(2.3));
        let (lo_sq, hi_sq) = v.squared();
        assert_eq!(lo_sq, (2.3f64 * 2.3).next_down());
        assert_eq!(hi_sq, (2.3f64 * 2.3).next_up());
    }

    #[test]
    fn from_squared_endpoints_pin_to_nextafter() {
        let v = IntervalV::from_squared(5.29, 5.29);
        assert_eq!(v.lo().get(), 5.29f64.sqrt().next_down());
        assert_eq!(v.hi().get(), 5.29f64.sqrt().next_up());
    }

    #[test]
    fn energy_scale_pins_to_nextafter() {
        let e = IntervalJ::point(Joules::new(1.0e-3));
        let s = e.scale(3.0);
        assert_eq!(s.lo().get(), (1.0e-3f64 * 3.0).next_down());
        assert_eq!(s.hi().get(), (1.0e-3f64 * 3.0).next_up());
    }

    #[test]
    fn v_squared_swing_pins_to_nextafter() {
        let e = IntervalJ::point(Joules::new(30.0e-3));
        let (lo, hi) = e.v_squared_swing(45.0e-3);
        assert_eq!(lo, (2.0 * 30.0e-3f64 / 45.0e-3).next_down());
        assert_eq!(hi, (2.0 * 30.0e-3f64 / 45.0e-3).next_up());
    }

    #[test]
    fn point_round_trip_through_v_squared_space_stays_tight() {
        // Down-up through squared space must enclose the scalar result and
        // stay within a few ulps of it.
        let v = Volts::new(2.2);
        let (lo_sq, hi_sq) = IntervalV::point(v).squared();
        let back = IntervalV::from_squared(lo_sq, hi_sq);
        assert!(back.contains(v));
        assert!(back.width().get() < 1e-12, "width {}", back.width());
    }

    #[test]
    fn charge_and_discharge_enclose_the_scalar_walk() {
        // 45 mF buffer, 2.56 V start, 60 mJ draw: the scalar model's
        // answer must lie inside the interval result, and a tight
        // round trip must stay within a few ulps.
        let c = 45.0e-3;
        let e = IntervalJ::point(Joules::new(60.0e-3));
        let after = IntervalV::point(Volts::new(2.56)).discharge(e, c);
        let scalar = Volts::from_squared(2.56f64 * 2.56 - 2.0 * 60.0e-3 / c);
        assert!(after.contains(scalar), "{after} does not contain {scalar}");
        let back = after.charge(e, c);
        assert!(back.contains(Volts::new(2.56)), "{back}");
        assert!(back.width().get() < 1e-12, "width {}", back.width());
    }

    #[test]
    fn discharge_floors_at_zero_volts() {
        let e = IntervalJ::point(Joules::new(1.0));
        let drained = IntervalV::point(Volts::new(1.0)).discharge(e, 45.0e-3);
        assert_eq!(drained.lo(), Volts::ZERO);
        // The upper endpoint rounds outward, so it may sit one ulp above
        // zero rather than exactly on it.
        assert!(drained.hi().get() <= f64::MIN_POSITIVE, "{}", drained.hi());
    }

    #[test]
    fn discharge_pairs_endpoints_anti_monotonically() {
        // The lower endpoint must assume the 20 mJ draw, the upper the
        // 10 mJ draw; a mid-band scalar walk lands strictly inside.
        let c = 45.0e-3;
        let e = IntervalJ::new(Joules::new(10.0e-3), Joules::new(20.0e-3));
        let after = IntervalV::point(Volts::new(2.5)).discharge(e, c);
        assert!(after.lo() < after.hi());
        let mid = Volts::from_squared(2.5f64 * 2.5 - 2.0 * 15.0e-3 / c);
        assert!(after.contains(mid), "{after} does not contain {mid}");
    }

    #[test]
    fn sub_floors_at_zero() {
        let a = IntervalV::new(Volts::new(0.1), Volts::new(0.2));
        let b = IntervalV::point(Volts::new(0.5));
        let d = a - b;
        assert_eq!(d.lo(), Volts::ZERO);
        assert_eq!(d.hi(), Volts::ZERO);
    }

    #[test]
    fn join_and_encloses() {
        let a = IntervalV::new(Volts::new(1.0), Volts::new(2.0));
        let b = IntervalV::new(Volts::new(1.5), Volts::new(2.5));
        let j = a.join(b);
        assert_eq!(j.lo(), Volts::new(1.0));
        assert_eq!(j.hi(), Volts::new(2.5));
        assert!(j.encloses(a) && j.encloses(b));
        assert!(!a.encloses(b));
    }

    #[test]
    fn clamps_are_exact() {
        let v = IntervalV::new(Volts::new(1.0), Volts::new(3.0));
        let capped = v.min(Volts::new(2.56));
        assert_eq!(capped.hi(), Volts::new(2.56));
        assert_eq!(capped.lo(), Volts::new(1.0));
        let floored = v.max(Volts::new(1.6));
        assert_eq!(floored.lo(), Volts::new(1.6));
    }

    #[test]
    #[should_panic(expected = "0 ≤ lo ≤ hi")]
    fn rejects_inverted_interval() {
        let _ = IntervalV::new(Volts::new(2.0), Volts::new(1.0));
    }

    #[test]
    fn energy_join_selects_extremes_exactly() {
        let a = IntervalJ::new(Joules::new(1.0e-3), Joules::new(2.0e-3));
        let b = IntervalJ::new(Joules::new(1.5e-3), Joules::new(3.0e-3));
        let j = a.join(b);
        assert_eq!(j.lo(), Joules::new(1.0e-3));
        assert_eq!(j.hi(), Joules::new(3.0e-3));
    }

    #[test]
    fn repeat_endpoints_pin_to_nextafter() {
        let e = IntervalJ::new(Joules::new(0.3e-3), Joules::new(0.7e-3));
        let r = e.repeat(2, 5);
        assert_eq!(r.lo().get(), (0.3e-3f64 * 2.0).next_down());
        assert_eq!(r.hi().get(), (0.7e-3f64 * 5.0).next_up());
        // A zero-iteration floor collapses the cheap path to nothing.
        assert_eq!(e.repeat(0, 3).lo(), Joules::ZERO);
    }

    #[test]
    #[should_panic(expected = "lo_n ≤ hi_n")]
    fn repeat_rejects_inverted_bounds() {
        let _ = IntervalJ::point(Joules::new(1.0e-3)).repeat(3, 1);
    }

    #[test]
    fn display_renders_both_endpoints() {
        let v = IntervalV::new(Volts::new(1.6), Volts::new(2.56));
        let s = v.to_string();
        assert!(s.starts_with('[') && s.contains(", "), "{s}");
        let e = IntervalJ::point(Joules::new(1.0e-3));
        assert!(e.to_string().contains(", "));
    }
}

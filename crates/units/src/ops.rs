//! Cross-quantity arithmetic: only the physically meaningful products and
//! quotients are defined, so dimensional errors fail to compile.

use crate::{Amps, Farads, Hertz, Joules, Ohms, Seconds, Volts, Watts};

macro_rules! relate {
    // $a * $b = $c  (and the symmetric + division forms)
    ($a:ty, $b:ty, $c:ty) => {
        impl core::ops::Mul<$b> for $a {
            type Output = $c;
            fn mul(self, rhs: $b) -> $c {
                <$c>::new(self.get() * rhs.get())
            }
        }

        impl core::ops::Mul<$a> for $b {
            type Output = $c;
            fn mul(self, rhs: $a) -> $c {
                <$c>::new(self.get() * rhs.get())
            }
        }

        impl core::ops::Div<$a> for $c {
            type Output = $b;
            fn div(self, rhs: $a) -> $b {
                <$b>::new(self.get() / rhs.get())
            }
        }

        impl core::ops::Div<$b> for $c {
            type Output = $a;
            fn div(self, rhs: $b) -> $a {
                <$a>::new(self.get() / rhs.get())
            }
        }
    };
}

// Ohm's law: V = I·R.
relate!(Amps, Ohms, Volts);
// Electrical power: P = V·I.
relate!(Volts, Amps, Watts);
// Energy: E = P·t.
relate!(Watts, Seconds, Joules);
// Charge-ish relation used by I = C·dV/dt: C·V has units A·s, and we only
// ever divide it by seconds, so expose (Farads × Volts) ÷ Seconds = Amps via
// an inherent helper instead of a lossy intermediate "Coulombs" type.

impl Farads {
    /// Current required to change this capacitance by `dv` in `dt`
    /// (`I = C · dV/dt`).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero or negative.
    #[must_use]
    pub fn current_for_slew(self, dv: Volts, dt: Seconds) -> Amps {
        assert!(dt.get() > 0.0, "dt must be positive");
        Amps::new(self.get() * dv.get() / dt.get())
    }

    /// Voltage change produced by drawing `i` for `dt` (`ΔV = I·dt / C`).
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is zero or negative.
    #[must_use]
    pub fn slew_for_current(self, i: Amps, dt: Seconds) -> Volts {
        assert!(self.get() > 0.0, "capacitance must be positive");
        Volts::new(i.get() * dt.get() / self.get())
    }

    /// Energy stored at voltage `v`: `E = ½·C·V²`.
    #[must_use]
    pub fn stored_energy(self, v: Volts) -> Joules {
        Joules::new(0.5 * self.get() * v.squared())
    }

    /// Energy released when discharging from `from` down to `to`:
    /// `E = ½·C·(V₀² − V₁²)`. Negative if `to > from` (charging).
    #[must_use]
    pub fn energy_between(self, from: Volts, to: Volts) -> Joules {
        Joules::new(0.5 * self.get() * (from.squared() - to.squared()))
    }

    /// Voltage the capacitor will sit at when holding `e` joules.
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is zero or negative, or `e` is negative.
    #[must_use]
    pub fn voltage_for_energy(self, e: Joules) -> Volts {
        assert!(self.get() > 0.0, "capacitance must be positive");
        assert!(e.get() >= 0.0, "stored energy cannot be negative");
        Volts::new((2.0 * e.get() / self.get()).sqrt())
    }
}

impl Seconds {
    /// The reciprocal frequency (`f = 1/t`).
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero or negative.
    #[must_use]
    pub fn frequency(self) -> Hertz {
        assert!(self.get() > 0.0, "period must be positive");
        Hertz::new(1.0 / self.get())
    }
}

impl Hertz {
    /// The reciprocal period (`t = 1/f`).
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[must_use]
    pub fn period(self) -> Seconds {
        assert!(self.get() > 0.0, "frequency must be positive");
        Seconds::new(1.0 / self.get())
    }
}

impl Joules {
    /// Average power delivering this energy over `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero or negative.
    #[must_use]
    pub fn over(self, dt: Seconds) -> Watts {
        assert!(dt.get() > 0.0, "dt must be positive");
        Watts::new(self.get() / dt.get())
    }
}

impl Watts {
    /// Current drawn at potential `v` to deliver this power (`I = P/V`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is zero or negative.
    #[must_use]
    pub fn current_at(self, v: Volts) -> Amps {
        assert!(v.get() > 0.0, "voltage must be positive to draw power");
        Amps::new(self.get() / v.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_both_orders() {
        let v1: Volts = Amps::from_milli(50.0) * Ohms::new(10.0);
        let v2: Volts = Ohms::new(10.0) * Amps::from_milli(50.0);
        assert_eq!(v1, Volts::new(0.5)); // the paper's LoRa example
        assert_eq!(v1, v2);
        let back: Amps = v1 / Ohms::new(10.0);
        assert!(back.approx_eq(Amps::from_milli(50.0), 1e-15));
    }

    #[test]
    fn power_and_energy_chain() {
        let p: Watts = Volts::new(2.5) * Amps::from_milli(10.0);
        assert!((p.get() - 0.025).abs() < 1e-15);
        let e: Joules = p * Seconds::from_milli(100.0);
        assert!((e.get() - 2.5e-3).abs() < 1e-15);
        let p_back: Watts = e / Seconds::from_milli(100.0);
        assert!(p_back.approx_eq(p, 1e-15));
    }

    #[test]
    fn capacitor_energy_accounting() {
        let c = Farads::from_milli(45.0);
        // Fully usable energy of the Capybara bank, 2.5 V → 1.6 V.
        let e = c.energy_between(Volts::new(2.5), Volts::new(1.6));
        assert!((e.get() - 0.5 * 0.045 * (2.5 * 2.5 - 1.6 * 1.6)).abs() < 1e-12);
        // Charging direction is negative.
        assert!(c.energy_between(Volts::new(1.6), Volts::new(2.5)).get() < 0.0);
    }

    #[test]
    fn capacitor_slew_roundtrip() {
        let c = Farads::from_milli(45.0);
        let i = c.current_for_slew(Volts::from_milli(1.0), Seconds::from_milli(1.0));
        let dv = c.slew_for_current(i, Seconds::from_milli(1.0));
        assert!(dv.approx_eq(Volts::from_milli(1.0), 1e-15));
    }

    #[test]
    fn voltage_for_energy_inverts_stored_energy() {
        let c = Farads::from_milli(15.0);
        let v = Volts::new(2.2);
        let e = c.stored_energy(v);
        assert!(c.voltage_for_energy(e).approx_eq(v, 1e-12));
    }

    #[test]
    fn frequency_period_roundtrip() {
        let f = Hertz::new(125_000.0);
        assert!(f.period().frequency().approx_eq(f, 1e-6));
    }

    #[test]
    fn watts_current_at() {
        let i = Watts::new(0.05).current_at(Volts::new(2.0));
        assert!(i.approx_eq(Amps::from_milli(25.0), 1e-15));
    }

    #[test]
    #[should_panic(expected = "voltage must be positive")]
    fn current_at_zero_volts_panics() {
        let _ = Watts::new(1.0).current_at(Volts::ZERO);
    }

    #[test]
    fn joules_over_duration() {
        let w = Joules::new(0.5).over(Seconds::new(2.0));
        assert_eq!(w, Watts::new(0.25));
    }
}

//! The quantity newtypes and the shared [`Quantity`] trait.

/// Common behaviour for every scalar physical quantity in the workspace.
///
/// All quantities are thin `f64` wrappers; this trait gives generic code
/// (interpolation, clamping, trace storage) one surface to program against.
pub trait Quantity:
    Copy + PartialEq + PartialOrd + core::fmt::Debug + core::fmt::Display + Default
{
    /// The SI unit symbol, e.g. `"V"`.
    const SYMBOL: &'static str;

    /// Wraps a raw value expressed in the base SI unit.
    fn new(value: f64) -> Self;

    /// Returns the raw value in the base SI unit.
    fn get(self) -> f64;

    /// Wraps a value given in thousandths of the base unit (mV, mA, ms, …).
    fn from_milli(value: f64) -> Self {
        Self::new(value * 1e-3)
    }

    /// Wraps a value given in millionths of the base unit (µV, µA, µs, …).
    fn from_micro(value: f64) -> Self {
        Self::new(value * 1e-6)
    }

    /// Returns the value expressed in thousandths of the base unit.
    fn to_milli(self) -> f64 {
        self.get() * 1e3
    }

    /// Returns the value expressed in millionths of the base unit.
    fn to_micro(self) -> f64 {
        self.get() * 1e6
    }

    /// Returns the smaller of two quantities (total order assuming no NaN).
    #[must_use]
    fn min(self, other: Self) -> Self {
        Self::new(self.get().min(other.get()))
    }

    /// Returns the larger of two quantities (total order assuming no NaN).
    #[must_use]
    fn max(self, other: Self) -> Self {
        Self::new(self.get().max(other.get()))
    }

    /// Clamps the quantity into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    fn clamp(self, lo: Self, hi: Self) -> Self {
        assert!(lo.get() <= hi.get(), "clamp range inverted");
        Self::new(self.get().clamp(lo.get(), hi.get()))
    }

    /// Returns the absolute value.
    #[must_use]
    fn abs(self) -> Self {
        Self::new(self.get().abs())
    }

    /// True if the value is finite (not NaN or ±∞).
    fn is_finite(self) -> bool {
        self.get().is_finite()
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[must_use]
    fn lerp(self, other: Self, t: f64) -> Self {
        Self::new(self.get() + (other.get() - self.get()) * t)
    }

    /// True if the two quantities differ by no more than `tol` base units.
    fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.get() - other.get()).abs() <= tol
    }
}

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $symbol:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value expressed in the base SI unit.
            ///
            /// With the `strict-finite` feature (enabled by the test and
            /// harness crates), debug builds reject NaN and ±∞ here — at
            /// the construction site — instead of letting them propagate
            /// into a simulation where the first visible symptom is far
            /// from the cause.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                #[cfg(feature = "strict-finite")]
                debug_assert!(value.is_finite(), "non-finite quantity constructed");
                Self(value)
            }

            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw value in the base SI unit.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Wraps a value given in thousandths of the base unit.
            #[must_use]
            pub fn from_milli(value: f64) -> Self {
                Self(value * 1e-3)
            }

            /// Wraps a value given in millionths of the base unit.
            #[must_use]
            pub fn from_micro(value: f64) -> Self {
                Self(value * 1e-6)
            }

            /// Returns the value expressed in thousandths of the base unit.
            #[must_use]
            pub fn to_milli(self) -> f64 {
                self.0 * 1e3
            }

            /// Returns the value expressed in millionths of the base unit.
            #[must_use]
            pub fn to_micro(self) -> f64 {
                self.0 * 1e6
            }

            /// Returns the smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// True if the two values differ by no more than `tol` base units.
            #[must_use]
            pub fn approx_eq(self, other: Self, tol: f64) -> bool {
                (self.0 - other.0).abs() <= tol
            }

            /// True if the value is finite (not NaN or ±∞).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl crate::quantity::Quantity for $name {
            const SYMBOL: &'static str = $symbol;

            fn new(value: f64) -> Self {
                Self::new(value)
            }

            fn get(self) -> f64 {
                self.0
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Dividing like quantities yields a dimensionless ratio.
        impl core::ops::Div<$name> for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    ///
    /// The central quantity of the paper: capacitor terminal voltage, safe
    /// starting voltage `V_safe`, ESR drop `V_δ` are all `Volts`.
    Volts,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// Resistance in ohms — in this workspace, almost always an ESR.
    Ohms,
    "Ω"
);
quantity!(
    /// Capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Temperature in degrees Celsius (capacitor derating models).
    Celsius,
    "°C"
);
quantity!(
    /// A dimensionless percentage, stored as the fraction ×100.
    ///
    /// Used for figure outputs ("V_safe error as % of operating range") and
    /// booster efficiency when reported rather than computed.
    Percent,
    "%"
);

impl Percent {
    /// Converts a fraction in `[0, 1]` to a percentage.
    #[must_use]
    pub fn from_fraction(f: f64) -> Self {
        Self::new(f * 100.0)
    }

    /// Returns the value as a fraction (50 % → 0.5).
    #[must_use]
    pub fn as_fraction(self) -> f64 {
        self.get() / 100.0
    }
}

impl Seconds {
    /// Number of whole+fractional steps of length `dt` in this duration.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    #[must_use]
    pub fn steps(self, dt: Seconds) -> usize {
        assert!(dt.get() > 0.0, "step size must be positive");
        (self.get() / dt.get()).round() as usize
    }
}

impl Volts {
    /// Squared voltage — convenience for the ubiquitous `½CV²` terms.
    #[must_use]
    pub fn squared(self) -> f64 {
        self.get() * self.get()
    }

    /// Square root constructor, inverse of [`Volts::squared`].
    ///
    /// Negative inputs (which arise transiently from subtracting squared
    /// terms near equality) clamp to zero rather than producing NaN.
    #[must_use]
    pub fn from_squared(v_squared: f64) -> Self {
        Self::new(v_squared.max(0.0).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_prefixes() {
        assert!(Volts::from_milli(2500.0).approx_eq(Volts::new(2.5), 1e-12));
        assert!((Amps::from_micro(20.0).get() - 20e-6).abs() < 1e-18);
        assert!((Seconds::new(0.01).to_milli() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn additive_arithmetic() {
        let mut v = Volts::new(2.0);
        v += Volts::new(0.5);
        assert_eq!(v, Volts::new(2.5));
        v -= Volts::new(1.0);
        assert_eq!(v, Volts::new(1.5));
        assert_eq!(-v, Volts::new(-1.5));
    }

    #[test]
    fn scalar_scaling_is_commutative() {
        assert_eq!(Volts::new(2.0) * 3.0, 3.0 * Volts::new(2.0));
        assert_eq!((Volts::new(3.0) / 2.0).get(), 1.5);
    }

    #[test]
    fn like_division_is_dimensionless() {
        let ratio: f64 = Volts::new(3.0) / Volts::new(2.0);
        assert_eq!(ratio, 1.5);
    }

    #[test]
    fn min_max_clamp() {
        let lo = Volts::new(1.6);
        let hi = Volts::new(2.5);
        assert_eq!(Volts::new(3.0).clamp(lo, hi), hi);
        assert_eq!(Volts::new(1.0).clamp(lo, hi), lo);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    #[should_panic(expected = "clamp range inverted")]
    fn clamp_panics_on_inverted_range() {
        let _ = Volts::new(2.0).clamp(Volts::new(3.0), Volts::new(1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Volts::new(1.0);
        let b = Volts::new(3.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Volts::new(2.0));
    }

    #[test]
    fn percent_fraction_roundtrip() {
        let p = Percent::from_fraction(0.825);
        assert!((p.get() - 82.5).abs() < 1e-12);
        assert!((p.as_fraction() - 0.825).abs() < 1e-12);
    }

    #[test]
    fn seconds_steps() {
        assert_eq!(Seconds::new(1.0).steps(Seconds::from_micro(8.0)), 125_000);
        assert_eq!(
            Seconds::from_milli(10.0).steps(Seconds::from_milli(1.0)),
            10
        );
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn seconds_steps_rejects_zero_dt() {
        let _ = Seconds::new(1.0).steps(Seconds::ZERO);
    }

    #[test]
    fn volts_squared_roundtrip() {
        let v = Volts::new(2.4);
        assert!(Volts::from_squared(v.squared()).approx_eq(v, 1e-12));
        // Negative squared values clamp to zero instead of NaN.
        assert_eq!(Volts::from_squared(-1e-9), Volts::ZERO);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Joules = (1..=4).map(|i| Joules::new(f64::from(i))).sum();
        assert_eq!(total, Joules::new(10.0));
    }
}

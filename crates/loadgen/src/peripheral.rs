//! Load models for the real peripherals in the paper's evaluation.
//!
//! The paper captures current traces from the hardware on and around the
//! Capybara platform (Table III bottom rows and §VI-B). We reconstruct each
//! as a parameterised analytic profile matching the published envelope —
//! peak current, pulse width, and qualitative shape — which is what `V_safe`
//! actually depends on. Defaults reproduce the paper's numbers; every
//! parameter is adjustable for sensitivity studies.

use culpeo_units::{Amps, Seconds};

use crate::LoadProfile;

fn ma(v: f64) -> Amps {
    Amps::from_milli(v)
}

fn ms(v: f64) -> Seconds {
    Seconds::from_milli(v)
}

/// APDS-9960 gesture-recognition sensor: a short, intense burst
/// (`I_max = 25 mA`, `t_pulse = 3.5 ms` in Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GestureSensor {
    /// Peak LED-drive current.
    pub peak: Amps,
    /// Total active window.
    pub width: Seconds,
}

impl Default for GestureSensor {
    fn default() -> Self {
        Self {
            peak: ma(25.0),
            width: ms(3.5),
        }
    }
}

impl GestureSensor {
    /// The gesture engine's load profile: LED ramp-up, a sustained
    /// measurement window at peak drive, and ramp-down.
    ///
    /// The sensor internally strobes its LEDs at sub-millisecond periods,
    /// but those fast transients are served by the local decoupling
    /// capacitors (§II-D); the sustained envelope modelled here is what
    /// the supercapacitor rail actually sees.
    #[must_use]
    pub fn profile(&self) -> LoadProfile {
        let ramp = Seconds::new(self.width.get() * 0.1);
        let body = Seconds::new(self.width.get() * 0.8);
        LoadProfile::builder("gesture")
            .ramp(ma(0.2), self.peak, ramp)
            .hold(self.peak, body)
            .ramp(self.peak, ma(0.2), ramp)
            .build()
    }
}

/// CC2650 BLE radio transmit + connection event
/// (`I_max = 13 mA`, `t_pulse = 17 ms` in Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BleRadio {
    /// Peak TX current.
    pub peak: Amps,
    /// Total radio-on window.
    pub width: Seconds,
}

impl Default for BleRadio {
    fn default() -> Self {
        Self {
            peak: ma(13.0),
            width: ms(17.0),
        }
    }
}

impl BleRadio {
    /// The radio event profile: MCU wake + stack setup, three advertising /
    /// TX slots at peak current separated by inter-slot processing, and a
    /// teardown tail. Matches the multi-hump shape of published CC2650
    /// traces with the paper's envelope.
    #[must_use]
    pub fn profile(&self) -> LoadProfile {
        let w = self.width.get();
        LoadProfile::builder("ble-tx")
            .hold(ma(3.0), Seconds::new(w * 0.12)) // wake + stack setup
            .ramp(ma(3.0), ma(6.0), Seconds::new(w * 0.06))
            .burst(
                self.peak,
                ma(5.0),
                Seconds::new(w * 0.22),
                0.62,
                Seconds::new(w * 0.66),
            ) // three TX slots
            .ramp(ma(6.0), ma(1.5), Seconds::new(w * 0.08))
            .hold(ma(1.5), Seconds::new(w * 0.08)) // teardown
            .build()
    }

    /// A low-power listen window following a transmission (§VI-A RR/NMR
    /// apps listen for a response): duty-cycled RX at a few mA over a long
    /// window.
    #[must_use]
    pub fn listen_profile(&self, window: Seconds) -> LoadProfile {
        LoadProfile::builder("ble-listen")
            .burst(ma(5.5), ma(0.8), ms(25.0), 0.12, window)
            .build()
    }
}

/// Cortex-M4 compute accelerator running MNIST digit recognition
/// (`I = 5 mA`, `t = 1.1 s` in Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MnistAccelerator {
    /// Sustained inference current.
    pub current: Amps,
    /// Inference latency.
    pub duration: Seconds,
}

impl Default for MnistAccelerator {
    fn default() -> Self {
        Self {
            current: ma(5.0),
            duration: Seconds::new(1.1),
        }
    }
}

impl MnistAccelerator {
    /// The accelerator's load profile: sustained compute with mild
    /// layer-to-layer variation (convolution layers draw slightly more than
    /// dense layers).
    #[must_use]
    pub fn profile(&self) -> LoadProfile {
        let i = self.current;
        let d = self.duration.get();
        LoadProfile::builder("mnist")
            .hold(i * 0.6, Seconds::new(d * 0.05)) // load weights
            .hold(i, Seconds::new(d * 0.45)) // conv layers
            .hold(i * 0.85, Seconds::new(d * 0.30)) // pooling + dense
            .hold(i, Seconds::new(d * 0.15)) // final dense + softmax
            .hold(i * 0.5, Seconds::new(d * 0.05)) // result write-back
            .build()
    }
}

/// SX1276-class LoRa radio: the motivating example of Figure 4
/// (`~50 mA` sustained for on the order of 100 ms per packet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoRaRadio {
    /// TX current.
    pub tx_current: Amps,
    /// Packet airtime.
    pub airtime: Seconds,
}

impl Default for LoRaRadio {
    fn default() -> Self {
        Self {
            tx_current: ma(50.0),
            airtime: ms(100.0),
        }
    }
}

impl LoRaRadio {
    /// The packet-transmit profile: PLL spin-up ramp then sustained TX.
    #[must_use]
    pub fn profile(&self) -> LoadProfile {
        LoadProfile::builder("lora-tx")
            .ramp(ma(2.0), self.tx_current, ms(1.0))
            .hold(self.tx_current, self.airtime)
            .ramp(self.tx_current, ma(0.5), ms(0.5))
            .build()
    }
}

/// LSM6DS3 IMU sample batch (the PS and RR applications read 32 samples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuRead {
    /// Number of accelerometer+gyro samples read.
    pub samples: u32,
    /// Output data rate of the IMU.
    pub sample_rate_hz: f64,
    /// Active rail current while the batch is read: IMU in
    /// high-performance mode plus the awake MCU and SPI traffic.
    pub active_current: Amps,
}

impl Default for ImuRead {
    fn default() -> Self {
        Self {
            samples: 32,
            sample_rate_hz: 416.0, // a standard LSM6DS3 ODR
            active_current: ma(5.0),
        }
    }
}

impl ImuRead {
    /// The batch-read profile: sensor power-up, sampling window whose length
    /// follows from `samples / rate`, bus readout, and a low-power
    /// average-and-store tail (the application computes statistics over
    /// the batch before sleeping). The tail matters for charge managers:
    /// by its end, the sampling window's ESR drop has rebounded, so an
    /// end-of-task voltage measurement misses it entirely.
    #[must_use]
    pub fn profile(&self) -> LoadProfile {
        let window = Seconds::new(f64::from(self.samples) / self.sample_rate_hz);
        LoadProfile::builder("imu-read")
            .ramp(ma(0.3), self.active_current, ms(1.0))
            .hold(self.active_current, window)
            .hold(ma(2.0), ms(2.0)) // SPI readout burst
            .hold(ma(0.5), ms(30.0)) // average + store
            .build()
    }
}

/// SPU0414 analog microphone batch capture (NMR reads 256 samples at
/// 12 kHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicrophoneRead {
    /// Number of audio samples captured.
    pub samples: u32,
    /// ADC sampling rate.
    pub sample_rate_hz: f64,
    /// Microphone + ADC active current.
    pub active_current: Amps,
}

impl Default for MicrophoneRead {
    fn default() -> Self {
        Self {
            samples: 256,
            sample_rate_hz: 12_000.0,
            active_current: ma(2.4),
        }
    }
}

impl MicrophoneRead {
    /// The capture profile: amplifier settle then a sampling window of
    /// `samples / rate` seconds (21.3 ms at the defaults).
    #[must_use]
    pub fn profile(&self) -> LoadProfile {
        let window = Seconds::new(f64::from(self.samples) / self.sample_rate_hz);
        LoadProfile::builder("mic-read")
            .ramp(ma(0.2), self.active_current, ms(0.5))
            .hold(self.active_current, window)
            .build()
    }
}

/// Software AES encryption of a sample buffer on the MCU (the RR app
/// encrypts the IMU batch before transmission).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AesEncrypt {
    /// Buffer size in bytes.
    pub bytes: u32,
    /// MCU active current while encrypting.
    pub active_current: Amps,
    /// Encryption throughput in bytes per second.
    pub throughput_bps: f64,
}

impl Default for AesEncrypt {
    fn default() -> Self {
        Self {
            bytes: 384, // 32 IMU samples × 12 bytes
            active_current: ma(2.2),
            throughput_bps: 20_000.0, // software AES on an MSP430-class MCU
        }
    }
}

impl AesEncrypt {
    /// The encryption profile: sustained MCU-active current for
    /// `bytes / throughput` seconds.
    #[must_use]
    pub fn profile(&self) -> LoadProfile {
        let duration = Seconds::new(f64::from(self.bytes) / self.throughput_bps);
        LoadProfile::constant("aes-encrypt", self.active_current, duration)
    }
}

/// Fixed-point FFT over a microphone buffer (NMR's background task).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FftCompute {
    /// Transform size (power of two).
    pub points: u32,
    /// MCU active current while computing.
    pub active_current: Amps,
    /// Butterfly throughput in butterflies per second.
    pub butterflies_per_sec: f64,
}

impl Default for FftCompute {
    fn default() -> Self {
        Self {
            points: 256,
            active_current: ma(2.0),
            butterflies_per_sec: 250_000.0,
        }
    }
}

impl FftCompute {
    /// The compute profile; duration follows `(N/2)·log₂N` butterflies.
    ///
    /// # Panics
    ///
    /// Panics if `points` is not a power of two ≥ 2.
    #[must_use]
    pub fn profile(&self) -> LoadProfile {
        assert!(
            self.points.is_power_of_two() && self.points >= 2,
            "FFT size must be a power of two ≥ 2"
        );
        let n = f64::from(self.points);
        let butterflies = (n / 2.0) * n.log2();
        let duration = Seconds::new(butterflies / self.butterflies_per_sec);
        LoadProfile::constant("fft", self.active_current, duration)
    }
}

/// Photoresistor light-level read (the PS and RR background task).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhotoresistorRead {
    /// Divider + ADC current during the read.
    pub active_current: Amps,
    /// Read duration.
    pub duration: Seconds,
}

impl Default for PhotoresistorRead {
    fn default() -> Self {
        Self {
            active_current: ma(0.8),
            duration: ms(2.0),
        }
    }
}

impl PhotoresistorRead {
    /// The read profile: one short constant-current sample.
    #[must_use]
    pub fn profile(&self) -> LoadProfile {
        LoadProfile::constant("photoresistor", self.active_current, self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gesture_matches_table_iii_envelope() {
        let p = GestureSensor::default().profile();
        assert!(p.peak().approx_eq(ma(25.0), 1e-9));
        assert!(p.duration().approx_eq(ms(3.5), 1e-9));
    }

    #[test]
    fn ble_matches_table_iii_envelope() {
        let p = BleRadio::default().profile();
        assert!(p.peak().approx_eq(ma(13.0), 1e-9));
        assert!(p.duration().approx_eq(ms(17.0), 1e-6));
    }

    #[test]
    fn mnist_matches_table_iii_envelope() {
        let p = MnistAccelerator::default().profile();
        assert!(p.peak().approx_eq(ma(5.0), 1e-9));
        assert!(p.duration().approx_eq(Seconds::new(1.1), 1e-9));
    }

    #[test]
    fn lora_matches_figure4_envelope() {
        let p = LoRaRadio::default().profile();
        assert!(p.peak().approx_eq(ma(50.0), 1e-9));
        assert!(p.duration().get() > 0.100 && p.duration().get() < 0.105);
    }

    #[test]
    fn imu_window_follows_sample_count() {
        let p = ImuRead::default().profile();
        // 32 samples at 416 Hz ≈ 77 ms plus power-up, readout, and the
        // 30 ms average-and-store tail.
        assert!(p.duration().get() > 0.105 && p.duration().get() < 0.115);
    }

    #[test]
    fn microphone_window_is_256_over_12k() {
        let p = MicrophoneRead::default().profile();
        let expected = 256.0 / 12_000.0;
        assert!((p.duration().get() - (expected + 0.0005)).abs() < 1e-6);
    }

    #[test]
    fn fft_duration_scales_nlogn() {
        let small = FftCompute {
            points: 64,
            ..FftCompute::default()
        }
        .profile();
        let big = FftCompute::default().profile();
        assert!(big.duration().get() > small.duration().get() * 3.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let _ = FftCompute {
            points: 100,
            ..FftCompute::default()
        }
        .profile();
    }

    #[test]
    fn listen_profile_is_low_duty() {
        let p = BleRadio::default().listen_profile(Seconds::new(2.0));
        assert!(p.duration().approx_eq(Seconds::new(2.0), 1e-9));
        // Mean well below peak: duty-cycled listening.
        assert!(p.mean().get() < p.peak().get() * 0.4);
    }

    #[test]
    fn all_profiles_are_nonnegative_and_finite() {
        let profiles = [
            GestureSensor::default().profile(),
            BleRadio::default().profile(),
            BleRadio::default().listen_profile(Seconds::new(2.0)),
            MnistAccelerator::default().profile(),
            LoRaRadio::default().profile(),
            ImuRead::default().profile(),
            MicrophoneRead::default().profile(),
            AesEncrypt::default().profile(),
            FftCompute::default().profile(),
            PhotoresistorRead::default().profile(),
        ];
        for p in &profiles {
            let trace = p.sample(culpeo_units::Hertz::new(50_000.0));
            for &s in trace.samples() {
                assert!(s.get() >= 0.0 && s.is_finite(), "{}", p.label());
            }
        }
    }
}

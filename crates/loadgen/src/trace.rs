//! Uniformly sampled current traces — the representation Culpeo-PG ingests.

use culpeo_units::{Amps, Hertz, Joules, Seconds, Volts};

/// A current waveform sampled at a fixed interval.
///
/// This mirrors what the paper's measurement harness (an STM32 power shield
/// sampling at 125 kHz) hands to Culpeo-PG: a label, a sample period, and the
/// instantaneous current at each sample.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentTrace {
    label: String,
    dt: Seconds,
    samples: Vec<Amps>,
}

impl CurrentTrace {
    /// Creates a trace from raw samples taken every `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    #[must_use]
    pub fn new(label: impl Into<String>, dt: Seconds, samples: Vec<Amps>) -> Self {
        assert!(dt.get() > 0.0, "sample period must be positive");
        Self {
            label: label.into(),
            dt,
            samples,
        }
    }

    /// The trace label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The sample period.
    #[must_use]
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// The sample rate.
    #[must_use]
    pub fn rate(&self) -> Hertz {
        self.dt.frequency()
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the trace holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total covered duration (`len × dt`).
    #[must_use]
    pub fn duration(&self) -> Seconds {
        Seconds::new(self.samples.len() as f64 * self.dt.get())
    }

    /// Borrows the raw samples.
    #[must_use]
    pub fn samples(&self) -> &[Amps] {
        &self.samples
    }

    /// Iterates `(timestamp, current)` pairs; timestamps are the left edge
    /// of each sampling interval.
    pub fn iter(&self) -> impl Iterator<Item = (Seconds, Amps)> + '_ {
        let dt = self.dt.get();
        self.samples
            .iter()
            .enumerate()
            .map(move |(k, &i)| (Seconds::new(k as f64 * dt), i))
    }

    /// The maximum sampled current (zero for an empty trace).
    #[must_use]
    pub fn peak(&self) -> Amps {
        self.samples.iter().copied().fold(Amps::ZERO, Amps::max)
    }

    /// Mean current over the trace (zero for an empty trace).
    #[must_use]
    pub fn mean(&self) -> Amps {
        if self.samples.is_empty() {
            return Amps::ZERO;
        }
        let sum: f64 = self.samples.iter().map(|i| i.get()).sum();
        Amps::new(sum / self.samples.len() as f64)
    }

    /// Total charge (coulombs) as a left-Riemann sum.
    #[must_use]
    pub fn charge(&self) -> f64 {
        self.samples.iter().map(|i| i.get()).sum::<f64>() * self.dt.get()
    }

    /// Energy delivered at the regulated output voltage `v_out`
    /// (`E = ΣI·V·dt`).
    #[must_use]
    pub fn output_energy(&self, v_out: Volts) -> Joules {
        Joules::new(self.charge() * v_out.get())
    }

    /// The width of the largest current pulse, excluding high-frequency
    /// noise — the statistic Culpeo-PG uses to pick a representative ESR
    /// value from the power system's ESR-vs-frequency curve (§IV-B).
    ///
    /// "Pulse" means a maximal run of samples at or above a quarter of the
    /// (noise-filtered) peak — low enough that a duty-cycled radio's whole
    /// on-window counts as one pulse (its ESR operating point is set by
    /// the envelope, not the slot rate), but high enough that a low-power
    /// compute tail does not. A short median filter removes single-sample
    /// spikes first, so an instrumentation glitch cannot masquerade as the
    /// dominant load.
    ///
    /// Returns `None` for an empty or all-zero trace.
    #[must_use]
    pub fn dominant_pulse_width(&self) -> Option<Seconds> {
        if self.samples.is_empty() {
            return None;
        }
        let filtered = median3(&self.samples);
        let peak = filtered.iter().copied().fold(Amps::ZERO, Amps::max);
        if peak.get() <= 0.0 {
            return None;
        }
        let threshold = peak.get() * 0.25;
        let mut best = 0usize;
        let mut run = 0usize;
        for &s in &filtered {
            if s.get() >= threshold {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        (best > 0).then(|| Seconds::new(best as f64 * self.dt.get()))
    }

    /// The frequency corresponding to [`dominant_pulse_width`]
    /// (`f = 1 / width`), or `None` when no pulse exists.
    ///
    /// [`dominant_pulse_width`]: CurrentTrace::dominant_pulse_width
    #[must_use]
    pub fn dominant_frequency(&self) -> Option<Hertz> {
        self.dominant_pulse_width().map(Seconds::frequency)
    }

    /// Resamples to a new rate by zero-order hold (the value in effect at
    /// each new sample instant).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    #[must_use]
    pub fn resample(&self, rate: Hertz) -> CurrentTrace {
        let new_dt = rate.period();
        let n = (self.duration().get() / new_dt.get()).ceil().max(0.0) as usize;
        let samples = (0..n)
            .map(|k| {
                let t = k as f64 * new_dt.get();
                let idx = ((t / self.dt.get()).floor() as usize).min(self.samples.len() - 1);
                self.samples[idx]
            })
            .collect();
        CurrentTrace::new(self.label.clone(), new_dt, samples)
    }

    /// Extracts the sub-trace covering `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or the window extends beyond the trace.
    #[must_use]
    pub fn window(&self, from: Seconds, to: Seconds) -> CurrentTrace {
        assert!(from.get() <= to.get(), "window is inverted");
        assert!(
            to.get() <= self.duration().get() + self.dt.get() * 0.5,
            "window extends beyond trace"
        );
        let a = (from.get() / self.dt.get()).round() as usize;
        let b = ((to.get() / self.dt.get()).round() as usize).min(self.samples.len());
        CurrentTrace::new(self.label.clone(), self.dt, self.samples[a..b].to_vec())
    }

    /// Returns a copy with a width-3 median filter applied — the §II-D
    /// denoising step: single-sample instrumentation glitches and
    /// sub-resolution transients (which the board's decoupling capacitors
    /// serve, not the energy buffer) are removed, while real pulse edges
    /// move by at most one sample.
    #[must_use]
    pub fn median_filtered(&self) -> CurrentTrace {
        CurrentTrace::new(self.label.clone(), self.dt, median3(&self.samples))
    }

    /// Appends another trace (must share the same sample period).
    ///
    /// # Panics
    ///
    /// Panics if sample periods differ by more than 1 ppm.
    #[must_use]
    pub fn concat(&self, other: &CurrentTrace) -> CurrentTrace {
        assert!(
            (self.dt.get() - other.dt.get()).abs() <= self.dt.get() * 1e-6,
            "cannot concatenate traces with different sample periods"
        );
        let mut samples = self.samples.clone();
        samples.extend_from_slice(&other.samples);
        CurrentTrace::new(format!("{}+{}", self.label, other.label), self.dt, samples)
    }
}

/// Width-3 median filter with edge passthrough — enough to remove
/// single-sample instrumentation spikes without smearing real pulse edges.
fn median3(samples: &[Amps]) -> Vec<Amps> {
    if samples.len() < 3 {
        return samples.to_vec();
    }
    let mut out = Vec::with_capacity(samples.len());
    out.push(samples[0]);
    for w in samples.windows(3) {
        let (a, b, c) = (w[0].get(), w[1].get(), w[2].get());
        let med = a.max(b).min(a.max(c)).min(b.max(c));
        out.push(Amps::new(med));
    }
    out.push(samples[samples.len() - 1]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoadProfile;

    fn ma(v: f64) -> Amps {
        Amps::from_milli(v)
    }

    fn ms(v: f64) -> Seconds {
        Seconds::from_milli(v)
    }

    fn pulse_trace() -> CurrentTrace {
        // 10 ms @ 25 mA then 100 ms @ 1.5 mA, sampled at 1 kHz.
        LoadProfile::builder("p")
            .hold(ma(25.0), ms(10.0))
            .hold(ma(1.5), ms(100.0))
            .build()
            .sample(Hertz::new(1000.0))
    }

    #[test]
    fn stats() {
        let t = pulse_trace();
        assert_eq!(t.len(), 110);
        assert_eq!(t.peak(), ma(25.0));
        assert!((t.charge() - (0.025 * 0.010 + 0.0015 * 0.100)).abs() < 1e-9);
        assert!(t.duration().approx_eq(ms(110.0), 1e-9));
        assert!(!t.is_empty());
    }

    #[test]
    fn dominant_pulse_width_finds_the_pulse() {
        let t = pulse_trace();
        // The 25 mA pulse is 10 ms wide; threshold is 12.5 mA so the 1.5 mA
        // tail does not count.
        let w = t.dominant_pulse_width().unwrap();
        assert!(w.approx_eq(ms(10.0), 1.5e-3), "width = {w}");
        let f = t.dominant_frequency().unwrap();
        assert!((f.get() - 100.0).abs() < 20.0);
    }

    #[test]
    fn dominant_pulse_ignores_single_sample_spikes() {
        // Constant 1 mA with one 50 mA glitch sample: the glitch must not
        // become the dominant pulse.
        let mut samples = vec![ma(1.0); 100];
        samples[50] = ma(50.0);
        let t = CurrentTrace::new("glitch", ms(1.0), samples);
        let w = t.dominant_pulse_width().unwrap();
        // After filtering, the peak is 1 mA and the whole trace is "pulse".
        assert!(w.approx_eq(ms(100.0), 1e-9), "width = {w}");
    }

    #[test]
    fn dominant_pulse_none_for_silent_trace() {
        let t = CurrentTrace::new("zeros", ms(1.0), vec![Amps::ZERO; 10]);
        assert!(t.dominant_pulse_width().is_none());
        let e = CurrentTrace::new("empty", ms(1.0), vec![]);
        assert!(e.dominant_pulse_width().is_none());
    }

    #[test]
    fn resample_preserves_charge_roughly() {
        let t = pulse_trace();
        let r = t.resample(Hertz::new(10_000.0));
        assert!((r.charge() - t.charge()).abs() < t.charge() * 0.01);
        assert_eq!(r.peak(), t.peak());
    }

    #[test]
    fn window_extracts_range() {
        let t = pulse_trace();
        let w = t.window(Seconds::ZERO, ms(10.0));
        assert_eq!(w.len(), 10);
        assert_eq!(w.peak(), ma(25.0));
        assert!(w.mean().approx_eq(ma(25.0), 1e-12));
    }

    #[test]
    #[should_panic(expected = "window is inverted")]
    fn window_rejects_inverted_range() {
        let _ = pulse_trace().window(ms(10.0), ms(5.0));
    }

    #[test]
    fn concat_joins_traces() {
        let t = pulse_trace();
        let j = t.concat(&t);
        assert_eq!(j.len(), 2 * t.len());
        assert!((j.charge() - 2.0 * t.charge()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different sample periods")]
    fn concat_rejects_mismatched_rates() {
        let t = pulse_trace();
        let other = t.resample(Hertz::new(2000.0));
        let _ = t.concat(&other);
    }

    #[test]
    fn output_energy() {
        let t = pulse_trace();
        let e = t.output_energy(Volts::new(2.55));
        assert!((e.get() - t.charge() * 2.55).abs() < 1e-12);
    }

    #[test]
    fn iter_timestamps() {
        let t = pulse_trace();
        let (ts, i) = t.iter().nth(3).unwrap();
        assert!(ts.approx_eq(ms(3.0), 1e-12));
        assert_eq!(i, ma(25.0));
    }

    #[test]
    fn median3_short_inputs_pass_through() {
        let s = vec![ma(1.0), ma(2.0)];
        assert_eq!(median3(&s), s);
    }
}

//! The piecewise building blocks of a [`LoadProfile`](crate::LoadProfile).

use culpeo_units::{Amps, Seconds};

/// One piece of a piecewise load description.
///
/// Durations are always strictly positive; the constructors on
/// [`LoadProfileBuilder`](crate::LoadProfileBuilder) enforce this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Segment {
    /// Constant current for a duration.
    Constant {
        /// Current drawn throughout the segment.
        current: Amps,
        /// Segment length.
        duration: Seconds,
    },
    /// Linear ramp from one current to another.
    Ramp {
        /// Current at the start of the segment.
        from: Amps,
        /// Current at the end of the segment.
        to: Amps,
        /// Segment length.
        duration: Seconds,
    },
    /// A repeating rectangular burst: `peak` for `duty·period`, then `base`
    /// for the remainder, repeated for `duration`. Models radios that
    /// transmit in slots and sensors with internal duty cycling.
    Burst {
        /// Current during the active part of each period.
        peak: Amps,
        /// Current during the idle part of each period.
        base: Amps,
        /// Length of one on/off cycle.
        period: Seconds,
        /// Fraction of each period spent at `peak`, in `(0, 1]`.
        duty: f64,
        /// Total segment length.
        duration: Seconds,
    },
}

impl Segment {
    /// The length of this segment.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        match *self {
            Segment::Constant { duration, .. }
            | Segment::Ramp { duration, .. }
            | Segment::Burst { duration, .. } => duration,
        }
    }

    /// Current at offset `t` into the segment (`0 ≤ t ≤ duration`).
    ///
    /// Out-of-range offsets clamp to the nearest endpoint, so callers never
    /// observe discontinuities from floating-point edge effects.
    #[must_use]
    pub fn current_at(&self, t: Seconds) -> Amps {
        let d = self.duration().get();
        let t = t.get().clamp(0.0, d);
        match *self {
            Segment::Constant { current, .. } => current,
            Segment::Ramp { from, to, .. } => {
                let frac = if d > 0.0 { t / d } else { 1.0 };
                Amps::new(from.get() + (to.get() - from.get()) * frac)
            }
            Segment::Burst {
                peak,
                base,
                period,
                duty,
                ..
            } => {
                let phase = (t / period.get()).fract();
                if phase < duty {
                    peak
                } else {
                    base
                }
            }
        }
    }

    /// The maximum current anywhere in the segment.
    #[must_use]
    pub fn peak(&self) -> Amps {
        match *self {
            Segment::Constant { current, .. } => current,
            Segment::Ramp { from, to, .. } => from.max(to),
            Segment::Burst { peak, base, .. } => peak.max(base),
        }
    }

    /// Exact charge (ampere-seconds) delivered over the whole segment.
    #[must_use]
    pub fn charge(&self) -> f64 {
        match *self {
            Segment::Constant { current, duration } => current.get() * duration.get(),
            Segment::Ramp { from, to, duration } => 0.5 * (from.get() + to.get()) * duration.get(),
            Segment::Burst {
                peak,
                base,
                period,
                duty,
                duration,
            } => {
                // Whole periods contribute exactly; the trailing partial
                // period contributes its clipped on/off portions.
                let d = duration.get();
                let p = period.get();
                let full = (d / p).floor();
                let per_period = (peak.get() * duty + base.get() * (1.0 - duty)) * p;
                let rem = d - full * p;
                let on = rem.min(duty * p);
                let off = (rem - on).max(0.0);
                full * per_period + peak.get() * on + base.get() * off
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(v: f64) -> Amps {
        Amps::from_milli(v)
    }

    fn ms(v: f64) -> Seconds {
        Seconds::from_milli(v)
    }

    #[test]
    fn constant_segment() {
        let s = Segment::Constant {
            current: ma(25.0),
            duration: ms(10.0),
        };
        assert_eq!(s.current_at(ms(5.0)), ma(25.0));
        assert_eq!(s.peak(), ma(25.0));
        assert!((s.charge() - 0.025 * 0.010).abs() < 1e-15);
    }

    #[test]
    fn ramp_segment_interpolates() {
        let s = Segment::Ramp {
            from: Amps::ZERO,
            to: ma(10.0),
            duration: ms(2.0),
        };
        assert!(s.current_at(ms(1.0)).approx_eq(ma(5.0), 1e-12));
        assert_eq!(s.current_at(Seconds::ZERO), Amps::ZERO);
        assert_eq!(s.current_at(ms(2.0)), ma(10.0));
        // Triangle area.
        assert!((s.charge() - 0.5 * 0.010 * 0.002).abs() < 1e-15);
    }

    #[test]
    fn ramp_clamps_out_of_range() {
        let s = Segment::Ramp {
            from: ma(1.0),
            to: ma(3.0),
            duration: ms(1.0),
        };
        assert_eq!(s.current_at(ms(-5.0)), ma(1.0));
        assert_eq!(s.current_at(ms(99.0)), ma(3.0));
    }

    #[test]
    fn burst_segment_alternates() {
        let s = Segment::Burst {
            peak: ma(13.0),
            base: ma(4.0),
            period: ms(2.0),
            duty: 0.5,
            duration: ms(10.0),
        };
        assert_eq!(s.current_at(ms(0.5)), ma(13.0)); // on phase
        assert_eq!(s.current_at(ms(1.5)), ma(4.0)); // off phase
        assert_eq!(s.current_at(ms(2.5)), ma(13.0)); // next period
        assert_eq!(s.peak(), ma(13.0));
    }

    #[test]
    fn burst_charge_with_partial_period() {
        let s = Segment::Burst {
            peak: ma(10.0),
            base: Amps::ZERO,
            period: ms(2.0),
            duty: 0.5,
            duration: ms(5.0), // 2 full periods + half a period (all "on")
        };
        // Full periods: 2 × (10 mA × 1 ms) = 20 µC; remainder 1 ms on = 10 µC.
        assert!((s.charge() - 30e-6).abs() < 1e-12);
    }

    #[test]
    fn burst_full_duty_is_constant() {
        let s = Segment::Burst {
            peak: ma(7.0),
            base: ma(1.0),
            period: ms(1.0),
            duty: 1.0,
            duration: ms(4.0),
        };
        let c = Segment::Constant {
            current: ma(7.0),
            duration: ms(4.0),
        };
        assert!((s.charge() - c.charge()).abs() < 1e-12);
    }
}

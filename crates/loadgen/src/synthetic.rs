//! The synthetic Uniform and Pulse loads of Table III.
//!
//! The paper validates `V_safe` against resistor-transistor loads tuned to
//! sink specific currents under two shapes:
//!
//! * **Uniform** — `I_load` held for `t_pulse`;
//! * **Pulse** — `I_load` for `t_pulse`, then 100 ms at `I_compute = 1.5 mA`
//!   ("peripheral activation followed by low-power computing").
//!
//! Figures 6 and 10 sweep `I_load ∈ {5, 10, 25, 50} mA` and
//! `t_pulse ∈ {1, 10, 100} ms`.

use culpeo_units::{Amps, Seconds};

use crate::LoadProfile;

/// The load currents swept by Table III, in milliamps.
pub const TABLE_III_CURRENTS_MA: [f64; 4] = [5.0, 10.0, 25.0, 50.0];

/// The pulse widths swept by Table III, in milliseconds.
pub const TABLE_III_WIDTHS_MS: [f64; 3] = [1.0, 10.0, 100.0];

/// Duration of the low-power compute tail in the Pulse shape.
pub const COMPUTE_TAIL: Seconds = Seconds::new(0.100);

/// Current of the low-power compute tail in the Pulse shape.
pub const COMPUTE_CURRENT: Amps = Amps::new(1.5e-3);

/// A Uniform load: constant `i_load` for `t_pulse` (Table III, row 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformLoad {
    /// The sunk current.
    pub i_load: Amps,
    /// How long the current is applied.
    pub t_pulse: Seconds,
}

impl UniformLoad {
    /// Creates a uniform load.
    ///
    /// # Panics
    ///
    /// Panics if the current is negative or the width non-positive.
    #[must_use]
    pub fn new(i_load: Amps, t_pulse: Seconds) -> Self {
        assert!(i_load.get() >= 0.0, "load current cannot be negative");
        assert!(t_pulse.get() > 0.0, "pulse width must be positive");
        Self { i_load, t_pulse }
    }

    /// The load's label in figure output, e.g. `"25mA/10ms uniform"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{:.0}mA/{:.0}ms uniform",
            self.i_load.to_milli(),
            self.t_pulse.to_milli()
        )
    }

    /// Renders the load as an analytic profile.
    #[must_use]
    pub fn profile(&self) -> LoadProfile {
        LoadProfile::constant(self.label(), self.i_load, self.t_pulse)
    }
}

/// A Pulse load: `i_load` for `t_pulse`, then the 100 ms / 1.5 mA compute
/// tail (Table III, row 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseLoad {
    /// The pulse current.
    pub i_load: Amps,
    /// The pulse width.
    pub t_pulse: Seconds,
    /// Current of the trailing compute phase.
    pub i_compute: Amps,
    /// Duration of the trailing compute phase.
    pub t_compute: Seconds,
}

impl PulseLoad {
    /// Creates a pulse load with the paper's standard compute tail.
    ///
    /// # Panics
    ///
    /// Panics if the current is negative or the width non-positive.
    #[must_use]
    pub fn new(i_load: Amps, t_pulse: Seconds) -> Self {
        assert!(i_load.get() >= 0.0, "load current cannot be negative");
        assert!(t_pulse.get() > 0.0, "pulse width must be positive");
        Self {
            i_load,
            t_pulse,
            i_compute: COMPUTE_CURRENT,
            t_compute: COMPUTE_TAIL,
        }
    }

    /// The load's label in figure output, e.g. `"50mA/10ms pulse"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{:.0}mA/{:.0}ms pulse",
            self.i_load.to_milli(),
            self.t_pulse.to_milli()
        )
    }

    /// Renders the load as an analytic profile.
    #[must_use]
    pub fn profile(&self) -> LoadProfile {
        LoadProfile::builder(self.label())
            .hold(self.i_load, self.t_pulse)
            .hold(self.i_compute, self.t_compute)
            .build()
    }
}

/// All 12 Uniform loads of Table III (4 currents × 3 widths).
#[must_use]
pub fn table_iii_uniform() -> Vec<UniformLoad> {
    let mut v = Vec::with_capacity(12);
    for &ma in &TABLE_III_CURRENTS_MA {
        for &ms in &TABLE_III_WIDTHS_MS {
            v.push(UniformLoad::new(
                Amps::from_milli(ma),
                Seconds::from_milli(ms),
            ));
        }
    }
    v
}

/// All 12 Pulse loads of Table III (4 currents × 3 widths).
#[must_use]
pub fn table_iii_pulse() -> Vec<PulseLoad> {
    let mut v = Vec::with_capacity(12);
    for &ma in &TABLE_III_CURRENTS_MA {
        for &ms in &TABLE_III_WIDTHS_MS {
            v.push(PulseLoad::new(
                Amps::from_milli(ma),
                Seconds::from_milli(ms),
            ));
        }
    }
    v
}

/// The 9 `(I_load mA, t_pulse ms)` points plotted per shape in Figure 10.
///
/// The paper drops the three points whose pulse energy is too small to
/// matter at a given width (5 mA/1 ms) or whose drop exceeds the operating
/// range at 100 ms (25 and 50 mA/100 ms).
pub const FIG10_POINTS: [(f64, f64); 9] = [
    (5.0, 100.0),
    (10.0, 100.0),
    (5.0, 10.0),
    (10.0, 10.0),
    (25.0, 10.0),
    (50.0, 10.0),
    (10.0, 1.0),
    (25.0, 1.0),
    (50.0, 1.0),
];

/// The 6 `(I_load mA, t_pulse ms)` points plotted per shape in Figure 6
/// (the energy-estimator comparison omits the 1 ms column).
pub const FIG6_POINTS: [(f64, f64); 6] = [
    (5.0, 100.0),
    (10.0, 100.0),
    (5.0, 10.0),
    (10.0, 10.0),
    (25.0, 10.0),
    (50.0, 10.0),
];

/// The Figure 10 workload set: 9 uniform loads then 9 pulse loads, in the
/// paper's plotting order.
#[must_use]
pub fn fig10_loads() -> Vec<LoadProfile> {
    let uniform = FIG10_POINTS
        .iter()
        .map(|&(ma, ms)| UniformLoad::new(Amps::from_milli(ma), Seconds::from_milli(ms)).profile());
    let pulse = FIG10_POINTS
        .iter()
        .map(|&(ma, ms)| PulseLoad::new(Amps::from_milli(ma), Seconds::from_milli(ms)).profile());
    uniform.chain(pulse).collect()
}

/// The Figure 6 workload set: 6 uniform loads then 6 pulse loads.
#[must_use]
pub fn fig6_loads() -> Vec<LoadProfile> {
    let uniform = FIG6_POINTS
        .iter()
        .map(|&(ma, ms)| UniformLoad::new(Amps::from_milli(ma), Seconds::from_milli(ms)).profile());
    let pulse = FIG6_POINTS
        .iter()
        .map(|&(ma, ms)| PulseLoad::new(Amps::from_milli(ma), Seconds::from_milli(ms)).profile());
    uniform.chain(pulse).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_profile_shape() {
        let u = UniformLoad::new(Amps::from_milli(50.0), Seconds::from_milli(10.0));
        let p = u.profile();
        assert_eq!(p.peak(), Amps::from_milli(50.0));
        assert!(p.duration().approx_eq(Seconds::from_milli(10.0), 1e-12));
        assert_eq!(u.label(), "50mA/10ms uniform");
    }

    #[test]
    fn pulse_profile_has_compute_tail() {
        let pl = PulseLoad::new(Amps::from_milli(25.0), Seconds::from_milli(10.0));
        let p = pl.profile();
        assert!(p.duration().approx_eq(Seconds::from_milli(110.0), 1e-12));
        assert_eq!(p.current_at(Seconds::from_milli(50.0)), COMPUTE_CURRENT);
        assert_eq!(pl.label(), "25mA/10ms pulse");
    }

    #[test]
    fn table_iii_grids_are_complete() {
        assert_eq!(table_iii_uniform().len(), 12);
        assert_eq!(table_iii_pulse().len(), 12);
        // Every grid point is distinct.
        let labels: std::collections::HashSet<_> =
            table_iii_uniform().iter().map(UniformLoad::label).collect();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn figure_sets_have_paper_cardinality() {
        assert_eq!(fig10_loads().len(), 18);
        assert_eq!(fig6_loads().len(), 12);
    }

    #[test]
    fn fig6_is_subset_of_fig10() {
        for pt in FIG6_POINTS {
            assert!(FIG10_POINTS.contains(&pt));
        }
    }

    #[test]
    #[should_panic(expected = "pulse width must be positive")]
    fn uniform_rejects_zero_width() {
        let _ = UniformLoad::new(Amps::from_milli(5.0), Seconds::ZERO);
    }
}

//! Import and export of current traces.
//!
//! Real deployments capture traces with external instruments (the paper
//! used an STM32 power shield at 125 kHz) and move them around as CSV.
//! This module reads and writes a small, self-describing CSV dialect so
//! captured traces can flow into Culpeo-PG without custom glue:
//!
//! ```text
//! # culpeo-trace v1
//! # label: ble-tx
//! # dt_us: 8
//! time_s,current_a
//! 0.000000,0.003000
//! 0.000008,0.003100
//! ```
//!
//! The `time_s` column is redundant with `dt_us` and is validated against
//! it on import (instrument exports often carry both; silent disagreement
//! means a corrupted capture).

use culpeo_units::{Amps, Seconds};

use crate::CurrentTrace;

/// Why a trace failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// The input had no samples.
    Empty,
    /// A required header (`dt_us`) was missing or malformed.
    MissingHeader(&'static str),
    /// A data row failed to parse; holds the 1-based line number.
    BadRow(usize),
    /// A timestamp disagreed with `dt_us` by more than half a period;
    /// holds the 1-based line number.
    TimestampMismatch(usize),
    /// A current sample was negative or non-finite; holds the 1-based
    /// line number.
    BadCurrent(usize),
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseTraceError::Empty => write!(f, "trace has no samples"),
            ParseTraceError::MissingHeader(h) => write!(f, "missing or malformed header: {h}"),
            ParseTraceError::BadRow(line) => write!(f, "unparseable row at line {line}"),
            ParseTraceError::TimestampMismatch(line) => {
                write!(f, "timestamp disagrees with dt_us at line {line}")
            }
            ParseTraceError::BadCurrent(line) => {
                write!(f, "negative or non-finite current at line {line}")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// A structurally parsed trace file, before any physical validation.
///
/// This is the input type for diagnostic tooling (`culpeo-analyze`),
/// which must be able to *inspect* non-finite or negative samples and
/// timestamp jitter rather than refuse them at the door the way
/// [`from_csv`] does.
#[derive(Debug, Clone, PartialEq)]
pub struct RawTraceFile {
    /// The `# label:` header, or `"imported"`.
    pub label: String,
    /// The `# dt_us:` header.
    pub dt: Seconds,
    /// Data rows as written: `(line_number, time_s, current_a)`.
    pub rows: Vec<(usize, f64, f64)>,
}

impl RawTraceFile {
    /// The current column alone, in file order.
    #[must_use]
    pub fn currents(&self) -> Vec<f64> {
        self.rows.iter().map(|&(_, _, i)| i).collect()
    }

    /// The timestamp column alone, in file order.
    #[must_use]
    pub fn timestamps(&self) -> Vec<f64> {
        self.rows.iter().map(|&(_, t, _)| t).collect()
    }
}

/// Parses the CSV dialect structurally, deferring physical validation.
///
/// Only structural problems are errors here: a missing/malformed `dt_us`
/// header, rows that fail to parse as two numbers, or an empty body.
/// Non-finite currents, negative currents, and timestamps disagreeing
/// with `dt_us` all come through untouched so diagnostic passes can
/// report them precisely.
///
/// # Errors
///
/// Returns [`ParseTraceError::Empty`], [`ParseTraceError::MissingHeader`],
/// or [`ParseTraceError::BadRow`] describing the first structural problem.
pub fn parse_raw(text: &str) -> Result<RawTraceFile, ParseTraceError> {
    let mut label = "imported".to_string();
    let mut dt: Option<Seconds> = None;
    let mut rows = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(value) = rest.strip_prefix("label:") {
                label = value.trim().to_string();
            } else if let Some(value) = rest.strip_prefix("dt_us:") {
                let us: f64 = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseTraceError::MissingHeader("dt_us"))?;
                if !(us.is_finite() && us > 0.0) {
                    return Err(ParseTraceError::MissingHeader("dt_us"));
                }
                dt = Some(Seconds::from_micro(us));
            }
            continue;
        }
        if line.starts_with("time_s") {
            continue; // column header
        }
        if dt.is_none() {
            return Err(ParseTraceError::MissingHeader("dt_us"));
        }
        let mut cols = line.split(',');
        let (Some(t_txt), Some(i_txt)) = (cols.next(), cols.next()) else {
            return Err(ParseTraceError::BadRow(line_no));
        };
        // `parse::<f64>` accepts the spellings "NaN" and "inf", which is
        // exactly what lets the linter see corrupted captures.
        let t: f64 = t_txt
            .trim()
            .parse()
            .map_err(|_| ParseTraceError::BadRow(line_no))?;
        let i: f64 = i_txt
            .trim()
            .parse()
            .map_err(|_| ParseTraceError::BadRow(line_no))?;
        rows.push((line_no, t, i));
    }

    let dt = dt.ok_or(ParseTraceError::MissingHeader("dt_us"))?;
    if rows.is_empty() {
        return Err(ParseTraceError::Empty);
    }
    Ok(RawTraceFile { label, dt, rows })
}

/// Serialises a trace to the CSV dialect above.
#[must_use]
pub fn to_csv(trace: &CurrentTrace) -> String {
    let mut out = String::with_capacity(32 * trace.len() + 128);
    out.push_str("# culpeo-trace v1\n");
    out.push_str(&format!("# label: {}\n", trace.label()));
    out.push_str(&format!("# dt_us: {}\n", trace.dt().to_micro()));
    out.push_str("time_s,current_a\n");
    for (t, i) in trace.iter() {
        out.push_str(&format!("{:.9},{:.9}\n", t.get(), i.get()));
    }
    out
}

/// Parses a trace from the CSV dialect above.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] describing the first problem found.
pub fn from_csv(text: &str) -> Result<CurrentTrace, ParseTraceError> {
    let raw = parse_raw(text)?;
    let dt = raw.dt.get();
    let mut samples = Vec::with_capacity(raw.rows.len());
    for (sample_index, &(line_no, t, i)) in raw.rows.iter().enumerate() {
        if !i.is_finite() || i < 0.0 {
            return Err(ParseTraceError::BadCurrent(line_no));
        }
        #[allow(clippy::cast_precision_loss)]
        let expected_t = sample_index as f64 * dt;
        // NaN-safe: a NaN timestamp compares false, so it is a mismatch.
        let within_tolerance = (t - expected_t).abs() <= dt * 0.5;
        if !within_tolerance {
            return Err(ParseTraceError::TimestampMismatch(line_no));
        }
        samples.push(Amps::new(i));
    }
    Ok(CurrentTrace::new(raw.label, raw.dt, samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoadProfile;
    use culpeo_units::Hertz;

    fn trace() -> CurrentTrace {
        LoadProfile::builder("round-trip")
            .hold(Amps::from_milli(25.0), Seconds::from_milli(2.0))
            .hold(Amps::from_milli(1.5), Seconds::from_milli(3.0))
            .build()
            .sample(Hertz::new(10_000.0))
    }

    #[test]
    fn csv_round_trip_preserves_everything() {
        let original = trace();
        let parsed = from_csv(&to_csv(&original)).unwrap();
        assert_eq!(parsed.label(), original.label());
        assert_eq!(parsed.len(), original.len());
        assert!(parsed.dt().approx_eq(original.dt(), 1e-15));
        for (a, b) in parsed.samples().iter().zip(original.samples()) {
            assert!(a.approx_eq(*b, 1e-9));
        }
    }

    #[test]
    fn missing_dt_header_is_an_error() {
        let text = "time_s,current_a\n0.0,0.001\n";
        assert_eq!(from_csv(text), Err(ParseTraceError::MissingHeader("dt_us")));
    }

    #[test]
    fn empty_body_is_an_error() {
        let text = "# dt_us: 8\ntime_s,current_a\n";
        assert_eq!(from_csv(text), Err(ParseTraceError::Empty));
    }

    #[test]
    fn bad_row_reports_line_number() {
        let text = "# dt_us: 100\n0.0,0.001\nnot,a number\n";
        assert_eq!(from_csv(text), Err(ParseTraceError::BadRow(3)));
    }

    #[test]
    fn negative_current_rejected() {
        let text = "# dt_us: 100\n0.0,-0.001\n";
        assert_eq!(from_csv(text), Err(ParseTraceError::BadCurrent(2)));
    }

    #[test]
    fn timestamp_mismatch_detected() {
        // Second sample claims t = 1 ms but dt is 100 µs.
        let text = "# dt_us: 100\n0.0,0.001\n0.001,0.001\n";
        assert_eq!(from_csv(text), Err(ParseTraceError::TimestampMismatch(3)));
    }

    #[test]
    fn header_order_and_blank_lines_tolerated() {
        let text = "\n# label: x\n\n# dt_us: 100\ntime_s,current_a\n0.0,0.002\n0.0001,0.002\n";
        let t = from_csv(text).unwrap();
        assert_eq!(t.label(), "x");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn parse_raw_admits_what_from_csv_rejects() {
        // A corrupted capture: NaN and negative currents, jittered stamp.
        let text = "# dt_us: 100\n0.0,NaN\n0.00015,-0.001\n";
        let raw = parse_raw(text).unwrap();
        assert_eq!(raw.rows.len(), 2);
        assert!(raw.currents()[0].is_nan());
        assert_eq!(raw.currents()[1], -0.001);
        assert_eq!(raw.timestamps()[1], 0.000_15);
        assert!(from_csv(text).is_err());
    }

    #[test]
    fn parse_raw_still_rejects_structural_damage() {
        assert_eq!(
            parse_raw("time_s,current_a\n0.0,0.001\n"),
            Err(ParseTraceError::MissingHeader("dt_us"))
        );
        assert_eq!(
            parse_raw("# dt_us: 100\nnot,a number\n"),
            Err(ParseTraceError::BadRow(2))
        );
        assert_eq!(parse_raw("# dt_us: 100\n"), Err(ParseTraceError::Empty));
    }

    #[test]
    fn nan_timestamp_is_a_mismatch() {
        let text = "# dt_us: 100\nNaN,0.001\n";
        assert_eq!(from_csv(text), Err(ParseTraceError::TimestampMismatch(2)));
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(
            ParseTraceError::TimestampMismatch(7).to_string(),
            "timestamp disagrees with dt_us at line 7"
        );
    }
}

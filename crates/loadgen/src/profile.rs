//! Analytic, piecewise load profiles.

use culpeo_units::{Amps, Hertz, Joules, Seconds, Volts};

use crate::{CurrentTrace, Segment};

/// A piecewise-defined load: what a task draws from the regulated output
/// rail over its execution.
///
/// Profiles are analytic — [`LoadProfile::current_at`] is exact at any
/// instant — which lets the circuit simulator integrate long application
/// runs without storing millions of samples. Use [`LoadProfile::sample`] to
/// obtain the uniformly sampled [`CurrentTrace`] form that Culpeo-PG ingests.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    label: String,
    segments: Vec<Segment>,
    /// Cumulative end-time of each segment, kept in lockstep with
    /// `segments` so `current_at` is a binary search.
    ends: Vec<f64>,
}

impl LoadProfile {
    /// Starts building a profile. See [`LoadProfileBuilder`].
    #[must_use]
    pub fn builder(label: impl Into<String>) -> LoadProfileBuilder {
        LoadProfileBuilder {
            label: label.into(),
            segments: Vec::new(),
        }
    }

    /// A single constant-current load, the simplest useful profile.
    #[must_use]
    pub fn constant(label: impl Into<String>, current: Amps, duration: Seconds) -> Self {
        Self::builder(label).hold(current, duration).build()
    }

    /// The human-readable label (used in figure output and profile tables).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The segments making up this profile.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total duration of the profile.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        Seconds::new(self.ends.last().copied().unwrap_or(0.0))
    }

    /// The instantaneous current at time `t` from the profile's start.
    ///
    /// Returns zero before the start and after the end — a task that has
    /// finished draws nothing.
    #[must_use]
    pub fn current_at(&self, t: Seconds) -> Amps {
        let t = t.get();
        if t < 0.0 {
            return Amps::ZERO;
        }
        // First segment whose end time strictly exceeds t.
        let idx = self.ends.partition_point(|&end| end <= t);
        if idx >= self.segments.len() {
            // Exactly at (or beyond) the profile end: report the final
            // segment's terminal value at the boundary, zero afterwards.
            if t == self.duration().get() {
                if let Some(last) = self.segments.last() {
                    return last.current_at(last.duration());
                }
            }
            return Amps::ZERO;
        }
        let start = if idx == 0 { 0.0 } else { self.ends[idx - 1] };
        self.segments[idx].current_at(Seconds::new(t - start))
    }

    /// The maximum current anywhere in the profile.
    #[must_use]
    pub fn peak(&self) -> Amps {
        self.segments
            .iter()
            .map(Segment::peak)
            .fold(Amps::ZERO, Amps::max)
    }

    /// Exact total charge (ampere-seconds, i.e. coulombs) delivered.
    #[must_use]
    pub fn charge(&self) -> f64 {
        self.segments.iter().map(Segment::charge).sum()
    }

    /// Mean current over the profile duration.
    ///
    /// Returns zero for an empty profile.
    #[must_use]
    pub fn mean(&self) -> Amps {
        let d = self.duration().get();
        if d == 0.0 {
            Amps::ZERO
        } else {
            Amps::new(self.charge() / d)
        }
    }

    /// Energy delivered *at the output rail* when run at regulated voltage
    /// `v_out` — this is `E_out` in the paper's Equation 2a, before booster
    /// inefficiency inflates the draw from the capacitor.
    #[must_use]
    pub fn output_energy(&self, v_out: Volts) -> Joules {
        Joules::new(self.charge() * v_out.get())
    }

    /// Samples the profile into a [`CurrentTrace`] at `rate`.
    ///
    /// Sampling uses the left edge of each interval, matching how a current
    /// probe reports instantaneous values. The trace always includes the
    /// profile's full duration (the last partial interval is included).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    #[must_use]
    pub fn sample(&self, rate: Hertz) -> CurrentTrace {
        let dt = rate.period();
        let n = (self.duration().get() / dt.get()).ceil().max(0.0) as usize;
        let samples = (0..n)
            .map(|k| self.current_at(Seconds::new(k as f64 * dt.get())))
            .collect();
        CurrentTrace::new(self.label.clone(), dt, samples)
    }

    /// Returns a new profile that runs `self` then `next`, back to back.
    ///
    /// Used to compose task sequences ("sense, then encrypt, then send") for
    /// `V_safe_multi` experiments.
    #[must_use]
    pub fn then(&self, next: &LoadProfile) -> LoadProfile {
        let mut b = LoadProfile::builder(format!("{}+{}", self.label, next.label));
        for s in self.segments.iter().chain(next.segments.iter()) {
            b = b.segment(*s);
        }
        b.build()
    }

    /// A forward-only cursor over this profile for monotone time queries.
    ///
    /// The circuit simulator evaluates the load at every step of a run, and
    /// those query times only ever increase; a cursor remembers which
    /// segment the last query landed in and resumes the scan there, turning
    /// the per-step `O(log n)` binary search of [`LoadProfile::current_at`]
    /// into amortised `O(1)`.
    #[must_use]
    pub fn cursor(&self) -> ProfileCursor<'_> {
        ProfileCursor {
            profile: self,
            idx: 0,
        }
    }

    /// Returns a copy with every current scaled by `factor` (e.g. to model a
    /// "knob" such as matrix dimension scaling compute intensity).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> LoadProfile {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        let scale = |a: Amps| Amps::new(a.get() * factor);
        let segments = self
            .segments
            .iter()
            .map(|s| match *s {
                Segment::Constant { current, duration } => Segment::Constant {
                    current: scale(current),
                    duration,
                },
                Segment::Ramp { from, to, duration } => Segment::Ramp {
                    from: scale(from),
                    to: scale(to),
                    duration,
                },
                Segment::Burst {
                    peak,
                    base,
                    period,
                    duty,
                    duration,
                } => Segment::Burst {
                    peak: scale(peak),
                    base: scale(base),
                    period,
                    duty,
                    duration,
                },
            })
            .collect::<Vec<_>>();
        let mut b = LoadProfile::builder(self.label.clone());
        for s in segments {
            b = b.segment(s);
        }
        b.build()
    }
}

/// A forward-only evaluation cursor over a [`LoadProfile`]; obtain one from
/// [`LoadProfile::cursor`].
///
/// For non-decreasing query times, [`ProfileCursor::current_at`] returns
/// exactly what [`LoadProfile::current_at`] would — same segment selection,
/// same boundary semantics — without re-running the binary search each call.
/// Queries that move backwards in time past a segment boundary are outside
/// the contract (the cursor never rewinds); create a fresh cursor instead.
#[derive(Debug, Clone)]
pub struct ProfileCursor<'a> {
    profile: &'a LoadProfile,
    /// Index of the segment the scan resumes at: every earlier segment's
    /// end time is ≤ the previous query time.
    idx: usize,
}

impl ProfileCursor<'_> {
    /// The instantaneous current at time `t`, for `t` no earlier than the
    /// previous call's `t`. Matches [`LoadProfile::current_at`] exactly
    /// under that ordering.
    #[must_use]
    pub fn current_at(&mut self, t: Seconds) -> Amps {
        let t = t.get();
        if t < 0.0 {
            return Amps::ZERO;
        }
        let ends = &self.profile.ends;
        // Advance to the first segment whose end time strictly exceeds t —
        // the same index `partition_point` would find, reached by resuming
        // the scan from the previous query's segment.
        while self.idx < ends.len() && ends[self.idx] <= t {
            self.idx += 1;
        }
        if self.idx >= self.profile.segments.len() {
            if t == self.profile.duration().get() {
                if let Some(last) = self.profile.segments.last() {
                    return last.current_at(last.duration());
                }
            }
            return Amps::ZERO;
        }
        let start = if self.idx == 0 {
            0.0
        } else {
            self.profile.ends[self.idx - 1]
        };
        self.profile.segments[self.idx].current_at(Seconds::new(t - start))
    }
}

/// Incrementally builds a [`LoadProfile`]; obtain one from
/// [`LoadProfile::builder`].
#[derive(Debug, Clone)]
pub struct LoadProfileBuilder {
    label: String,
    segments: Vec<Segment>,
}

impl LoadProfileBuilder {
    /// Appends a constant-current hold.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not strictly positive or `current` negative.
    #[must_use]
    pub fn hold(self, current: Amps, duration: Seconds) -> Self {
        assert!(current.get() >= 0.0, "load current cannot be negative");
        self.segment(Segment::Constant { current, duration })
    }

    /// Appends a linear ramp between two currents.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not strictly positive or a current negative.
    #[must_use]
    pub fn ramp(self, from: Amps, to: Amps, duration: Seconds) -> Self {
        assert!(
            from.get() >= 0.0 && to.get() >= 0.0,
            "load current cannot be negative"
        );
        self.segment(Segment::Ramp { from, to, duration })
    }

    /// Appends a repeating rectangular burst.
    ///
    /// # Panics
    ///
    /// Panics if durations are non-positive, currents negative, or `duty`
    /// outside `(0, 1]`.
    #[must_use]
    pub fn burst(
        self,
        peak: Amps,
        base: Amps,
        period: Seconds,
        duty: f64,
        duration: Seconds,
    ) -> Self {
        assert!(
            peak.get() >= 0.0 && base.get() >= 0.0,
            "load current cannot be negative"
        );
        assert!(period.get() > 0.0, "burst period must be positive");
        assert!(duty > 0.0 && duty <= 1.0, "duty must be in (0, 1]");
        self.segment(Segment::Burst {
            peak,
            base,
            period,
            duty,
            duration,
        })
    }

    /// Appends an arbitrary pre-built segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment duration is not strictly positive.
    #[must_use]
    pub fn segment(mut self, segment: Segment) -> Self {
        assert!(
            segment.duration().get() > 0.0,
            "segment duration must be positive"
        );
        self.segments.push(segment);
        self
    }

    /// Finalises the profile.
    #[must_use]
    pub fn build(self) -> LoadProfile {
        let mut ends = Vec::with_capacity(self.segments.len());
        let mut acc = 0.0;
        for s in &self.segments {
            acc += s.duration().get();
            ends.push(acc);
        }
        LoadProfile {
            label: self.label,
            segments: self.segments,
            ends,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ma(v: f64) -> Amps {
        Amps::from_milli(v)
    }

    fn ms(v: f64) -> Seconds {
        Seconds::from_milli(v)
    }

    fn pulse_plus_compute() -> LoadProfile {
        LoadProfile::builder("p")
            .hold(ma(25.0), ms(10.0))
            .hold(ma(1.5), ms(100.0))
            .build()
    }

    #[test]
    fn duration_and_lookup() {
        let p = pulse_plus_compute();
        assert!(p.duration().approx_eq(ms(110.0), 1e-12));
        assert_eq!(p.current_at(ms(5.0)), ma(25.0));
        assert_eq!(p.current_at(ms(50.0)), ma(1.5));
        assert_eq!(p.current_at(ms(200.0)), Amps::ZERO);
        assert_eq!(p.current_at(ms(-1.0)), Amps::ZERO);
    }

    #[test]
    fn boundary_between_segments_belongs_to_second() {
        let p = pulse_plus_compute();
        assert_eq!(p.current_at(ms(10.0)), ma(1.5));
    }

    #[test]
    fn end_boundary_reports_final_value() {
        let p = pulse_plus_compute();
        assert_eq!(p.current_at(p.duration()), ma(1.5));
    }

    #[test]
    fn peak_mean_charge() {
        let p = pulse_plus_compute();
        assert_eq!(p.peak(), ma(25.0));
        let expected_charge = 0.025 * 0.010 + 0.0015 * 0.100;
        assert!((p.charge() - expected_charge).abs() < 1e-12);
        assert!(p
            .mean()
            .approx_eq(Amps::new(expected_charge / 0.110), 1e-12));
    }

    #[test]
    fn output_energy_matches_charge_times_voltage() {
        let p = pulse_plus_compute();
        let e = p.output_energy(Volts::new(2.55));
        assert!((e.get() - p.charge() * 2.55).abs() < 1e-12);
    }

    #[test]
    fn sampling_covers_full_duration() {
        let p = pulse_plus_compute();
        let t = p.sample(Hertz::new(10_000.0)); // dt = 100 µs
        assert_eq!(t.len(), 1100);
        assert!(t.duration().approx_eq(p.duration(), 1e-9));
        assert_eq!(t.peak(), ma(25.0));
    }

    #[test]
    fn sampled_charge_approximates_analytic() {
        let p = pulse_plus_compute();
        let t = p.sample(Hertz::new(125_000.0));
        assert!((t.charge() - p.charge()).abs() < p.charge() * 1e-3);
    }

    #[test]
    fn then_concatenates() {
        let a = LoadProfile::constant("a", ma(5.0), ms(10.0));
        let b = LoadProfile::constant("b", ma(10.0), ms(20.0));
        let c = a.then(&b);
        assert_eq!(c.label(), "a+b");
        assert!(c.duration().approx_eq(ms(30.0), 1e-12));
        assert_eq!(c.current_at(ms(5.0)), ma(5.0));
        assert_eq!(c.current_at(ms(15.0)), ma(10.0));
    }

    #[test]
    fn scaled_multiplies_currents_only() {
        let p = pulse_plus_compute().scaled(2.0);
        assert_eq!(p.peak(), ma(50.0));
        assert!(p.duration().approx_eq(ms(110.0), 1e-12));
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_negative() {
        let _ = pulse_plus_compute().scaled(-1.0);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn builder_rejects_zero_duration() {
        let _ = LoadProfile::builder("x").hold(ma(1.0), Seconds::ZERO);
    }

    #[test]
    fn cursor_matches_current_at_on_monotone_queries() {
        let p = LoadProfile::builder("mixed")
            .hold(ma(25.0), ms(10.0))
            .ramp(ma(25.0), ma(2.0), ms(30.0))
            .burst(ma(40.0), ma(1.0), ms(4.0), 0.25, ms(60.0))
            .build();
        let mut cursor = p.cursor();
        let dur = p.duration().get();
        let n = 5000;
        for k in 0..=n {
            // Sweep slightly past the end to hit the boundary + beyond.
            let t = Seconds::new(dur * 1.05 * k as f64 / n as f64);
            assert_eq!(cursor.current_at(t), p.current_at(t), "t = {t:?}");
        }
    }

    #[test]
    fn cursor_handles_boundaries_and_negative_time() {
        let p = pulse_plus_compute();
        let mut c = p.cursor();
        assert_eq!(c.current_at(ms(-1.0)), Amps::ZERO);
        assert_eq!(c.current_at(ms(5.0)), ma(25.0));
        assert_eq!(c.current_at(ms(10.0)), ma(1.5)); // boundary → second seg
        assert_eq!(c.current_at(p.duration()), ma(1.5)); // end boundary
        assert_eq!(c.current_at(ms(200.0)), Amps::ZERO);
    }

    #[test]
    fn cursor_repeated_same_time_is_stable() {
        let p = pulse_plus_compute();
        let mut c = p.cursor();
        for _ in 0..3 {
            assert_eq!(c.current_at(ms(50.0)), ma(1.5));
        }
    }

    #[test]
    fn cursor_on_empty_profile() {
        let p = LoadProfile::builder("empty").build();
        let mut c = p.cursor();
        assert_eq!(c.current_at(Seconds::ZERO), Amps::ZERO);
        assert_eq!(c.current_at(ms(1.0)), Amps::ZERO);
    }

    #[test]
    fn empty_profile_is_well_behaved() {
        let p = LoadProfile::builder("empty").build();
        assert_eq!(p.duration(), Seconds::ZERO);
        assert_eq!(p.peak(), Amps::ZERO);
        assert_eq!(p.mean(), Amps::ZERO);
        assert_eq!(p.current_at(Seconds::ZERO), Amps::ZERO);
        assert_eq!(p.sample(Hertz::new(1000.0)).len(), 0);
    }
}

//! Load-current modelling for energy-harvesting devices.
//!
//! Culpeo's analyses consume *current profiles*: what a task draws from the
//! regulated output rail over time. This crate provides
//!
//! * [`LoadProfile`] — an analytic, piecewise description of a load
//!   (constant holds, linear ramps, repeating bursts), cheap to evaluate at
//!   any instant and therefore what the circuit simulator integrates;
//! * [`CurrentTrace`] — a uniformly sampled capture of a profile, the form
//!   Culpeo-PG ingests (the paper profiles at 125 kHz);
//! * [`synthetic`] — the Uniform and Pulse loads of Table III used by
//!   Figures 6 and 10;
//! * [`peripheral`] — models of the real peripherals the paper evaluates
//!   (gesture sensor, BLE radio, MNIST accelerator, LoRa, IMU, microphone);
//! * [`noise`] — measurement-style noise injection for robustness tests.
//!
//! ```
//! use culpeo_loadgen::LoadProfile;
//! use culpeo_units::{Amps, Hertz, Quantity, Seconds};
//!
//! // A 25 mA, 10 ms pulse followed by 100 ms of low-power compute.
//! let profile = LoadProfile::builder("pulse+compute")
//!     .hold(Amps::from_milli(25.0), Seconds::from_milli(10.0))
//!     .hold(Amps::from_milli(1.5), Seconds::from_milli(100.0))
//!     .build();
//! let trace = profile.sample(Hertz::new(125_000.0));
//! assert!(trace.peak().approx_eq(Amps::from_milli(25.0), 1e-9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod profile;
mod segment;
mod trace;

pub mod io;
pub mod noise;
pub mod peripheral;
pub mod synthetic;

pub use profile::{LoadProfile, LoadProfileBuilder, ProfileCursor};
pub use segment::Segment;
pub use trace::CurrentTrace;

/// The sampling rate used by the paper's Culpeo-PG profiling prototype.
pub const PG_SAMPLE_RATE_HZ: f64 = 125_000.0;

//! Measurement-style noise injection for robustness testing.
//!
//! Real current probes add Gaussian noise and occasional single-sample
//! glitches; Culpeo-PG must tolerate both (its pulse-width detector filters
//! high-frequency noise before choosing an ESR operating point, §IV-B).
//! These helpers produce dirtied copies of clean traces so tests can check
//! that tolerance.

use culpeo_units::Amps;
use rand::Rng;

use crate::CurrentTrace;

/// Adds zero-mean Gaussian noise with standard deviation `sigma` to every
/// sample. Samples are floored at zero — a probe cannot report negative
/// magnitude on this unidirectional rail.
#[must_use]
pub fn gaussian(trace: &CurrentTrace, sigma: Amps, rng: &mut impl Rng) -> CurrentTrace {
    let samples = trace
        .samples()
        .iter()
        .map(|&s| {
            let noisy = s.get() + sigma.get() * standard_normal(rng);
            Amps::new(noisy.max(0.0))
        })
        .collect();
    CurrentTrace::new(format!("{}~noisy", trace.label()), trace.dt(), samples)
}

/// Injects `count` single-sample spikes of `magnitude` at random positions —
/// the instrumentation glitches that median filtering must reject.
#[must_use]
pub fn spikes(
    trace: &CurrentTrace,
    magnitude: Amps,
    count: usize,
    rng: &mut impl Rng,
) -> CurrentTrace {
    let mut samples = trace.samples().to_vec();
    if samples.is_empty() {
        return trace.clone();
    }
    for _ in 0..count {
        let idx = rng.gen_range(0..samples.len());
        samples[idx] = magnitude;
    }
    CurrentTrace::new(format!("{}~spiked", trace.label()), trace.dt(), samples)
}

/// Samples a standard normal via Box–Muller, needing only a `Rng`.
fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoadProfile;
    use culpeo_units::{Hertz, Seconds};
    use rand::{rngs::StdRng, SeedableRng};

    fn clean_trace() -> CurrentTrace {
        LoadProfile::constant("c", Amps::from_milli(10.0), Seconds::from_milli(50.0))
            .sample(Hertz::new(10_000.0))
    }

    #[test]
    fn gaussian_preserves_mean_roughly() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = clean_trace();
        let n = gaussian(&t, Amps::from_micro(100.0), &mut rng);
        assert_eq!(n.len(), t.len());
        assert!((n.mean().get() - t.mean().get()).abs() < t.mean().get() * 0.01);
    }

    #[test]
    fn gaussian_never_negative() {
        let mut rng = StdRng::seed_from_u64(11);
        let quiet = LoadProfile::constant("q", Amps::from_micro(1.0), Seconds::from_milli(10.0))
            .sample(Hertz::new(10_000.0));
        let n = gaussian(&quiet, Amps::from_milli(1.0), &mut rng);
        assert!(n.samples().iter().all(|s| s.get() >= 0.0));
    }

    #[test]
    fn spikes_inject_expected_magnitude() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = clean_trace();
        let s = spikes(&t, Amps::from_milli(100.0), 5, &mut rng);
        assert_eq!(s.peak(), Amps::from_milli(100.0));
        // Median filtering inside dominant_pulse_width must ignore them.
        let w = s.dominant_pulse_width().unwrap();
        assert!(w.approx_eq(t.duration(), t.dt().get() * 4.0));
    }

    #[test]
    fn spikes_on_empty_trace_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = CurrentTrace::new("e", Seconds::from_milli(1.0), vec![]);
        let s = spikes(&empty, Amps::from_milli(1.0), 3, &mut rng);
        assert!(s.is_empty());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}

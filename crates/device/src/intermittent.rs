//! Intermittent (power-failure-and-retry) task execution.
//!
//! The Figure 1(a) execution model: a device attempts an atomic task; if
//! the buffer browns out mid-task, all progress is lost, the device
//! recharges fully, and the task re-executes from scratch. The dispatch
//! *policy* — when the device judges it safe to start — is exactly what
//! Culpeo changes, and this module lets the policies race on the same
//! plant.

use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{PowerSystem, RunConfig};
use culpeo_units::{Seconds, Volts};

/// When an intermittent runtime decides to launch a pending task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchPolicy {
    /// Launch whenever the output booster is on (voltage above `V_off`) —
    /// the opportunistic model of most prior systems.
    Opportunistic,
    /// Launch only once the buffer voltage reaches the given threshold
    /// (e.g. a Culpeo `V_safe` value).
    VsafeGated(Volts),
}

/// Statistics from running one task to completion intermittently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntermittentStats {
    /// Attempts launched, including the successful one.
    pub attempts: u32,
    /// Power failures suffered (equals `attempts − 1` on success).
    pub failures: u32,
    /// Wall-clock time from first dispatch to completion, including
    /// recharging.
    pub elapsed: Seconds,
    /// Whether the task eventually completed within the attempt budget.
    pub completed: bool,
}

/// Runs `task` on `sys` under `policy` until it completes or
/// `max_attempts` executions have failed. The system's harvester recharges
/// the buffer between attempts; waiting for charge counts toward
/// `elapsed`.
///
/// # Panics
///
/// Panics if `max_attempts` is zero.
#[must_use]
pub fn run_to_completion(
    sys: &mut PowerSystem,
    task: &LoadProfile,
    policy: DispatchPolicy,
    max_attempts: u32,
) -> IntermittentStats {
    // Bound the wait for charge: a dead harvester must not hang us.
    run_to_completion_with(sys, task, policy, max_attempts, Seconds::new(600.0))
}

/// [`run_to_completion`] with an explicit per-attempt recharge-wait bound.
///
/// The default 600 s bound is sized for real device recharge times; fault
/// batteries that deliberately kill the harvester want a much shorter
/// give-up so a scenario sweep stays fast.
///
/// # Panics
///
/// Panics if `max_attempts` is zero.
#[must_use]
pub fn run_to_completion_with(
    sys: &mut PowerSystem,
    task: &LoadProfile,
    policy: DispatchPolicy,
    max_attempts: u32,
    max_wait: Seconds,
) -> IntermittentStats {
    assert!(max_attempts > 0, "need at least one attempt");
    let t0 = sys.time();
    let dt = Seconds::from_micro(100.0);

    let mut attempts = 0;
    let mut failures = 0;
    while attempts < max_attempts {
        // Wait until the policy allows dispatch (or charging stalls).
        let ready = wait_until_ready(sys, policy, dt, max_wait);
        if !ready {
            break;
        }
        attempts += 1;
        let outcome = sys.run_profile(task, RunConfig::coarse());
        if outcome.completed() {
            return IntermittentStats {
                attempts,
                failures,
                elapsed: Seconds::new((sys.time() - t0).get()),
                completed: true,
            };
        }
        failures += 1;
        // The monitor now demands a full recharge before software runs
        // again; the wait at the top of the loop models it.
    }
    IntermittentStats {
        attempts,
        failures,
        elapsed: Seconds::new((sys.time() - t0).get()),
        completed: false,
    }
}

/// Advances the system until the dispatch policy is satisfied. Returns
/// `false` if `max_wait` elapses first (insufficient harvest).
fn wait_until_ready(
    sys: &mut PowerSystem,
    policy: DispatchPolicy,
    dt: Seconds,
    max_wait: Seconds,
) -> bool {
    let steps = max_wait.steps(dt);
    for _ in 0..steps {
        let enabled = sys.monitor().output_enabled();
        let v = sys.v_node();
        let ready = match policy {
            DispatchPolicy::Opportunistic => enabled,
            DispatchPolicy::VsafeGated(v_safe) => enabled && v >= v_safe,
        };
        if ready {
            return true;
        }
        sys.step(culpeo_units::Amps::ZERO, dt);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_powersim::Harvester;
    use culpeo_units::Amps;

    fn charged_plant() -> PowerSystem {
        PowerSystem::builder()
            .harvester(Harvester::ConstantCurrent(Amps::from_milli(5.0)))
            .build()
    }

    fn lora_task() -> LoadProfile {
        LoadProfile::constant("lora", Amps::from_milli(50.0), Seconds::from_milli(100.0))
    }

    #[test]
    fn full_buffer_completes_first_try() {
        let mut sys = charged_plant();
        let stats = run_to_completion(&mut sys, &lora_task(), DispatchPolicy::Opportunistic, 5);
        assert!(stats.completed);
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.failures, 0);
    }

    #[test]
    fn opportunistic_dispatch_from_low_voltage_fails_then_recovers() {
        let mut sys = charged_plant();
        sys.set_buffer_voltage(Volts::new(1.7));
        sys.force_output_enabled();
        let stats = run_to_completion(&mut sys, &lora_task(), DispatchPolicy::Opportunistic, 5);
        // First attempt at 1.7 V browns out; after a full recharge the
        // retry succeeds.
        assert!(stats.completed);
        assert!(stats.failures >= 1, "{stats:?}");
        assert!(stats.attempts >= 2);
    }

    #[test]
    fn vsafe_gating_avoids_the_failure() {
        let mut sys = charged_plant();
        sys.set_buffer_voltage(Volts::new(1.7));
        sys.force_output_enabled();
        // Gate at a (generous) safe voltage: the device waits for charge
        // instead of dooming an attempt.
        let stats = run_to_completion(
            &mut sys,
            &lora_task(),
            DispatchPolicy::VsafeGated(Volts::new(2.2)),
            5,
        );
        assert!(stats.completed);
        assert_eq!(stats.failures, 0, "{stats:?}");
        assert_eq!(stats.attempts, 1);
    }

    #[test]
    fn doomed_task_without_harvest_gives_up() {
        let mut sys = PowerSystem::capybara(); // harvester off
        sys.set_buffer_voltage(Volts::new(1.7));
        sys.force_output_enabled();
        let stats = run_to_completion(&mut sys, &lora_task(), DispatchPolicy::Opportunistic, 3);
        assert!(!stats.completed);
        // One failed attempt, then the recharge wait times out.
        assert_eq!(stats.failures, 1);
    }

    /// A 5 mA charger that disappears for half of every 2 s cycle —
    /// the chaos battery's harvester-dropout fault.
    fn dropout_harvester() -> Harvester {
        Harvester::Windowed {
            i: Amps::from_milli(5.0),
            period: Seconds::new(2.0),
            duty: 0.5,
            phase: Seconds::ZERO,
        }
    }

    #[test]
    fn vsafe_gating_survives_harvester_dropout() {
        // V_safe's guarantee assumes *zero* harvest during the task, so a
        // harvester that periodically drops out must not break it: the
        // gated device just waits longer for charge, then completes with
        // zero failures on a bounded number of attempts.
        let mut sys = PowerSystem::builder()
            .harvester(dropout_harvester())
            .build();
        sys.set_buffer_voltage(Volts::new(1.7));
        sys.force_output_enabled();
        let stats = run_to_completion(
            &mut sys,
            &lora_task(),
            DispatchPolicy::VsafeGated(Volts::new(2.2)),
            5,
        );
        assert!(stats.completed, "{stats:?}");
        assert_eq!(stats.attempts, 1, "{stats:?}");
        assert_eq!(stats.failures, 0, "{stats:?}");
    }

    #[test]
    fn opportunistic_pays_for_the_dropout_and_gated_does_not() {
        let mut a = PowerSystem::builder()
            .harvester(dropout_harvester())
            .build();
        a.set_buffer_voltage(Volts::new(1.7));
        a.force_output_enabled();
        let opportunistic =
            run_to_completion(&mut a, &lora_task(), DispatchPolicy::Opportunistic, 5);

        let mut b = PowerSystem::builder()
            .harvester(dropout_harvester())
            .build();
        b.set_buffer_voltage(Volts::new(1.7));
        b.force_output_enabled();
        let gated = run_to_completion(
            &mut b,
            &lora_task(),
            DispatchPolicy::VsafeGated(Volts::new(2.2)),
            5,
        );

        // The assertion the ISSUE asks for: opportunistic's extra
        // failures under dropout are asserted, not just reported.
        assert!(opportunistic.failures >= 1, "{opportunistic:?}");
        assert_eq!(gated.failures, 0, "{gated:?}");
        assert!(opportunistic.failures > gated.failures);
        assert!(opportunistic.attempts > gated.attempts);
    }

    #[test]
    fn bounded_wait_gives_up_fast_on_a_dead_window() {
        // duty 0 == permanent dropout; the explicit wait bound keeps the
        // chaos battery fast instead of simulating 600 s of nothing.
        let mut sys = PowerSystem::builder()
            .harvester(Harvester::Windowed {
                i: Amps::from_milli(5.0),
                period: Seconds::new(2.0),
                duty: 0.0,
                phase: Seconds::ZERO,
            })
            .build();
        sys.set_buffer_voltage(Volts::new(1.7));
        sys.force_output_enabled();
        let stats = run_to_completion_with(
            &mut sys,
            &lora_task(),
            DispatchPolicy::VsafeGated(Volts::new(2.2)),
            3,
            Seconds::new(2.0),
        );
        assert!(!stats.completed);
        assert_eq!(stats.attempts, 0, "{stats:?}");
        assert!(stats.elapsed.get() <= 2.5, "{stats:?}");
    }

    #[test]
    fn failure_costs_time() {
        // The retry path (fail, recharge, retry) takes much longer than
        // dispatching safely in the first place.
        let mut a = charged_plant();
        a.set_buffer_voltage(Volts::new(1.7));
        a.force_output_enabled();
        let unsafe_stats =
            run_to_completion(&mut a, &lora_task(), DispatchPolicy::Opportunistic, 5);

        let mut b = charged_plant();
        b.set_buffer_voltage(Volts::new(1.7));
        b.force_output_enabled();
        let safe_stats = run_to_completion(
            &mut b,
            &lora_task(),
            DispatchPolicy::VsafeGated(Volts::new(2.2)),
            5,
        );
        assert!(unsafe_stats.completed && safe_stats.completed);
        assert!(
            unsafe_stats.elapsed.get() > safe_stats.elapsed.get(),
            "failing path {} should cost more than waiting {}",
            unsafe_stats.elapsed,
            safe_stats.elapsed
        );
    }
}

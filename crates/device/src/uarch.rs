//! The Culpeo-µArch peripheral block (§V-D, Figure 9, Table II).
//!
//! A tiny hardware block beside the MCU: an 8-bit ADC samples `V_cap` on a
//! 100 kHz clock, a digital comparator compares each sample against a
//! single capture register, and a write-enable latches the new value when
//! it improves on the captured minimum (or maximum). The MCU only talks to
//! the block before and after a task — never during — through four
//! memory-mapped commands.

use culpeo_units::{Amps, Hertz, Volts};

use crate::Adc;

/// Whether the capture register tracks the minimum or maximum sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinMax {
    /// Track the smallest observed ADC code.
    Min,
    /// Track the largest observed ADC code.
    Max,
}

/// The Table II command set for the peripheral.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `configure([on/off])` — enable or disable the block (and its ADC).
    Configure(bool),
    /// `prepare([min/max])` — preload the capture register with the
    /// identity element: `0xFF` for minimum tracking, `0x00` for maximum.
    Prepare(MinMax),
    /// `sample([min/max])` — start repeated ADC sampling in the given
    /// direction.
    Sample(MinMax),
    /// `read()` — read the capture register (handled by
    /// [`UArchBlock::read`], which returns the value).
    Read,
}

/// The peripheral block itself.
///
/// Drive it by issuing [`Command`]s and calling [`UArchBlock::tick`] once
/// per 100 kHz clock edge with the momentary `V_cap`; the block does the
/// comparison in "hardware", with no MCU involvement.
#[derive(Debug, Clone, PartialEq)]
pub struct UArchBlock {
    adc: Adc,
    clock: Hertz,
    enabled: bool,
    sampling: Option<MinMax>,
    capture: u8,
}

impl UArchBlock {
    /// Creates a disabled block with the proposed 8-bit / 140 nW ADC and a
    /// 100 kHz sample clock.
    #[must_use]
    pub fn new() -> Self {
        Self {
            adc: Adc::uarch_8bit(),
            clock: Hertz::new(100_000.0),
            enabled: false,
            sampling: None,
            capture: 0,
        }
    }

    /// The block's ADC.
    #[must_use]
    pub fn adc(&self) -> &Adc {
        &self.adc
    }

    /// The sample clock the MCU supplies.
    #[must_use]
    pub fn clock(&self) -> Hertz {
        self.clock
    }

    /// True when the block (and its ADC) is powered.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Issues a command (Table II).
    pub fn command(&mut self, cmd: Command) {
        match cmd {
            Command::Configure(on) => {
                self.enabled = on;
                if !on {
                    self.sampling = None;
                }
            }
            Command::Prepare(mode) => {
                self.capture = match mode {
                    MinMax::Min => 0xFF,
                    MinMax::Max => 0x00,
                };
            }
            Command::Sample(mode) => {
                if self.enabled {
                    self.sampling = Some(mode);
                }
            }
            Command::Read => {}
        }
    }

    /// Reads the capture register.
    #[must_use]
    pub fn read(&self) -> u8 {
        self.capture
    }

    /// Reads the capture register as a voltage, at the bottom of its
    /// quantization bin (conservative for a tracked minimum).
    #[must_use]
    pub fn read_volts(&self) -> Volts {
        self.adc.to_volts(u16::from(self.capture))
    }

    /// Reads the capture register as a voltage at the *top* of its bin —
    /// the conservative reconstruction for a tracked maximum (the rebound
    /// voltage); see [`Adc::read_high`].
    ///
    /// [`Adc::read_high`]: crate::Adc::read_high
    #[must_use]
    pub fn read_volts_high(&self) -> Volts {
        Volts::new(self.read_volts().get() + self.adc.lsb().get())
    }

    /// One-shot ADC reading reconstructed at the top of its bin (used for
    /// `V_start`).
    #[must_use]
    pub fn read_adc_high(&self, v_cap: Volts) -> Volts {
        self.adc.read_high(v_cap)
    }

    /// One 100 kHz clock edge: sample `v_cap` and latch if it improves on
    /// the capture register. No-op while disabled or not sampling.
    pub fn tick(&mut self, v_cap: Volts) {
        let Some(mode) = self.sampling else {
            return;
        };
        if !self.enabled {
            return;
        }
        let code = self.adc.sample(v_cap).min(0xFF) as u8;
        // The XOR'd comparator of Figure 9: write when (code < reg) for
        // minimum mode, (code > reg) for maximum mode.
        let write = match mode {
            MinMax::Min => code < self.capture,
            MinMax::Max => code > self.capture,
        };
        if write {
            self.capture = code;
        }
    }

    /// An immediate one-shot ADC reading (used for `V_start` at
    /// `profile_start`), independent of the capture machinery.
    #[must_use]
    pub fn read_adc(&self, v_cap: Volts) -> Volts {
        self.adc.read(v_cap)
    }

    /// The extra load current while the block is enabled.
    #[must_use]
    pub fn load_current(&self, v_out: Volts) -> Amps {
        if self.enabled {
            self.adc.load_current(v_out)
        } else {
            Amps::ZERO
        }
    }
}

impl Default for UArchBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// Configuration for profiling through the µArch block: how long the
/// scheduler lets the rebound run before calling `rebound_done`.
///
/// The block is cheap enough to stay enabled indefinitely (§V-D), so the
/// choice is the scheduler's; longer windows capture a higher (more
/// accurate) `V_final`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UArchProfiler {
    /// How long maximum-tracking runs after the task before
    /// `rebound_done`.
    pub rebound_window: culpeo_units::Seconds,
}

impl Default for UArchProfiler {
    fn default() -> Self {
        Self {
            rebound_window: culpeo_units::Seconds::from_milli(500.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_tracking_captures_the_dip() {
        let mut b = UArchBlock::new();
        b.command(Command::Configure(true));
        b.command(Command::Prepare(MinMax::Min));
        b.command(Command::Sample(MinMax::Min));
        for &v in &[2.3, 2.25, 2.18, 2.22, 2.3] {
            b.tick(Volts::new(v));
        }
        // 2.18 / 0.01 = 218 exactly.
        assert_eq!(b.read(), 218);
        assert!(b.read_volts().approx_eq(Volts::new(2.18), 1e-9));
    }

    #[test]
    fn max_tracking_captures_the_rebound() {
        let mut b = UArchBlock::new();
        b.command(Command::Configure(true));
        b.command(Command::Prepare(MinMax::Max));
        b.command(Command::Sample(MinMax::Max));
        for &v in &[2.18, 2.24, 2.29, 2.28] {
            b.tick(Volts::new(v));
        }
        // Captured the peak to within one 10 mV LSB.
        let err = (b.read_volts() - Volts::new(2.29)).abs();
        assert!(err <= b.adc().lsb(), "captured {}", b.read_volts());
    }

    #[test]
    fn prepare_loads_identity_values() {
        let mut b = UArchBlock::new();
        b.command(Command::Prepare(MinMax::Min));
        assert_eq!(b.read(), 0xFF);
        b.command(Command::Prepare(MinMax::Max));
        assert_eq!(b.read(), 0x00);
    }

    #[test]
    fn disabled_block_ignores_ticks_and_draws_nothing() {
        let mut b = UArchBlock::new();
        b.command(Command::Prepare(MinMax::Min));
        b.command(Command::Sample(MinMax::Min)); // ignored: not enabled
        b.tick(Volts::new(1.0));
        assert_eq!(b.read(), 0xFF);
        assert_eq!(b.load_current(Volts::new(2.55)), Amps::ZERO);
    }

    #[test]
    fn configure_off_stops_sampling() {
        let mut b = UArchBlock::new();
        b.command(Command::Configure(true));
        b.command(Command::Prepare(MinMax::Min));
        b.command(Command::Sample(MinMax::Min));
        b.tick(Volts::new(2.0));
        b.command(Command::Configure(false));
        b.tick(Volts::new(1.0));
        // The 1.0 V sample after disable is not captured.
        assert_eq!(b.read(), 200);
    }

    #[test]
    fn switching_min_to_max_mid_flight() {
        // The profile_end sequence: read the min, then re-prepare for max.
        let mut b = UArchBlock::new();
        b.command(Command::Configure(true));
        b.command(Command::Prepare(MinMax::Min));
        b.command(Command::Sample(MinMax::Min));
        b.tick(Volts::new(2.1));
        let v_min = b.read_volts();
        b.command(Command::Prepare(MinMax::Max));
        b.command(Command::Sample(MinMax::Max));
        b.tick(Volts::new(2.25));
        assert!(v_min.approx_eq(Volts::new(2.1), 1e-9));
        assert!(b.read_volts().approx_eq(Volts::new(2.25), 1e-9));
    }

    #[test]
    fn enabled_block_draws_nanowatts() {
        let mut b = UArchBlock::new();
        b.command(Command::Configure(true));
        let i = b.load_current(Volts::new(2.55));
        assert!(i.get() > 0.0 && i.get() < 100e-9);
    }
}

//! Closed-loop task profiling: run a load on the simulated plant while a
//! profiling mechanism watches the buffer voltage.
//!
//! This is where the two Culpeo-R implementations' imperfections become
//! measurable: quantization (8 vs 12 bits), sampling cadence (100 kHz vs
//! 1 ms), and the profiler's own power draw (which is charged to the task,
//! as §V-D specifies). The output is the `TaskObservation` the *device*
//! believes, to be fed to `culpeo::runtime::compute_vsafe`.

use culpeo::runtime::TaskObservation;
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{
    BreakOn, EventStepper, PowerSystem, RunOutcome, SpanEnd, VoltageSample, VoltageTrace,
};
use culpeo_units::{Amps, Seconds, Volts};

use crate::{Command, IsrProfiler, MinMax, UArchBlock, UArchProfiler};

/// Which Culpeo-R implementation observes the task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Profiler {
    /// The §V-C interrupt/ADC software implementation.
    Isr(IsrProfiler),
    /// The §V-D microarchitectural block.
    UArch(UArchProfiler),
}

/// Kind discriminator for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfilerKind {
    /// Culpeo-R-ISR.
    Isr,
    /// Culpeo-R-µArch.
    UArch,
}

impl Profiler {
    /// The implementation kind.
    #[must_use]
    pub fn kind(&self) -> ProfilerKind {
        match self {
            Profiler::Isr(_) => ProfilerKind::Isr,
            Profiler::UArch(_) => ProfilerKind::UArch,
        }
    }
}

/// The result of a profiled task execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledRun {
    /// What the device's profiler observed (quantized, rate-limited).
    pub observation: TaskObservation,
    /// Ground truth from the plant, for accuracy comparison.
    pub truth: RunOutcome,
}

/// Runs `load` on `sys` while `profiler` watches, returning the device's
/// observation alongside the plant's ground truth.
///
/// Returns `None` if the task browned out — there is no complete profile
/// to report then (the scheduler should re-profile from a higher voltage).
///
/// The integration step is chosen fine enough to resolve both the load and
/// the profiler's sampling cadence.
#[must_use]
pub fn profile_task(
    sys: &mut PowerSystem,
    load: &LoadProfile,
    profiler: &Profiler,
) -> Option<ProfiledRun> {
    match profiler {
        Profiler::Isr(cfg) => profile_isr(sys, load, cfg),
        Profiler::UArch(cfg) => profile_uarch(sys, load, cfg),
    }
}

fn sim_dt(load: &LoadProfile) -> Seconds {
    // 10 µs resolves a 1 ms pulse with 100 steps and the 100 kHz µArch
    // clock exactly; coarsen for second-scale loads to keep runs fast.
    if load.duration().get() > 1.0 {
        Seconds::from_micro(50.0)
    } else {
        Seconds::from_micro(10.0)
    }
}

/// Integration step for the post-task rebound phases.
///
/// Once the task ends the only dynamics left are the branch RC
/// redistributions (the profiler draw is nanoamp-scale), so the step only
/// needs to resolve the *fastest branch time constant* — not the task or
/// the sampling clock. A fifth of that constant keeps forward Euler well
/// inside its stability region; the clamp keeps plants with fast
/// decoupling branches on the task step and caps the coarsening at 1 ms.
fn rebound_dt(sys: &PowerSystem, task_dt: Seconds) -> Seconds {
    let tau = sys
        .buffer()
        .branches()
        .iter()
        .map(|b| b.esr().get() * b.capacitance().get())
        .fold(f64::INFINITY, f64::min);
    Seconds::new((tau / 5.0).clamp(task_dt.get(), 1e-3))
}

fn profile_isr(
    sys: &mut PowerSystem,
    load: &LoadProfile,
    cfg: &IsrProfiler,
) -> Option<ProfiledRun> {
    let dt = sim_dt(load);
    let adc_current = cfg.adc.load_current(sys.booster().v_out());
    let sample_every = (cfg.sample_period.get() / dt.get()).round().max(1.0) as usize;

    // profile_start(): configure the ADC and read V_start (bin-top
    // reconstruction — conservative for the energy term).
    let v_start = cfg.adc.read_high(sys.v_node());
    let mut v_min_code = v_start;

    // Run the task with the ISR sampling on its timer. The ADC's draw is
    // added to the load for the whole profiled window.
    let steps = load.duration().steps(dt).max(1);
    let mut truth_trace = VoltageTrace::new(8);
    let t0 = sys.time();
    let browned_out = {
        let mut stepper = EventStepper::new(sys, dt);
        let mut k = 0usize;
        let mut observe = |out: culpeo_powersim::StepOutput| {
            truth_trace.push(VoltageSample {
                t: out.t,
                v_node: out.v_node,
                i_in: out.i_in,
            });
            // The profiling timer is not phase-aligned with the task: its
            // first fire lands half a period in. This is what lets a pulse
            // as short as the sample period slip past the ISR (§VII-A's
            // 50 mA/1 ms anomaly).
            if (k + sample_every / 2).is_multiple_of(sample_every.max(1)) {
                // Timer ISR: read the ADC, update the software minimum.
                let reading = cfg.adc.read(out.v_node);
                v_min_code = v_min_code.min(reading);
            }
            k += 1;
        };
        matches!(
            stepper.run_profile_steps(
                load,
                steps,
                adc_current,
                BreakOn::LoadFault,
                Some(&mut observe),
            ),
            SpanEnd::Broke { .. }
        )
    };

    let (t_min, v_min_true) = truth_trace
        .minimum()
        .unwrap_or((Seconds::ZERO, sys.v_node()));

    if browned_out {
        return None;
    }

    // profile_end(): disable the timer/ADC, sleep, wake every 50 ms to
    // track the rebound maximum; stop after `rebound_stable_wakes`
    // non-increasing readings. The MCU is asleep between wakes, so the
    // simulation coarsens to the rebound step.
    let dt_rb = rebound_dt(sys, dt);
    let wake_steps = (cfg.rebound_wake_period.get() / dt_rb.get())
        .round()
        .max(1.0) as usize;
    let max_wakes = (cfg.rebound_timeout.get() / cfg.rebound_wake_period.get()).ceil() as u32;
    let mut v_final_code = cfg.adc.read_high(sys.v_node());
    let mut stable = 0u32;
    let mut stepper = EventStepper::new(sys, dt_rb);
    for _ in 0..max_wakes {
        // MCU asleep: only the buffer's own dynamics run.
        stepper.run_const(Amps::ZERO, wake_steps, BreakOn::Never, None);
        let reading = cfg.adc.read_high(stepper.v_node());
        if reading > v_final_code {
            v_final_code = reading;
            stable = 0;
        } else {
            stable += 1;
            if stable >= cfg.rebound_stable_wakes {
                break; // rebound_end()
            }
        }
    }

    let v_final_true = sys.v_node();
    Some(ProfiledRun {
        observation: clamp_observation(v_start, v_min_code, v_final_code),
        truth: RunOutcome {
            trace: truth_trace,
            v_start,
            v_min: v_min_true,
            t_min: Seconds::new(t_min.get() - t0.get()),
            v_final: v_final_true,
            brownout: None,
            collapsed: false,
            ledger: sys.ledger(),
        },
    })
}

fn profile_uarch(
    sys: &mut PowerSystem,
    load: &LoadProfile,
    cfg: &UArchProfiler,
) -> Option<ProfiledRun> {
    let dt = sim_dt(load);
    let mut block = UArchBlock::new();
    let tick_every = ((block.clock().period().get()) / dt.get()).round().max(1.0) as usize;

    // profile_start(): configure(on), read V_start (bin-top), then
    // prepare+sample(min).
    block.command(Command::Configure(true));
    let v_start = block.read_adc_high(sys.v_node());
    block.command(Command::Prepare(MinMax::Min));
    block.command(Command::Sample(MinMax::Min));

    let block_current = block.load_current(sys.booster().v_out());
    let steps = load.duration().steps(dt).max(1);
    let mut truth_trace = VoltageTrace::new(8);
    let t0 = sys.time();
    let browned_out = {
        let mut stepper = EventStepper::new(sys, dt);
        let mut k = 0usize;
        let block = &mut block;
        let mut observe = |out: culpeo_powersim::StepOutput| {
            truth_trace.push(VoltageSample {
                t: out.t,
                v_node: out.v_node,
                i_in: out.i_in,
            });
            if k.is_multiple_of(tick_every) {
                block.tick(out.v_node);
            }
            k += 1;
        };
        matches!(
            stepper.run_profile_steps(
                load,
                steps,
                block_current,
                BreakOn::LoadFault,
                Some(&mut observe),
            ),
            SpanEnd::Broke { .. }
        )
    };

    let (t_min, v_min_true) = truth_trace
        .minimum()
        .unwrap_or((Seconds::ZERO, sys.v_node()));

    if browned_out {
        return None;
    }

    // profile_end(): read the min, switch to max tracking.
    let v_min = block.read_volts();
    block.command(Command::Prepare(MinMax::Max));
    block.command(Command::Sample(MinMax::Max));

    // The block keeps tracking the rebound (no MCU involvement) for the
    // scheduler-chosen window, then rebound_done() reads the max. The
    // simulation coarsens to the rebound step; the block still ticks at
    // least once per simulated step, and the rebound is monotonic, so its
    // tracked maximum is the same window-end value either way.
    let dt_rb = rebound_dt(sys, dt);
    let tick_every_rb = ((block.clock().period().get()) / dt_rb.get())
        .round()
        .max(1.0) as usize;
    let rebound_steps = cfg.rebound_window.steps(dt_rb);
    {
        let mut stepper = EventStepper::new(sys, dt_rb);
        let mut k = 0usize;
        let block = &mut block;
        let mut observe = |out: culpeo_powersim::StepOutput| {
            if k.is_multiple_of(tick_every_rb) {
                block.tick(out.v_node);
            }
            k += 1;
        };
        stepper.run_const(
            block_current,
            rebound_steps,
            BreakOn::Never,
            Some(&mut observe),
        );
    }
    let v_final = block.read_volts_high();
    block.command(Command::Configure(false));

    let v_final_true = sys.v_node();
    Some(ProfiledRun {
        observation: clamp_observation(v_start, v_min, v_final),
        truth: RunOutcome {
            trace: truth_trace,
            v_start,
            v_min: v_min_true,
            t_min: Seconds::new(t_min.get() - t0.get()),
            v_final: v_final_true,
            brownout: None,
            collapsed: false,
            ledger: sys.ledger(),
        },
    })
}

/// Builds a consistent observation from possibly cross-quantized readings
/// (an 8-bit `v_min` can land above a 12-bit `v_final`, etc.).
fn clamp_observation(v_start: Volts, v_min: Volts, v_final: Volts) -> TaskObservation {
    let v_min = v_min.min(v_start).min(v_final);
    TaskObservation::new(v_start, v_min, v_final)
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo::PowerSystemModel;
    use culpeo_loadgen::synthetic::UniformLoad;
    use culpeo_units::Amps;

    fn plant_at(v: f64) -> PowerSystem {
        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(Volts::new(v));
        sys.force_output_enabled();
        sys
    }

    fn pulse(ma: f64, ms: f64) -> LoadProfile {
        UniformLoad::new(Amps::from_milli(ma), Seconds::from_milli(ms)).profile()
    }

    #[test]
    fn isr_observation_tracks_truth() {
        let mut sys = plant_at(2.3);
        let run = profile_task(
            &mut sys,
            &pulse(25.0, 10.0),
            &Profiler::Isr(IsrProfiler::msp430()),
        )
        .unwrap();
        let obs = run.observation;
        // Observed minimum within ~2 LSB + timing slack of the true one.
        assert!(
            obs.v_min.approx_eq(run.truth.v_min, 0.02),
            "obs {} vs truth {}",
            obs.v_min,
            run.truth.v_min
        );
        assert!(obs.v_start.approx_eq(Volts::new(2.3), 0.005));
        assert!(obs.v_final > obs.v_min);
    }

    #[test]
    fn uarch_observation_tracks_truth_with_10mv_grid() {
        let mut sys = plant_at(2.3);
        let run = profile_task(
            &mut sys,
            &pulse(25.0, 10.0),
            &Profiler::UArch(UArchProfiler::default()),
        )
        .unwrap();
        let obs = run.observation;
        assert!(
            obs.v_min.approx_eq(run.truth.v_min, 0.015),
            "obs {} vs truth {}",
            obs.v_min,
            run.truth.v_min
        );
        // 8-bit floor quantization never over-reads the minimum.
        assert!(obs.v_min <= run.truth.v_min + Volts::from_micro(1.0));
    }

    #[test]
    fn isr_misses_minimum_of_1ms_pulse_uarch_does_not() {
        // The Figure 10 anomaly: a 1 ms pulse fits between 1 ms ISR
        // samples, so the ISR's observed dip is much shallower than the
        // µArch block's.
        let load = pulse(50.0, 1.0);
        let mut sys_isr = plant_at(2.4);
        let isr = profile_task(&mut sys_isr, &load, &Profiler::Isr(IsrProfiler::msp430())).unwrap();
        let mut sys_ua = plant_at(2.4);
        let ua = profile_task(
            &mut sys_ua,
            &load,
            &Profiler::UArch(UArchProfiler::default()),
        )
        .unwrap();
        let isr_dip = isr.observation.v_start - isr.observation.v_min;
        let ua_dip = ua.observation.v_start - ua.observation.v_min;
        // Two mechanisms make the ISR's observed dip shallower: its
        // unaligned 1 ms timer samples mid-pulse (missing the end-of-pulse
        // minimum), and its 12-bit quantization floors less aggressively
        // than the µArch's 10 mV grid.
        assert!(
            ua_dip.get() > isr_dip.get() + 0.005,
            "µArch dip {ua_dip} should exceed ISR dip {isr_dip}"
        );
    }

    #[test]
    fn brownout_during_profiling_returns_none() {
        let mut sys = plant_at(1.7);
        let run = profile_task(
            &mut sys,
            &pulse(50.0, 100.0),
            &Profiler::UArch(UArchProfiler::default()),
        );
        assert!(run.is_none());
    }

    #[test]
    fn profiled_observation_feeds_culpeo_r() {
        let model = PowerSystemModel::capybara();
        let mut sys = plant_at(2.4);
        let run = profile_task(
            &mut sys,
            &pulse(25.0, 10.0),
            &Profiler::UArch(UArchProfiler::default()),
        )
        .unwrap();
        let est = culpeo::runtime::compute_vsafe(&run.observation, &model);
        // Sanity: between V_off and V_high, and above the no-ESR bound.
        assert!(est.v_safe > model.v_off());
        assert!(est.v_safe < model.v_high());
    }

    #[test]
    fn isr_adc_power_is_charged_to_the_task() {
        // Profile a tiny task twice: the ISR's ADC draw must make the
        // total discharge deeper than the µArch block's.
        let load = pulse(1.0, 500.0);
        let mut sys_isr = plant_at(2.4);
        let isr = profile_task(&mut sys_isr, &load, &Profiler::Isr(IsrProfiler::msp430())).unwrap();
        let mut sys_ua = plant_at(2.4);
        let ua = profile_task(
            &mut sys_ua,
            &load,
            &Profiler::UArch(UArchProfiler::default()),
        )
        .unwrap();
        // Compare *plant truth*, not quantized observations: the 8-bit
        // grid would mask the sub-millivolt effect. The ISR's ~72 µA ADC
        // draw over 500 ms pulls the buffer measurably lower than the
        // µArch block's ~55 nA.
        assert!(
            isr.truth.v_final.get() < ua.truth.v_final.get() - 0.0003,
            "ISR final {} should sit below µArch final {}",
            isr.truth.v_final,
            ua.truth.v_final
        );
    }

    #[test]
    fn profiler_kind_discriminates() {
        assert_eq!(
            Profiler::Isr(IsrProfiler::msp430()).kind(),
            ProfilerKind::Isr
        );
        assert_eq!(
            Profiler::UArch(UArchProfiler::default()).kind(),
            ProfilerKind::UArch
        );
    }
}

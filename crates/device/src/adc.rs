//! Quantizing ADC models with realistic power costs.

use culpeo_units::{Amps, Volts, Watts};

/// A successive-approximation ADC: quantizes a node voltage to `bits`
/// resolution over `[0, v_ref]`, drawing `active_power` while enabled.
///
/// The power matters: Culpeo-R charges its own sampling cost to the task
/// being profiled (§V-D), and the 1000× gap between the MSP430's on-chip
/// ADC (~180 µW) and the proposed 8-bit µArch ADC (~140 nW) is the headline
/// overhead argument for the hardware design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    bits: u8,
    v_ref: Volts,
    active_power: Watts,
}

impl Adc {
    /// Creates an ADC.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 16`, `v_ref > 0`, and power is
    /// non-negative.
    #[must_use]
    pub fn new(bits: u8, v_ref: Volts, active_power: Watts) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        assert!(v_ref.get() > 0.0, "reference voltage must be positive");
        assert!(active_power.get() >= 0.0, "power cannot be negative");
        Self {
            bits,
            v_ref,
            active_power,
        }
    }

    /// The MSP430FR-class on-chip 12-bit ADC used by Culpeo-R-ISR:
    /// 2.56 V reference (matching `V_high`), ~180 µW while sampling.
    #[must_use]
    pub fn msp430_adc12() -> Self {
        Self::new(12, Volts::new(2.56), Watts::from_micro(180.0))
    }

    /// The proposed Culpeo-µArch 8-bit ADC: 2.56 V reference (10 mV LSB),
    /// 140 nW.
    #[must_use]
    pub fn uarch_8bit() -> Self {
        Self::new(8, Volts::new(2.56), Watts::new(140e-9))
    }

    /// Resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Reference (full-scale) voltage.
    #[must_use]
    pub fn v_ref(&self) -> Volts {
        self.v_ref
    }

    /// One least-significant-bit step in volts.
    #[must_use]
    pub fn lsb(&self) -> Volts {
        Volts::new(self.v_ref.get() / f64::from(self.code_max() as u32 + 1))
    }

    /// The largest representable code.
    #[must_use]
    pub fn code_max(&self) -> u16 {
        ((1u32 << self.bits) - 1) as u16
    }

    /// Converts a node voltage to a code (floor quantization, clamped to
    /// range). Flooring under-reads, which is the conservative direction
    /// for minimum tracking.
    #[must_use]
    pub fn sample(&self, v: Volts) -> u16 {
        let steps = f64::from(self.code_max() as u32 + 1);
        let code = (v.get() / self.v_ref.get() * steps).floor();
        code.clamp(0.0, f64::from(self.code_max() as u32)) as u16
    }

    /// Converts a code back to the voltage at the *bottom* of its bin.
    #[must_use]
    pub fn to_volts(&self, code: u16) -> Volts {
        Volts::new(f64::from(code.min(self.code_max()) as u32) * self.lsb().get())
    }

    /// One-shot read: quantizes and returns the reconstructed voltage at
    /// the *bottom* of its bin — the conservative direction when tracking
    /// a minimum.
    #[must_use]
    pub fn read(&self, v: Volts) -> Volts {
        self.to_volts(self.sample(v))
    }

    /// One-shot read reconstructed at the *top* of its bin. The true value
    /// lies in `[code·LSB, (code+1)·LSB)`, so this is the conservative
    /// direction for quantities that feed `V_safe` positively: the
    /// starting voltage and the rebound maximum. Under-reading those would
    /// silently shrink the estimated requirement.
    #[must_use]
    pub fn read_high(&self, v: Volts) -> Volts {
        Volts::new(self.to_volts(self.sample(v)).get() + self.lsb().get())
    }

    /// The extra load current this ADC imposes while enabled, as seen at
    /// the regulated output rail `v_out`.
    ///
    /// # Panics
    ///
    /// Panics if `v_out` is not strictly positive.
    #[must_use]
    pub fn load_current(&self, v_out: Volts) -> Amps {
        self.active_power.current_at(v_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uarch_lsb_is_10mv() {
        let adc = Adc::uarch_8bit();
        assert!(adc.lsb().approx_eq(Volts::from_milli(10.0), 1e-12));
        assert_eq!(adc.code_max(), 255);
    }

    #[test]
    fn msp430_lsb_is_sub_mv() {
        let adc = Adc::msp430_adc12();
        assert!(adc.lsb().get() < 1e-3);
        assert_eq!(adc.code_max(), 4095);
    }

    #[test]
    fn quantization_floors() {
        let adc = Adc::uarch_8bit();
        // 2.499 V / 10 mV = 249.9 → code 249 → 2.49 V.
        assert_eq!(adc.sample(Volts::new(2.499)), 249);
        assert!(adc
            .read(Volts::new(2.499))
            .approx_eq(Volts::new(2.49), 1e-12));
        // Quantization never over-reads.
        for v in [0.0, 0.005, 1.6, 1.601, 2.56, 3.0] {
            assert!(adc.read(Volts::new(v)) <= Volts::new(v).max(Volts::ZERO));
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let adc = Adc::uarch_8bit();
        assert_eq!(adc.sample(Volts::new(-1.0)), 0);
        assert_eq!(adc.sample(Volts::new(5.0)), 255);
        assert_eq!(adc.to_volts(999), adc.to_volts(255));
    }

    #[test]
    fn error_bounded_by_lsb() {
        let adc = Adc::msp430_adc12();
        for k in 0..100 {
            let v = Volts::new(1.6 + k as f64 * 0.005);
            let err = v - adc.read(v);
            assert!(err.get() >= 0.0 && err.get() <= adc.lsb().get() + 1e-12);
        }
    }

    #[test]
    fn power_gap_between_implementations() {
        let isr = Adc::msp430_adc12().load_current(Volts::new(2.55));
        let uarch = Adc::uarch_8bit().load_current(Volts::new(2.55));
        // The µArch ADC is ~3 orders of magnitude cheaper.
        assert!(isr.get() / uarch.get() > 1000.0);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn rejects_zero_bits() {
        let _ = Adc::new(0, Volts::new(2.5), Watts::ZERO);
    }
}

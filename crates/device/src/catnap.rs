//! The measurement procedure of CatNap-style voltage-as-energy profiling.
//!
//! CatNap estimates a task's energy from the buffer voltage before and
//! after a profiled execution. *When* the "after" reading happens is the
//! crux (§II-D): the published implementation reads essentially at
//! completion — before the ESR drop has rebounded — while a delayed
//! reading sees a partially recovered voltage. Neither is an intentional
//! ESR measurement; whatever drop is captured is mistaken for consumed
//! energy.

use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{BreakOn, EventStepper, PowerSystem, SpanEnd};
use culpeo_units::{Amps, Seconds, Volts};

use crate::Adc;

/// A CatNap profiling measurement: start voltage and the end voltage read
/// `delay` after task completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatnapMeasurement {
    /// Buffer voltage (ADC-quantized) when the task started.
    pub v_start: Volts,
    /// Buffer voltage (ADC-quantized) at the configured delay after the
    /// task completed.
    pub v_end: Volts,
}

/// Runs `load` on `sys` and takes CatNap's two voltage readings through
/// the MCU's 12-bit ADC.
///
/// * `delay = 0` reproduces **Catnap-Measured**: the reading happens at
///   the final loaded instant, capturing the un-rebounded node voltage.
/// * `delay = 2 ms` reproduces **Catnap-Slow**: the load is removed and
///   the node rebounds for 2 ms first.
///
/// Returns `None` if the task browns out (no measurement exists then).
#[must_use]
pub fn measure_for_catnap(
    sys: &mut PowerSystem,
    load: &LoadProfile,
    delay: Seconds,
) -> Option<CatnapMeasurement> {
    let adc = Adc::msp430_adc12();
    let dt = Seconds::from_micro(10.0);
    let v_start = adc.read(sys.v_node());

    let steps = load.duration().steps(dt).max(1);
    let mut stepper = EventStepper::new(sys, dt);
    if let SpanEnd::Broke { .. } =
        stepper.run_profile_steps(load, steps, Amps::ZERO, BreakOn::LoadFault, None)
    {
        return None;
    }

    let v_end = if delay.get() <= 0.0 {
        // Measured at completion, load still effectively applied.
        adc.read(stepper.last_step_v())
    } else {
        let idle_steps = delay.steps(dt).max(1);
        stepper.run_const(Amps::ZERO, idle_steps, BreakOn::Never, None);
        adc.read(stepper.last_step_v())
    };

    Some(CatnapMeasurement {
        v_start,
        v_end: v_end.min(v_start),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_loadgen::synthetic::{PulseLoad, UniformLoad};
    use culpeo_units::Amps;

    fn plant_at(v: f64) -> PowerSystem {
        // Two-branch bank: the rebound has a real time constant, which is
        // what separates Measured from Slow.
        let mut sys = PowerSystem::capybara_two_branch();
        sys.set_buffer_voltage(Volts::new(v));
        sys.force_output_enabled();
        sys
    }

    #[test]
    fn measured_sees_deeper_drop_than_slow_on_uniform_load() {
        let load = UniformLoad::new(Amps::from_milli(25.0), Seconds::from_milli(10.0)).profile();
        let m = measure_for_catnap(&mut plant_at(2.4), &load, Seconds::ZERO).unwrap();
        let s = measure_for_catnap(&mut plant_at(2.4), &load, Seconds::from_milli(2.0)).unwrap();
        // The immediate reading captures the un-rebounded voltage.
        assert!(
            m.v_end < s.v_end,
            "measured end {} should sit below slow end {}",
            m.v_end,
            s.v_end
        );
    }

    #[test]
    fn pulse_tail_hides_the_esr_drop_from_both() {
        // After 100 ms at 1.5 mA, the 25 mA pulse's ESR drop has long
        // rebounded: both readings land close together, near the true
        // final voltage — CatNap "sees" almost no ESR cost.
        let load = PulseLoad::new(Amps::from_milli(25.0), Seconds::from_milli(10.0)).profile();
        let m = measure_for_catnap(&mut plant_at(2.4), &load, Seconds::ZERO).unwrap();
        let s = measure_for_catnap(&mut plant_at(2.4), &load, Seconds::from_milli(2.0)).unwrap();
        assert!(
            (s.v_end - m.v_end).get() < 0.02,
            "tail should hide the pulse drop: measured {} vs slow {}",
            m.v_end,
            s.v_end
        );
    }

    #[test]
    fn brownout_returns_none() {
        let load = UniformLoad::new(Amps::from_milli(50.0), Seconds::from_milli(100.0)).profile();
        assert!(measure_for_catnap(&mut plant_at(1.7), &load, Seconds::ZERO).is_none());
    }

    #[test]
    fn v_end_never_exceeds_v_start() {
        let load = UniformLoad::new(Amps::from_milli(5.0), Seconds::from_milli(1.0)).profile();
        let m = measure_for_catnap(&mut plant_at(2.4), &load, Seconds::from_milli(2.0)).unwrap();
        assert!(m.v_end <= m.v_start);
    }
}

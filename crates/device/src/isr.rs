//! The interrupt-driven Culpeo-R software profiler (§V-C).

use culpeo_units::Seconds;

use crate::Adc;

/// Configuration of the Culpeo-R-ISR implementation: a hardware timer
/// fires an ISR that reads the on-chip ADC and updates the minimum in
/// software; after the task, the MCU sleeps and wakes periodically to
/// track the rebound maximum.
///
/// The paper's prototype uses a 1 ms profiling timer and 50 ms rebound
/// wakeups on an MSP430 with its 12-bit, ~180 µW ADC; those are the
/// defaults. The coarse 1 ms cadence is a real limitation the evaluation
/// exposes — it can *miss* the minimum of a 1 ms pulse (Figure 10's
/// 50 mA/1 ms anomaly), which the 100 kHz µArch block does not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsrProfiler {
    /// The ADC the ISR reads.
    pub adc: Adc,
    /// Period of the profiling timer interrupt.
    pub sample_period: Seconds,
    /// Period of the rebound-tracking wakeups.
    pub rebound_wake_period: Seconds,
    /// Stop rebound tracking after this many consecutive non-increasing
    /// readings.
    pub rebound_stable_wakes: u32,
    /// Give up on rebound tracking after this long.
    pub rebound_timeout: Seconds,
}

impl IsrProfiler {
    /// The paper's MSP430 prototype configuration.
    #[must_use]
    pub fn msp430() -> Self {
        Self {
            adc: Adc::msp430_adc12(),
            sample_period: Seconds::from_milli(1.0),
            rebound_wake_period: Seconds::from_milli(50.0),
            rebound_stable_wakes: 2,
            rebound_timeout: Seconds::new(2.0),
        }
    }

    /// A faster (and more power-hungry) variant sampling every 100 µs,
    /// for sensitivity studies on the ISR rate.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            sample_period: Seconds::from_micro(100.0),
            ..Self::msp430()
        }
    }
}

impl Default for IsrProfiler {
    fn default() -> Self {
        Self::msp430()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msp430_defaults_match_paper() {
        let p = IsrProfiler::msp430();
        assert!(p.sample_period.approx_eq(Seconds::from_milli(1.0), 1e-12));
        assert!(p
            .rebound_wake_period
            .approx_eq(Seconds::from_milli(50.0), 1e-12));
        assert_eq!(p.adc.bits(), 12);
    }

    #[test]
    fn fast_variant_is_faster() {
        assert!(IsrProfiler::fast().sample_period < IsrProfiler::msp430().sample_period);
    }
}

//! Device-side simulation: ADCs, the Culpeo-µArch peripheral, the
//! interrupt-driven profiler, and intermittent task execution.
//!
//! `culpeo-core` computes `V_safe` from *observations*; this crate models
//! how a real device actually obtains them, with all the imperfections the
//! paper's evaluation turns on:
//!
//! * [`Adc`] — a quantizing ADC with a power cost that feeds back into the
//!   load (profiling perturbs the thing being profiled);
//! * [`UArchBlock`] — the proposed Culpeo-µArch peripheral (§V-D,
//!   Figure 9): an 8-bit ADC, digital comparator, and one min/max capture
//!   register, driven by a 100 kHz clock, commanded through the Table II
//!   interface;
//! * [`IsrProfiler`] — the Culpeo-R-ISR software implementation (§V-C):
//!   a 1 ms timer ISR reading a 12-bit on-chip ADC, then a 50 ms sleep/wake
//!   loop tracking the rebound;
//! * [`profile_task`] — the closed loop: run a task on the simulated plant
//!   while a profiler watches, producing the (quantized, rate-limited)
//!   [`TaskObservation`](culpeo::runtime::TaskObservation) the device would
//!   really have measured;
//! * [`intermittent`] — power-failure-and-retry task execution, for
//!   demonstrating what `V_safe` buys end-to-end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adc;
mod catnap;
mod isr;
mod profiler;
mod uarch;

pub mod intermittent;

pub use adc::Adc;
pub use catnap::{measure_for_catnap, CatnapMeasurement};
pub use isr::IsrProfiler;
pub use profiler::{profile_task, ProfiledRun, Profiler, ProfilerKind};
pub use uarch::{Command, MinMax, UArchBlock, UArchProfiler};

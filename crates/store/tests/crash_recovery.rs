//! The crash-safety property, stated as a property test: for an
//! arbitrary record stream and an arbitrary crash byte offset, recovery
//! yields exactly the frames wholly within the surviving prefix — no
//! loss, no phantom records — and a second recovery repairs nothing.
//!
//! The crash model leans on the prefix property of appends (a crash
//! leaves each file a byte prefix of what was written, in global append
//! order): segments wholly before the crash offset survive intact, the
//! segment containing it is truncated mid-frame, and segments after it
//! never made it to disk.

use culpeo_store::{
    recover, scan, segment_files, Durability, Store, StoreConfig, FRAME_LEN, QUARANTINE_SUFFIX,
};
use proptest::prelude::*;
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("culpeo-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_config() -> StoreConfig {
    StoreConfig {
        segment_bytes: 3 * FRAME_LEN as u64, // rotate every 3 records
        ring_capacity: 128,
        durability: Durability::Manual,
        max_pending: 4096,
    }
}

/// Writes `triples` through a real store (rotation included), then
/// simulates `kill -9` after exactly `crash_at` bytes of the global
/// stream reached disk. Returns the number of whole frames in the
/// surviving prefix.
fn write_then_crash(dir: &Path, triples: &[(u64, f64, f64, f64)], crash_frac: f64) -> u64 {
    let (store, _) = Store::open(dir, tiny_config()).unwrap();
    for &(device, v_start, v_min, v_final) in triples {
        store.append(device, v_start, v_min, v_final).unwrap();
    }
    store.sync().unwrap();
    drop(store);

    let segs = segment_files(dir).unwrap();
    let total: u64 = segs.iter().map(|p| fs::metadata(p).unwrap().len()).sum();
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let crash_at = ((total as f64) * crash_frac.clamp(0.0, 1.0)).floor() as u64;

    let mut cum = 0u64;
    for path in &segs {
        let len = fs::metadata(path).unwrap().len();
        if cum + len <= crash_at {
            cum += len;
            continue; // wholly durable before the crash
        }
        if crash_at > cum {
            // The crash lands inside this segment: its prefix survives.
            let keep = crash_at - cum;
            let f = OpenOptions::new().write(true).open(path).unwrap();
            f.set_len(keep).unwrap();
            cum += len;
        } else {
            // Created after the crash point: never reached disk.
            fs::remove_file(path).unwrap();
            cum += len;
        }
    }
    crash_at / FRAME_LEN as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recovery_yields_exactly_the_surviving_prefix(
        triples in proptest::collection::vec(
            (1u64..4, 2.0..3.0f64, 1.5..2.2f64, 1.9..2.9f64),
            1..40,
        ),
        crash_frac in 0.0..1.0f64,
    ) {
        let dir = fresh_dir("prefix");
        let expect = write_then_crash(&dir, &triples, crash_frac);

        let report = recover(&dir).unwrap();
        prop_assert_eq!(report.records_recovered, expect, "no loss, no phantoms");
        prop_assert!(report.quarantined.is_empty(), "a crash never corrupts");

        // Idempotence: a recovered directory has nothing left to repair.
        let again = recover(&dir).unwrap();
        prop_assert_eq!(again.records_recovered, expect);
        prop_assert_eq!(again.truncated_bytes, 0);
        prop_assert!(again.quarantined.is_empty());

        // Reopening assigns fresh sequence numbers that continue each
        // device's recovered history (per-device monotonicity survives
        // the crash).
        let (store, _) = Store::open(&dir, tiny_config()).unwrap();
        for device in store.devices() {
            let snap = store.device(device).unwrap();
            let written = triples.iter().filter(|t| t.0 == device).count() as u64;
            prop_assert!(snap.last_seq <= written, "no phantom sequence numbers");
            let acked = store.append(device, 2.5, 2.0, 2.4).unwrap();
            prop_assert_eq!(acked.seq, snap.last_seq + 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_is_read_only_and_agrees_with_recovery(
        triples in proptest::collection::vec(
            (1u64..3, 2.0..3.0f64, 1.5..2.2f64, 1.9..2.9f64),
            1..25,
        ),
        crash_frac in 0.0..1.0f64,
    ) {
        let dir = fresh_dir("scan");
        let expect = write_then_crash(&dir, &triples, crash_frac);

        let before = scan(&dir).unwrap();
        prop_assert_eq!(before.records, expect);
        // scan() must not have repaired anything: a second scan sees the
        // same torn bytes.
        let still = scan(&dir).unwrap();
        prop_assert_eq!(still.torn_bytes, before.torn_bytes);

        let report = recover(&dir).unwrap();
        prop_assert_eq!(report.records_recovered, before.records);
        prop_assert_eq!(report.truncated_bytes, before.torn_bytes);
        let after = scan(&dir).unwrap();
        prop_assert_eq!(after.torn_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Running `recover()` twice over a directory with both a torn tail
    /// *and* deterministic bit rot is the same as running it once: the
    /// second pass must not move a byte — same segment contents, same
    /// file set, same quarantine renames — and must report nothing left
    /// to repair. (The earlier properties cover torn-only directories;
    /// this one forces the quarantine path into the comparison.)
    #[test]
    fn recovery_is_idempotent_over_torn_and_corrupt_segments(
        triples in proptest::collection::vec(
            (1u64..4, 2.0..3.0f64, 1.5..2.2f64, 1.9..2.9f64),
            4..40,
        ),
        crash_frac in 0.2..1.0f64,
        corrupt_frac in 0.0..1.0f64,
        flip_bit in 0u32..8,
    ) {
        let dir = fresh_dir("idem");
        write_then_crash(&dir, &triples, crash_frac);

        // Deterministic bit rot inside the surviving bytes: flip one bit
        // at a fraction of the remaining global stream.
        let segs = segment_files(&dir).unwrap();
        let total: u64 = segs.iter().map(|p| fs::metadata(p).unwrap().len()).sum();
        if total > 0 {
            #[allow(
                clippy::cast_precision_loss,
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss
            )]
            let mut rot_at = ((total as f64) * corrupt_frac).floor() as u64;
            rot_at = rot_at.min(total - 1);
            let mut cum = 0u64;
            for path in &segs {
                let len = fs::metadata(path).unwrap().len();
                if rot_at < cum + len {
                    let mut bytes = fs::read(path).unwrap();
                    #[allow(clippy::cast_possible_truncation)]
                    let idx = (rot_at - cum) as usize;
                    bytes[idx] ^= 1 << flip_bit;
                    fs::write(path, &bytes).unwrap();
                    break;
                }
                cum += len;
            }
        }

        let first = recover(&dir).unwrap();
        let snap1 = dir_snapshot(&dir);
        let second = recover(&dir).unwrap();
        let snap2 = dir_snapshot(&dir);

        prop_assert_eq!(snap1, snap2, "second recovery must not move a byte");
        prop_assert_eq!(second.records_recovered, first.records_recovered);
        prop_assert_eq!(second.truncated_bytes, 0, "nothing left to truncate");
        // The quarantine set is stable: the first pass lists a segment it
        // quarantines by its live name, later passes by the renamed file —
        // the same set once the rename suffix is stripped.
        let canon = |names: &[String]| {
            let mut v: Vec<String> = names
                .iter()
                .map(|n| n.trim_end_matches(QUARANTINE_SUFFIX).to_string())
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(canon(&second.quarantined), canon(&first.quarantined));

        // The recovered directory is a valid store: it reopens, and its
        // index matches what a third recovery (inside open) reports.
        let (store, reopen) = Store::open(&dir, tiny_config()).unwrap();
        prop_assert_eq!(reopen.records_recovered, first.records_recovered);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Every file under `dir` (quarantined renames included) with its exact
/// bytes — the equality witness for recovery idempotence.
fn dir_snapshot(dir: &Path) -> std::collections::BTreeMap<String, Vec<u8>> {
    let mut snap = std::collections::BTreeMap::new();
    for entry in fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        snap.insert(
            entry.file_name().to_string_lossy().into_owned(),
            fs::read(entry.path()).unwrap(),
        );
    }
    snap
}

/// The deterministic torn-tail battery the property test samples around:
/// tear the last frame at the exact boundary offsets that historically
/// hide off-by-ones (0 extra bytes, 1 byte, and all-but-one byte).
#[test]
fn torn_tail_battery_at_frame_boundaries() {
    for (tag, extra) in [("b0", 0usize), ("b1", 1), ("bm1", FRAME_LEN - 1)] {
        let dir = fresh_dir(&format!("battery-{tag}"));
        let (store, _) = Store::open(&dir, tiny_config()).unwrap();
        for _ in 0..4 {
            store.append(1, 2.3, 2.1, 2.28).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        // Rewrite the directory to hold 4 complete frames plus `extra`
        // bytes of a fifth, torn frame on the last segment.
        let segs = segment_files(&dir).unwrap();
        let last = segs.last().unwrap();
        let mut bytes = fs::read(last).unwrap();
        let fifth = culpeo_store::Record {
            device: 1,
            seq: 5,
            v_start: 2.3,
            v_min: 2.1,
            v_final: 2.28,
        }
        .encode();
        bytes.extend_from_slice(&fifth[..extra]);
        fs::write(last, &bytes).unwrap();

        let report = recover(&dir).unwrap();
        assert_eq!(report.records_recovered, 4, "case {tag}");
        assert_eq!(report.truncated_bytes, extra as u64, "case {tag}");
        assert!(report.quarantined.is_empty(), "case {tag}");
        let again = recover(&dir).unwrap();
        assert_eq!(again.truncated_bytes, 0, "case {tag}: idempotent");
        let _ = fs::remove_dir_all(&dir);
    }
}

//! The group-commit durability protocol, extracted and generic over the
//! [`culpeo_exec::shim`] vocabulary.
//!
//! The store's one hard invariant — *every acked record survives
//! `kill -9` at any byte offset* — reduces to an ordering claim: an
//! append call may not return success (ack) before an `fsync` covering
//! its record has completed. Under load, one fsync per record would
//! serialise the ingest path on the disk, so durability is
//! **leader-based group commit**: concurrent writers race on a small
//! mutex; the first to find no leader active becomes the leader, syncs
//! *everything appended so far* (one fsync covers the whole group), and
//! publishes the covered high-water mark; the rest park on a condvar and
//! re-check. Batching therefore *widens automatically under overload* —
//! the more writers pile up behind one fsync, the more records that
//! fsync acks — which is exactly the explicit-degradation shape the
//! serving layer wants.
//!
//! The ordering that makes the ack safe:
//!
//! 1. the leader runs `sync` (the real fsync) to completion **first**;
//! 2. only then does it advance `durable` (release store);
//! 3. only a `durable ≥ seq` observation (acquire load) lets any writer
//!    return.
//!
//! Like the sweep-claim and reactor protocols before it, the function
//! lives here as a free generic so production (instantiated with
//! `std::sync` types; monomorphises to plain std calls) and the
//! `culpeo-race` model checker (instantiated with cooperative model
//! types; explored over every interleaving up to a preemption bound)
//! execute the *same protocol source*. The battery's
//! `store-group-commit` phase proves the no-ack-before-durability
//! invariant; its `commit-ack-first` mutant shows the checker catches
//! the tempting bug of publishing `durable` before the fsync lands.

use culpeo_exec::shim::{AtomicU64Shim, CondvarShim, MutexShim};
use std::sync::atomic::Ordering;

/// The group-commit coordination word, guarded by the commit mutex.
#[derive(Debug, Default)]
pub struct CommitState {
    /// A leader is currently between claiming leadership and finishing
    /// its fsync; followers must wait instead of issuing a second,
    /// redundant fsync for the same group.
    pub leader_active: bool,
}

/// Locks the commit mutex, recovering from poison: the state is one
/// resettable bool, so the safe response to a poisoned lock is to clear
/// the flag (worst case: one redundant fsync) and move on.
fn lock_commit<M: MutexShim<CommitState>>(state: &M) -> M::Guard<'_> {
    match state.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            state.clear_poison();
            let mut g = poisoned.into_inner();
            g.leader_active = false;
            g
        }
    }
}

/// Blocks until the record with global sequence `seq` is durable,
/// becoming the fsync leader if no one else is. Returns the number of
/// fsync rounds *this* caller led (0 when a concurrent leader's group
/// covered it — the batching observable the stats report).
///
/// `sync` must make every record appended so far durable and return the
/// global high-water mark it covered (which is `≥ seq`, because `seq`
/// was appended before this call). On `Err` the leadership is released
/// and the error propagates; parked writers elect a new leader and
/// retry, so one failed fsync never wedges the group.
///
/// # Errors
///
/// Returns `sync`'s error unchanged; no ack has been published for any
/// record the failed round would have covered.
pub fn commit_durable<M, C, A, E>(
    state: &M,
    cv: &C,
    durable: &A,
    seq: u64,
    mut sync: impl FnMut() -> Result<u64, E>,
) -> Result<usize, E>
where
    M: MutexShim<CommitState>,
    C: CondvarShim<CommitState, M>,
    A: AtomicU64Shim,
{
    let mut rounds = 0usize;
    loop {
        if durable.load(Ordering::Acquire) >= seq {
            return Ok(rounds);
        }
        let mut g = lock_commit(state);
        if durable.load(Ordering::Acquire) >= seq {
            // A leader finished while this writer queued on the lock.
            return Ok(rounds);
        }
        if g.leader_active {
            // Park until the current round completes, then re-check:
            // the round may have started before this record was
            // appended, in which case a second round is needed.
            let parked = cv.wait(g, state);
            drop(parked);
            continue;
        }
        g.leader_active = true;
        drop(g);
        let result = sync();
        if let Ok(upto) = &result {
            // Durability is published before any waiter is woken, so a
            // woken writer's `durable >= seq` check is an ack backed by
            // a completed fsync — never a promise.
            durable.store(*upto, Ordering::Release);
        }
        let mut g = lock_commit(state);
        g.leader_active = false;
        cv.notify_all();
        drop(g);
        rounds += 1;
        result?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::{Arc, Condvar, Mutex};

    #[test]
    fn single_writer_leads_its_own_round() {
        let state = Mutex::new(CommitState::default());
        let cv = Condvar::new();
        let durable = AtomicU64::new(0);
        let appended = AtomicU64::new(3);
        let rounds = commit_durable(&state, &cv, &durable, 3, || {
            Ok::<u64, ()>(appended.load(Ordering::Acquire))
        })
        .unwrap();
        assert_eq!(rounds, 1);
        assert_eq!(durable.load(Ordering::Acquire), 3);
    }

    #[test]
    fn already_durable_records_ack_without_a_round() {
        let state = Mutex::new(CommitState::default());
        let cv = Condvar::new();
        let durable = AtomicU64::new(9);
        let rounds = commit_durable(&state, &cv, &durable, 5, || -> Result<u64, ()> {
            unreachable!("no fsync needed")
        })
        .unwrap();
        assert_eq!(rounds, 0);
    }

    #[test]
    fn a_failed_sync_releases_leadership_and_propagates() {
        let state = Mutex::new(CommitState::default());
        let cv = Condvar::new();
        let durable = AtomicU64::new(0);
        let err = commit_durable(&state, &cv, &durable, 1, || Err::<u64, &str>("disk gone"));
        assert_eq!(err, Err("disk gone"));
        assert!(!lock_commit(&state).leader_active);
        assert_eq!(durable.load(Ordering::Acquire), 0, "no ack was published");
    }

    #[test]
    fn concurrent_writers_batch_under_one_leader() {
        // 8 writers, one shared fsync counter: every writer must see its
        // record durable on return, and the total fsync count must come
        // in under one-per-record (the group-commit win). The schedule
        // dependence of the exact count is why the exhaustive proof
        // lives in culpeo-race, not here.
        let state = Arc::new(Mutex::new(CommitState::default()));
        let cv = Arc::new(Condvar::new());
        let durable = Arc::new(AtomicU64::new(0));
        let appended = Arc::new(AtomicU64::new(0));
        let synced = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (state, cv, durable, appended, synced) = (
                    Arc::clone(&state),
                    Arc::clone(&cv),
                    Arc::clone(&durable),
                    Arc::clone(&appended),
                    Arc::clone(&synced),
                );
                std::thread::spawn(move || {
                    let seq = appended.fetch_add(1, Ordering::AcqRel) + 1;
                    commit_durable(&*state, &*cv, &*durable, seq, || {
                        let upto = appended.load(Ordering::Acquire);
                        synced.fetch_add(1, Ordering::AcqRel);
                        Ok::<u64, ()>(upto)
                    })
                    .unwrap();
                    assert!(durable.load(Ordering::Acquire) >= seq);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(durable.load(Ordering::Acquire), 8);
        assert!(synced.load(Ordering::Acquire) >= 1);
    }
}

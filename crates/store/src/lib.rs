//! culpeo-store: append-only, crash-safe segmented log for observation
//! triples.
//!
//! The telemetry ingest path needs one guarantee the in-memory reactor
//! cannot give: **every acked record survives `kill -9` at any byte
//! offset**. This crate provides it with three small pieces:
//!
//! * [`frame`] — the on-disk unit: a length-prefixed, CRC-32-guarded
//!   48-byte frame holding one `(device, seq, V_start, V_min, V_final)`
//!   record, plus the scanner that classifies damage as *torn* (crash
//!   residue, truncate) or *corrupt* (bit rot, quarantine).
//! * [`commit`] — leader-based group-commit durability, written over the
//!   [`culpeo_exec::shim`] vocabulary so the exact production protocol is
//!   model-checked by `culpeo-race` (phase `store-group-commit`, mutant
//!   `commit-ack-first`).
//! * [`store`] — the segmented log itself: rotation, the per-device
//!   ring-buffer index, overload shedding, and startup recovery
//!   (idempotent torn-tail truncation + segment quarantine).
//!
//! ```no_run
//! use culpeo_store::{Store, StoreConfig};
//! # fn main() -> Result<(), culpeo_store::StoreError> {
//! let dir = std::env::temp_dir().join("culpeo-observations");
//! let (store, report) = Store::open(&dir, StoreConfig::default())?;
//! assert_eq!(report.schema_version, 2);
//! let acked = store.append(7, 2.30, 2.11, 2.28)?; // durable on return
//! assert_eq!(acked.seq, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commit;
pub mod frame;
pub mod store;

pub use commit::{commit_durable, CommitState};
pub use frame::{crc32, scan_frame, Record, Scan, FRAME_LEN, HEADER_LEN, PAYLOAD_LEN};
pub use store::{
    recover, scan, segment_files, segment_path, Acked, DeviceSnapshot, Durability, RecoveryReport,
    Store, StoreConfig, StoreError, StoreStat, QUARANTINE_SUFFIX,
};

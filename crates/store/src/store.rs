//! The segmented log itself: append, rotate, recover, serve.
//!
//! A store directory holds numbered segment files (`seg-00000000.log`,
//! `seg-00000001.log`, …), each a plain concatenation of
//! [`frame`](crate::frame) frames. Appends go to the highest-numbered
//! segment; when it passes [`StoreConfig::segment_bytes`] the writer
//! rotates to a fresh file (the old one joins the unsynced list until
//! the next group-commit round covers it). Durability is the
//! [`commit`] protocol: an [`Store::append`] in
//! [`Durability::Fsync`] mode returns only after an fsync covering its
//! record has completed.
//!
//! [`Store::open`] always runs recovery first: scan every segment in
//! order, truncate a torn tail on the last one (the interrupted append a
//! `kill -9` leaves behind), quarantine any segment with a CRC failure
//! (bit rot — renamed aside, never silently skipped), and rebuild the
//! per-device ring-buffer index from the surviving records. Recovery is
//! idempotent: a second scan of a recovered directory finds nothing to
//! repair.

use std::collections::{HashMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use serde::Serialize;

use crate::commit::{self, CommitState};
use crate::frame::{scan_frame, Record, Scan, FRAME_LEN};

/// Suffix a quarantined segment file is renamed to.
pub const QUARANTINE_SUFFIX: &str = ".quarantined";

/// How the store is stood up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Rotation threshold: a segment past this size is closed and a new
    /// one opened. Small values exercise rotation; production default is
    /// 4 MiB.
    pub segment_bytes: u64,
    /// Per-device ring-buffer index capacity: how many recent records
    /// `GET /v1/observe/:device` style reads can see without touching
    /// disk.
    pub ring_capacity: usize,
    /// Whether appends block on group-commit fsync (production) or
    /// leave durability to explicit [`Store::sync`] calls (tests, fault
    /// injectors, and bulk fills).
    pub durability: Durability,
    /// Ingest shed threshold: when this many appended records await
    /// durability, further appends fail with
    /// [`StoreError::Overloaded`] instead of growing the window of
    /// acked-but-unsynced data (there is none: un-durable records are
    /// simply never acked).
    pub max_pending: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 4 * 1024 * 1024,
            ring_capacity: 64,
            durability: Durability::Fsync,
            max_pending: 4096,
        }
    }
}

/// The durability mode of [`StoreConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Every append blocks until a group-commit fsync covers it.
    Fsync,
    /// Appends return immediately and nothing is acked durable until
    /// [`Store::sync`]; crash injectors use this to stage exact
    /// durable/undurable boundaries.
    Manual,
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem said no.
    Io(std::io::Error),
    /// The un-durable backlog hit [`StoreConfig::max_pending`]; the
    /// caller should shed (HTTP 503 + `Retry-After`) rather than queue.
    Overloaded {
        /// Records appended but not yet durable.
        pending: u64,
    },
    /// An observation voltage was NaN or infinite.
    NotFinite,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "store I/O error: {e}"),
            Self::Overloaded { pending } => {
                write!(f, "ingest overloaded: {pending} records await durability")
            }
            Self::NotFinite => write!(f, "observation voltages must be finite"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A durable (or, in [`Durability::Manual`] mode, staged) append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Acked {
    /// The device the record belongs to.
    pub device: u64,
    /// The per-device sequence number the store assigned.
    pub seq: u64,
    /// Global append ordinal (this session), used by the durability
    /// protocol.
    pub global: u64,
    /// Fsync rounds this append led itself; 0 means a concurrent
    /// group-commit leader covered it (the batching win).
    pub fsync_rounds: usize,
}

/// What recovery found and repaired. Serialized by `culpeo store
/// recover` and surfaced through the daemon's readiness probe.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RecoveryReport {
    /// Report schema generation (matches the `/v1` envelope's).
    pub schema_version: u32,
    /// Segment files scanned (quarantined ones included).
    pub segments_scanned: usize,
    /// CRC-valid records indexed.
    pub records_recovered: u64,
    /// Distinct devices among the recovered records.
    pub devices: usize,
    /// Torn-tail bytes truncated off the last segment.
    pub truncated_bytes: u64,
    /// Segment file names renamed aside for CRC corruption.
    pub quarantined: Vec<String>,
    /// Bytes of CRC-valid log retained.
    pub live_bytes: u64,
}

/// A read-only scan of a store directory (`culpeo store stat`): what
/// recovery *would* do, without mutating anything.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StoreStat {
    /// Report schema generation (matches the `/v1` envelope's).
    pub schema_version: u32,
    /// Live (non-quarantined) segment files present.
    pub segments: usize,
    /// CRC-valid records across live segments.
    pub records: u64,
    /// Distinct devices among those records.
    pub devices: usize,
    /// Bytes of CRC-valid log.
    pub live_bytes: u64,
    /// Torn-tail bytes a recovery would truncate.
    pub torn_bytes: u64,
    /// Live segment file names a recovery would quarantine.
    pub corrupt_segments: Vec<String>,
    /// Segment file names already quarantined by an earlier recovery.
    pub quarantined: Vec<String>,
}

/// The most recent records and counters for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSnapshot {
    /// The device id.
    pub device: u64,
    /// Highest sequence number assigned to this device.
    pub last_seq: u64,
    /// Total records ever indexed for this device (ring evictions
    /// included).
    pub total: u64,
    /// Up to [`StoreConfig::ring_capacity`] most recent records, oldest
    /// first.
    pub recent: Vec<Record>,
}

#[derive(Debug, Default)]
struct DeviceRing {
    ring: VecDeque<Record>,
    total: u64,
    last_seq: u64,
}

impl DeviceRing {
    fn push(&mut self, rec: Record, cap: usize) {
        if self.ring.len() >= cap.max(1) {
            self.ring.pop_front();
        }
        self.ring.push_back(rec);
        self.total += 1;
        self.last_seq = rec.seq;
    }
}

struct Inner {
    file: File,
    segment_id: u64,
    segment_len: u64,
    total_bytes: u64,
    /// Rotated-away segment files not yet covered by an fsync round.
    unsynced: Vec<File>,
    /// Global records appended this session (durability high-water
    /// candidates).
    appended: u64,
    records: u64,
    index: HashMap<u64, DeviceRing>,
}

/// The append-only, crash-safe observation log. Cheap to share behind an
/// `Arc`; all methods take `&self`.
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    inner: Mutex<Inner>,
    commit: Mutex<CommitState>,
    commit_cv: Condvar,
    /// Global appends covered by a completed fsync (session-scoped, like
    /// `Inner::appended`).
    durable: AtomicU64,
    /// Log bytes known covered by a completed fsync, for crash
    /// injectors that model page-cache loss.
    durable_bytes: AtomicU64,
}

impl Store {
    /// Opens (creating if absent) the store at `dir`, running recovery
    /// first. Returns the writable store and the recovery report.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created/scanned or a segment
    /// cannot be repaired or opened for append.
    pub fn open(dir: &Path, config: StoreConfig) -> Result<(Self, RecoveryReport), StoreError> {
        fs::create_dir_all(dir)?;
        let (report, records, segments) = recover_impl(dir, true)?;

        let mut index: HashMap<u64, DeviceRing> = HashMap::new();
        for rec in &records {
            index
                .entry(rec.device)
                .or_default()
                .push(*rec, config.ring_capacity);
        }

        // Append to the last live segment, or start segment 0 — unless
        // the highest-numbered file was quarantined, in which case its
        // number stays burnt and a fresh segment follows it.
        let (segment_id, path, segment_len) = match segments.last() {
            Some(seg) => (seg.id, seg.path.clone(), seg.bytes),
            None => {
                let id = next_free_segment_id(dir)?;
                (id, segment_path(dir, id), 0)
            }
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;

        let store = Self {
            dir: dir.to_path_buf(),
            config,
            inner: Mutex::new(Inner {
                file,
                segment_id,
                segment_len,
                total_bytes: report.live_bytes,
                unsynced: Vec::new(),
                appended: 0,
                records: report.records_recovered,
                index,
            }),
            commit: Mutex::new(CommitState::default()),
            commit_cv: Condvar::new(),
            durable: AtomicU64::new(0),
            durable_bytes: AtomicU64::new(report.live_bytes),
        };
        Ok((store, report))
    }

    /// Appends one observation for `device`, assigning the next
    /// per-device sequence number. In [`Durability::Fsync`] mode the
    /// call returns only after the record is on stable storage.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFinite`] for NaN/infinite voltages,
    /// [`StoreError::Overloaded`] when the un-durable backlog is at
    /// [`StoreConfig::max_pending`], or the underlying I/O error.
    pub fn append(
        &self,
        device: u64,
        v_start: f64,
        v_min: f64,
        v_final: f64,
    ) -> Result<Acked, StoreError> {
        let acks = self.append_batch(device, &[(v_start, v_min, v_final)])?;
        Ok(acks[0])
    }

    /// Appends a batch of observations for `device` under one lock
    /// acquisition and (in fsync mode) one durability wait: the whole
    /// batch rides a single group-commit round.
    ///
    /// # Errors
    ///
    /// As [`Store::append`]; on error nothing in the batch is acked.
    pub fn append_batch(
        &self,
        device: u64,
        triples: &[(f64, f64, f64)],
    ) -> Result<Vec<Acked>, StoreError> {
        if triples
            .iter()
            .any(|t| !(t.0.is_finite() && t.1.is_finite() && t.2.is_finite()))
        {
            return Err(StoreError::NotFinite);
        }
        let mut acks = Vec::with_capacity(triples.len());
        let last_global = {
            let mut g = self.lock_inner();
            let pending = g.appended - self.durable.load(Ordering::Acquire);
            if self.config.durability == Durability::Fsync
                && pending + triples.len() as u64 > self.config.max_pending
            {
                return Err(StoreError::Overloaded { pending });
            }
            for &(v_start, v_min, v_final) in triples {
                let ring = g.index.entry(device).or_default();
                let rec = Record {
                    device,
                    seq: ring.last_seq + 1,
                    v_start,
                    v_min,
                    v_final,
                };
                g.file.write_all(&rec.encode())?;
                let cap = self.config.ring_capacity;
                g.index.entry(device).or_default().push(rec, cap);
                g.segment_len += FRAME_LEN as u64;
                g.total_bytes += FRAME_LEN as u64;
                g.records += 1;
                g.appended += 1;
                acks.push(Acked {
                    device,
                    seq: rec.seq,
                    global: g.appended,
                    fsync_rounds: 0,
                });
                if g.segment_len >= self.config.segment_bytes {
                    self.rotate(&mut g)?;
                }
            }
            g.appended
        };
        if self.config.durability == Durability::Fsync {
            let rounds = commit::commit_durable(
                &self.commit,
                &self.commit_cv,
                &self.durable,
                last_global,
                || self.sync_now(),
            )?;
            if let Some(last) = acks.last_mut() {
                last.fsync_rounds = rounds;
            }
        }
        Ok(acks)
    }

    /// Forces an fsync round covering everything appended so far
    /// (required for durability in [`Durability::Manual`] mode; a no-op
    /// ack-wise if everything is already durable).
    ///
    /// # Errors
    ///
    /// The underlying fsync error, with no durability published.
    pub fn sync(&self) -> Result<(), StoreError> {
        let upto = self.sync_now()?;
        // Monotonic publish: `sync_now` snapshots `appended` under the
        // inner lock, and competing publishes only ever raise the mark.
        let prev = self.durable.load(Ordering::Acquire);
        if upto > prev {
            self.durable.store(upto, Ordering::Release);
        }
        Ok(())
    }

    /// A snapshot of one device's recent records, or `None` for a device
    /// the store has never seen.
    #[must_use]
    pub fn device(&self, device: u64) -> Option<DeviceSnapshot> {
        let g = self.lock_inner();
        g.index.get(&device).map(|ring| DeviceSnapshot {
            device,
            last_seq: ring.last_seq,
            total: ring.total,
            recent: ring.ring.iter().copied().collect(),
        })
    }

    /// Every known device id, sorted.
    #[must_use]
    pub fn devices(&self) -> Vec<u64> {
        let g = self.lock_inner();
        let mut ids: Vec<u64> = g.index.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Records appended this session but not yet covered by an fsync.
    #[must_use]
    pub fn pending(&self) -> u64 {
        let g = self.lock_inner();
        g.appended - self.durable.load(Ordering::Acquire)
    }

    /// Log bytes known durable (recovered bytes plus fsync-covered
    /// appends); crash injectors truncate to this offset to model
    /// page-cache loss.
    #[must_use]
    pub fn durable_bytes(&self) -> u64 {
        self.durable_bytes.load(Ordering::Acquire)
    }

    /// Live totals, from memory (no directory rescan).
    #[must_use]
    pub fn live_stat(&self) -> (u64, u64, usize) {
        let g = self.lock_inner();
        (g.records, g.total_bytes, g.index.len())
    }

    /// The directory this store writes to.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        // An append panics only on arithmetic bugs, not on client data;
        // a poisoned inner lock therefore means a store bug. Recover by
        // taking the guard anyway: every on-disk mutation is a
        // write_all that either landed or didn't, and recovery semantics
        // already cover half-applied appends.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.inner.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// Closes the current segment into the unsynced list and opens the
    /// next one. Called with the inner lock held.
    fn rotate(&self, g: &mut Inner) -> Result<(), StoreError> {
        let next_id = g.segment_id + 1;
        let next = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, next_id))?;
        let old = std::mem::replace(&mut g.file, next);
        g.unsynced.push(old);
        g.segment_id = next_id;
        g.segment_len = 0;
        Ok(())
    }

    /// The group-commit `sync` closure: snapshot the files and
    /// high-water mark under the inner lock, fsync outside it (appends
    /// continue concurrently), and report what the round covered.
    fn sync_now(&self) -> Result<u64, StoreError> {
        let (files, upto, bytes) = {
            let mut g = self.lock_inner();
            let mut files = std::mem::take(&mut g.unsynced);
            files.push(g.file.try_clone()?);
            (files, g.appended, g.total_bytes)
        };
        for (i, f) in files.iter().enumerate() {
            if let Err(e) = f.sync_data() {
                // Put the not-yet-synced rotated files back so a retry
                // round still covers them (the current-segment clone at
                // the end is re-cloned next round anyway).
                let mut g = self.lock_inner();
                let tail = files.len() - 1;
                g.unsynced
                    .extend(files.into_iter().skip(i).take(tail.saturating_sub(i)));
                return Err(e.into());
            }
        }
        let prev = self.durable_bytes.load(Ordering::Acquire);
        if bytes > prev {
            self.durable_bytes.store(bytes, Ordering::Release);
        }
        Ok(upto)
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Graceful shutdown in fsync mode leaves nothing un-durable
        // anyway; this covers the Manual-mode caller that forgot and
        // costs one fsync. Crash injectors bypass it by construction
        // (they model the crash with file truncation, not drop order).
        if self.config.durability == Durability::Fsync {
            let _ = self.sync();
        }
    }
}

// ---------------------------------------------------------------------
// Directory scanning and recovery.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SegmentInfo {
    id: u64,
    path: PathBuf,
    bytes: u64,
}

/// The path of segment `id` under `dir`.
#[must_use]
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.log"))
}

/// The live (non-quarantined) segment files under `dir`, sorted by
/// segment number — the byte stream in append order.
///
/// # Errors
///
/// Any directory-read error.
pub fn segment_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut segs: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(id) = parse_segment_id(&path) {
            segs.push((id, path));
        }
    }
    segs.sort_by_key(|(id, _)| *id);
    Ok(segs.into_iter().map(|(_, p)| p).collect())
}

fn parse_segment_id(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let id = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    (id.len() == 8).then(|| id.parse().ok()).flatten()
}

fn next_free_segment_id(dir: &Path) -> std::io::Result<u64> {
    // Quarantined files burn their number: seg-00000002.log.quarantined
    // must never be shadowed by a fresh seg-00000002.log.
    let mut max: Option<u64> = None;
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let candidate = parse_segment_id(&path).or_else(|| {
            let name = path.file_name()?.to_str()?;
            let stem = name.strip_suffix(QUARANTINE_SUFFIX)?;
            parse_segment_id(Path::new(stem))
        });
        if let Some(id) = candidate {
            max = Some(max.map_or(id, |m: u64| m.max(id)));
        }
    }
    Ok(max.map_or(0, |m| m + 1))
}

fn quarantined_files(dir: &Path) -> std::io::Result<Vec<String>> {
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            if name.ends_with(QUARANTINE_SUFFIX) {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    Ok(names)
}

/// Scans one segment's bytes. Returns the records, the clean byte
/// length, and what ended the scan.
enum SegmentEnd {
    Clean,
    Torn { at: u64 },
    Corrupt,
}

fn scan_segment(bytes: &[u8]) -> (Vec<Record>, SegmentEnd) {
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        match scan_frame(&bytes[off..]) {
            Scan::Record(rec) => {
                records.push(rec);
                off += FRAME_LEN;
            }
            Scan::End => return (records, SegmentEnd::Clean),
            Scan::Torn { .. } => return (records, SegmentEnd::Torn { at: off as u64 }),
            Scan::Corrupt { .. } => return (records, SegmentEnd::Corrupt),
        }
    }
}

fn recover_impl(
    dir: &Path,
    mutate: bool,
) -> Result<(RecoveryReport, Vec<Record>, Vec<SegmentInfo>), StoreError> {
    let paths = segment_files(dir)?;
    let mut report = RecoveryReport {
        schema_version: 2,
        segments_scanned: paths.len(),
        records_recovered: 0,
        devices: 0,
        truncated_bytes: 0,
        quarantined: quarantined_files(dir)?,
        live_bytes: 0,
    };
    let mut records: Vec<Record> = Vec::new();
    let mut segments: Vec<SegmentInfo> = Vec::new();

    for (i, path) in paths.iter().enumerate() {
        let is_last = i + 1 == paths.len();
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let (segment_records, end) = scan_segment(&bytes);
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("segment")
            .to_string();
        let quarantine = match end {
            SegmentEnd::Clean => {
                keep_segment(
                    &mut records,
                    &mut segments,
                    &mut report,
                    path,
                    segment_records,
                    bytes.len() as u64,
                );
                false
            }
            SegmentEnd::Torn { at } if is_last => {
                // The interrupted append `kill -9` leaves behind: drop
                // the torn tail, keep the clean prefix.
                report.truncated_bytes += bytes.len() as u64 - at;
                if mutate {
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(at)?;
                    f.sync_data()?;
                }
                keep_segment(
                    &mut records,
                    &mut segments,
                    &mut report,
                    path,
                    segment_records,
                    at,
                );
                false
            }
            // A torn frame mid-directory cannot be an interrupted
            // append (later segments exist), so it is treated as the
            // corruption it must be.
            SegmentEnd::Torn { .. } | SegmentEnd::Corrupt => true,
        };
        if quarantine {
            report.quarantined.push(name.clone());
            if mutate {
                let mut to = path.as_os_str().to_owned();
                to.push(QUARANTINE_SUFFIX);
                fs::rename(path, PathBuf::from(to))?;
            }
            // The whole segment is set aside: indexing a prefix of a
            // rotted file would present a silently incomplete history
            // as authoritative.
        }
    }
    report.quarantined.sort();
    report.records_recovered = records.len() as u64;
    let mut devices: Vec<u64> = records.iter().map(|r| r.device).collect();
    devices.sort_unstable();
    devices.dedup();
    report.devices = devices.len();
    Ok((report, records, segments))
}

fn keep_segment(
    records: &mut Vec<Record>,
    segments: &mut Vec<SegmentInfo>,
    report: &mut RecoveryReport,
    path: &Path,
    segment_records: Vec<Record>,
    clean_bytes: u64,
) {
    records.extend(segment_records);
    report.live_bytes += clean_bytes;
    if let Some(id) = parse_segment_id(path) {
        segments.push(SegmentInfo {
            id,
            path: path.to_path_buf(),
            bytes: clean_bytes,
        });
    }
}

/// Runs recovery on `dir` without keeping the store open: truncates a
/// torn tail, quarantines corrupt segments, and reports what it did.
/// Idempotent — re-running on a recovered directory repairs nothing.
///
/// # Errors
///
/// Any I/O error while scanning or repairing.
pub fn recover(dir: &Path) -> Result<RecoveryReport, StoreError> {
    fs::create_dir_all(dir)?;
    let (report, _, _) = recover_impl(dir, true)?;
    Ok(report)
}

/// Read-only scan of `dir`: what recovery *would* find, with nothing
/// mutated (safe against a live writer for monitoring).
///
/// # Errors
///
/// Any I/O error while scanning.
pub fn scan(dir: &Path) -> Result<StoreStat, StoreError> {
    let paths = segment_files(dir)?;
    let mut stat = StoreStat {
        schema_version: 2,
        segments: paths.len(),
        records: 0,
        devices: 0,
        live_bytes: 0,
        torn_bytes: 0,
        corrupt_segments: Vec::new(),
        quarantined: quarantined_files(dir)?,
    };
    let mut devices: Vec<u64> = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        let is_last = i + 1 == paths.len();
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let (segment_records, end) = scan_segment(&bytes);
        match end {
            SegmentEnd::Clean => {
                stat.live_bytes += bytes.len() as u64;
            }
            SegmentEnd::Torn { at } if is_last => {
                stat.torn_bytes += bytes.len() as u64 - at;
                stat.live_bytes += at;
            }
            SegmentEnd::Torn { .. } | SegmentEnd::Corrupt => {
                if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                    stat.corrupt_segments.push(name.to_string());
                }
                continue;
            }
        }
        stat.records += segment_records.len() as u64;
        devices.extend(segment_records.iter().map(|r| r.device));
    }
    devices.sort_unstable();
    devices.dedup();
    stat.devices = devices.len();
    stat.corrupt_segments.sort();
    Ok(stat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("culpeo-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_config() -> StoreConfig {
        StoreConfig {
            segment_bytes: 3 * FRAME_LEN as u64, // rotate every 3 records
            ring_capacity: 4,
            durability: Durability::Fsync,
            max_pending: 64,
        }
    }

    #[test]
    fn append_recover_round_trip_with_rotation() {
        let dir = test_dir("roundtrip");
        {
            let (store, report) = Store::open(&dir, small_config()).unwrap();
            assert_eq!(report.records_recovered, 0);
            for i in 0..8u32 {
                let acked = store
                    .append(1, 2.3, 2.1 - f64::from(i) * 0.01, 2.28)
                    .unwrap();
                assert_eq!(acked.seq, u64::from(i) + 1);
            }
            store.append(2, 2.4, 2.2, 2.39).unwrap();
        }
        // 9 records at 3 per segment: segments 0..=2 full, 3 current.
        assert!(segment_files(&dir).unwrap().len() >= 3);
        let (store, report) = Store::open(&dir, small_config()).unwrap();
        assert_eq!(report.records_recovered, 9);
        assert_eq!(report.devices, 2);
        assert_eq!(report.truncated_bytes, 0);
        assert!(report.quarantined.is_empty());
        let snap = store.device(1).unwrap();
        assert_eq!(snap.last_seq, 8);
        assert_eq!(snap.total, 8);
        assert_eq!(snap.recent.len(), 4, "ring capacity bounds the index");
        assert_eq!(snap.recent.last().unwrap().seq, 8);
        // Sequence numbers keep rising across a reopen.
        let acked = store.append(1, 2.3, 2.1, 2.28).unwrap();
        assert_eq!(acked.seq, 9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_recovery_is_idempotent() {
        let dir = test_dir("torn");
        {
            let (store, _) = Store::open(&dir, small_config()).unwrap();
            for _ in 0..5 {
                store.append(9, 2.3, 2.1, 2.28).unwrap();
            }
        }
        // Tear the live tail: cut the last record's frame short by 5
        // bytes, as a kill mid-append would.
        let last = segment_files(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&last).unwrap().len();
        assert!(len > 5);
        let f = OpenOptions::new().write(true).open(&last).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let report = recover(&dir).unwrap();
        assert_eq!(report.records_recovered, 4);
        assert_eq!(report.truncated_bytes, FRAME_LEN as u64 - 5);
        let again = recover(&dir).unwrap();
        assert_eq!(again.records_recovered, 4);
        assert_eq!(again.truncated_bytes, 0, "second recovery repairs nothing");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_mid_directory_segment_is_quarantined_not_fatal() {
        let dir = test_dir("quarantine");
        {
            let (store, _) = Store::open(&dir, small_config()).unwrap();
            for _ in 0..7 {
                store.append(3, 2.3, 2.1, 2.28).unwrap();
            }
        }
        // Flip a payload byte in the FIRST segment (3 records live
        // there).
        let first = segment_files(&dir).unwrap().remove(0);
        let mut bytes = fs::read(&first).unwrap();
        bytes[HEADER_LEN_PROBE] ^= 0x40;
        fs::write(&first, &bytes).unwrap();

        let (store, report) = Store::open(&dir, small_config()).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.records_recovered, 4, "the other segments survive");
        assert!(!first.exists(), "the corrupt segment was renamed aside");
        // The quarantined file is preserved aside, not deleted.
        let mut q = first.as_os_str().to_owned();
        q.push(QUARANTINE_SUFFIX);
        assert!(PathBuf::from(q).exists());
        // Appends still work and recovery of the recovered dir is clean.
        store.append(3, 2.3, 2.1, 2.28).unwrap();
        drop(store);
        let stat = scan(&dir).unwrap();
        assert!(stat.corrupt_segments.is_empty());
        assert_eq!(stat.quarantined.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    const HEADER_LEN_PROBE: usize = crate::frame::HEADER_LEN + 2;

    #[test]
    fn manual_mode_sheds_nothing_but_tracks_durable_bytes() {
        let dir = test_dir("manual");
        let config = StoreConfig {
            durability: Durability::Manual,
            ..small_config()
        };
        let (store, _) = Store::open(&dir, config).unwrap();
        store.append(1, 2.3, 2.1, 2.28).unwrap();
        store.append(1, 2.3, 2.1, 2.28).unwrap();
        assert_eq!(store.pending(), 2);
        store.sync().unwrap();
        assert_eq!(store.pending(), 0);
        let (records, bytes, devices) = store.live_stat();
        assert_eq!((records, devices), (2, 1));
        assert_eq!(store.durable_bytes(), bytes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_mode_sheds_at_the_pending_cap() {
        // With Manual durability pending grows; switching the config's
        // shed check on requires Fsync mode, so exercise the arithmetic
        // directly: a store whose durable mark never advances must
        // refuse the append that would exceed max_pending.
        let dir = test_dir("shed");
        let config = StoreConfig {
            durability: Durability::Fsync,
            max_pending: 0,
            ..small_config()
        };
        let (store, _) = Store::open(&dir, config).unwrap();
        let err = store.append(1, 2.3, 2.1, 2.28).unwrap_err();
        assert!(matches!(err, StoreError::Overloaded { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_append_assigns_consecutive_seqs_under_one_commit() {
        let dir = test_dir("batch");
        let (store, _) = Store::open(&dir, small_config()).unwrap();
        let acks = store
            .append_batch(
                5,
                &[(2.3, 2.1, 2.28), (2.29, 2.12, 2.27), (2.28, 2.11, 2.26)],
            )
            .unwrap();
        assert_eq!(
            acks.iter().map(|a| a.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(store.pending(), 0, "the batch is durable on return");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_observations_are_refused() {
        let dir = test_dir("nan");
        let (store, _) = Store::open(&dir, small_config()).unwrap();
        let err = store.append(1, f64::NAN, 2.1, 2.2).unwrap_err();
        assert!(matches!(err, StoreError::NotFinite));
        let (records, _, _) = store.live_stat();
        assert_eq!(records, 0, "nothing was written");
        let _ = fs::remove_dir_all(&dir);
    }
}

//! The on-disk frame: one observation triple, length-prefixed and
//! CRC-guarded.
//!
//! A frame is `[payload_len: u32 LE][crc32: u32 LE][payload]`, where the
//! payload is the fixed 40-byte little-endian encoding of a [`Record`]
//! (`device`, `seq`, and the three voltages as IEEE-754 bit patterns).
//! The CRC covers the payload only; the length prefix is validated by
//! range (a store holds exactly one record shape, so any other length is
//! *corruption*, not a format to be skipped over).
//!
//! Recovery leans on the **prefix property** of appends: a crash —
//! `kill -9` at any byte offset included — leaves the file a byte prefix
//! of what was written, never scrambled bytes. [`scan_frame`] therefore
//! distinguishes two failure shapes:
//!
//! * [`Scan::Torn`] — the buffer ends mid-frame. Legal only at the tail
//!   of the *last* segment (the interrupted append); recovery truncates
//!   it away.
//! * [`Scan::Corrupt`] — a full frame is present but its length is not a
//!   record's or its CRC fails. That cannot be produced by a crash; it
//!   is bit rot, and recovery quarantines the whole segment rather than
//!   guessing where the damage ends.

/// Bytes of frame header: length prefix + CRC32.
pub const HEADER_LEN: usize = 8;
/// Bytes of record payload: `device` + `seq` + three voltages.
pub const PAYLOAD_LEN: usize = 40;
/// Total bytes of one encoded frame.
pub const FRAME_LEN: usize = HEADER_LEN + PAYLOAD_LEN;

/// The standard reflected CRC-32 (IEEE 802.3) table, built at compile
/// time so the crate needs no checksum dependency.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One stored observation: a `(V_start, V_min, V_final)` triple stamped
/// with its device and that device's monotonic sequence number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Reporting device id.
    pub device: u64,
    /// Per-device sequence number, assigned by the store (1-based,
    /// strictly increasing per device).
    pub seq: u64,
    /// Buffer voltage when the task started, in volts.
    pub v_start: f64,
    /// Minimum buffer voltage observed while the task ran, in volts.
    pub v_min: f64,
    /// Buffer voltage after the post-task rebound, in volts.
    pub v_final: f64,
}

impl Record {
    /// Encodes the record as one complete frame (header + payload).
    #[must_use]
    pub fn encode(&self) -> [u8; FRAME_LEN] {
        let mut payload = [0u8; PAYLOAD_LEN];
        payload[0..8].copy_from_slice(&self.device.to_le_bytes());
        payload[8..16].copy_from_slice(&self.seq.to_le_bytes());
        payload[16..24].copy_from_slice(&self.v_start.to_le_bytes());
        payload[24..32].copy_from_slice(&self.v_min.to_le_bytes());
        payload[32..40].copy_from_slice(&self.v_final.to_le_bytes());
        let mut frame = [0u8; FRAME_LEN];
        frame[0..4].copy_from_slice(&(PAYLOAD_LEN as u32).to_le_bytes());
        frame[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
        frame[HEADER_LEN..].copy_from_slice(&payload);
        frame
    }

    /// Decodes a validated 40-byte payload.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is not exactly [`PAYLOAD_LEN`] bytes; callers
    /// go through [`scan_frame`], which guarantees the length.
    #[must_use]
    pub fn decode_payload(payload: &[u8]) -> Self {
        assert_eq!(payload.len(), PAYLOAD_LEN, "payload length");
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&payload[i..i + 8]);
            b
        };
        Self {
            device: u64::from_le_bytes(word(0)),
            seq: u64::from_le_bytes(word(8)),
            v_start: f64::from_le_bytes(word(16)),
            v_min: f64::from_le_bytes(word(24)),
            v_final: f64::from_le_bytes(word(32)),
        }
    }
}

/// What [`scan_frame`] found at the head of a buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scan {
    /// A complete, CRC-valid frame; advance by [`FRAME_LEN`].
    Record(Record),
    /// The buffer is empty: a clean end.
    End,
    /// The buffer ends mid-frame (`have` bytes of it are present) — a
    /// torn append, legal only at the tail of the last segment.
    Torn {
        /// Bytes of the partial frame present.
        have: usize,
    },
    /// A full frame's worth of bytes is present but it is not a valid
    /// frame: bit rot, never the residue of a crash.
    Corrupt {
        /// Human-readable cause, for recovery reports.
        reason: &'static str,
    },
}

/// Classifies the bytes at the head of `buf` (see the module docs for
/// the torn/corrupt distinction).
#[must_use]
pub fn scan_frame(buf: &[u8]) -> Scan {
    if buf.is_empty() {
        return Scan::End;
    }
    if buf.len() < HEADER_LEN {
        return Scan::Torn { have: buf.len() };
    }
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&buf[0..4]);
    if u32::from_le_bytes(len_bytes) as usize != PAYLOAD_LEN {
        return Scan::Corrupt {
            reason: "frame length is not a record's",
        };
    }
    if buf.len() < FRAME_LEN {
        return Scan::Torn { have: buf.len() };
    }
    let mut crc_bytes = [0u8; 4];
    crc_bytes.copy_from_slice(&buf[4..8]);
    let payload = &buf[HEADER_LEN..FRAME_LEN];
    if crc32(payload) != u32::from_le_bytes(crc_bytes) {
        return Scan::Corrupt {
            reason: "payload CRC mismatch",
        };
    }
    Scan::Record(Record::decode_payload(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Record {
        Record {
            device: 7,
            seq: 42,
            v_start: 2.3,
            v_min: 2.1,
            v_final: 2.28,
        }
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let frame = rec().encode();
        assert_eq!(scan_frame(&frame), Scan::Record(rec()));
    }

    #[test]
    fn every_torn_prefix_is_torn_never_corrupt() {
        // The prefix property: a crash leaves a prefix, and every strict
        // prefix of a valid frame must classify as Torn (so recovery
        // truncates instead of quarantining).
        let frame = rec().encode();
        for cut in 1..FRAME_LEN {
            assert_eq!(
                scan_frame(&frame[..cut]),
                Scan::Torn { have: cut },
                "prefix of {cut} bytes"
            );
        }
        assert_eq!(scan_frame(&frame[..0]), Scan::End);
    }

    #[test]
    fn a_flipped_payload_bit_is_corruption() {
        let mut frame = rec().encode();
        frame[HEADER_LEN + 3] ^= 0x10;
        assert!(matches!(scan_frame(&frame), Scan::Corrupt { .. }));
    }

    #[test]
    fn a_wrong_length_prefix_is_corruption() {
        let mut frame = rec().encode();
        frame[0] = 0xFF;
        assert!(matches!(scan_frame(&frame), Scan::Corrupt { .. }));
    }
}

//! Wire conversions: in-memory IR/certificates ⇄ `culpeo-api` DTOs, plus
//! the shared request runner the CLI and daemon both call.

use culpeo::PowerSystemModel;
use culpeo_api::{CertificateDto, NodeDto, OpDto, TaskGraphDto, WcecResponse, WcecTaskRow};

use crate::interp::{analyze, Certificate, WcecVerdict};
use crate::ir::{IrError, LoopBound, NodeId, NodeKind, OpCost, TaskGraph};

/// Renders a graph in wire form.
#[must_use]
pub fn to_dto(graph: &TaskGraph) -> TaskGraphDto {
    TaskGraphDto {
        name: graph.name.clone(),
        root: graph.root.0,
        nodes: graph
            .nodes
            .iter()
            .map(|node| {
                let (kind, ops, children, bound_lo, bound_hi) = match &node.kind {
                    NodeKind::Block(ops) => (
                        "block",
                        Some(
                            ops.iter()
                                .map(|op| OpDto {
                                    name: op.name.clone(),
                                    energy_mj_lo: op.energy_mj.0,
                                    energy_mj_hi: op.energy_mj.1,
                                    time_ms_lo: op.time_ms.0,
                                    time_ms_hi: op.time_ms.1,
                                    peak_ma: op.peak_ma,
                                })
                                .collect(),
                        ),
                        None,
                        None,
                        None,
                    ),
                    NodeKind::Seq(c) => (
                        "seq",
                        None,
                        Some(c.iter().map(|id| id.0).collect()),
                        None,
                        None,
                    ),
                    NodeKind::Branch(t, e) => ("branch", None, Some(vec![t.0, e.0]), None, None),
                    NodeKind::Loop { body, bound } => {
                        let (lo, hi) = match bound.bounds() {
                            Some((lo, hi)) => (Some(lo), Some(hi)),
                            None => (None, None),
                        };
                        ("loop", None, Some(vec![body.0]), lo, hi)
                    }
                };
                NodeDto {
                    label: node.label.clone(),
                    kind: kind.to_string(),
                    ops,
                    children,
                    bound_lo,
                    bound_hi,
                }
            })
            .collect(),
    }
}

/// Rebuilds a graph from wire form, then validates it structurally.
///
/// # Errors
///
/// [`IrError`] on an unknown `kind`, a payload/kind mismatch, or any
/// structural defect [`TaskGraph::validate`] finds.
pub fn from_dto(dto: &TaskGraphDto) -> Result<TaskGraph, IrError> {
    let mut graph = TaskGraph::new(dto.name.clone());
    for (i, node) in dto.nodes.iter().enumerate() {
        let id = NodeId(u32::try_from(i).expect("arena fits in u32"));
        let children: Vec<NodeId> = node
            .children
            .clone()
            .unwrap_or_default()
            .into_iter()
            .map(NodeId)
            .collect();
        let kind = match node.kind.as_str() {
            "block" => NodeKind::Block(
                node.ops
                    .clone()
                    .unwrap_or_default()
                    .into_iter()
                    .map(|op| OpCost {
                        name: op.name,
                        energy_mj: (op.energy_mj_lo, op.energy_mj_hi),
                        time_ms: (op.time_ms_lo, op.time_ms_hi),
                        peak_ma: op.peak_ma,
                    })
                    .collect(),
            ),
            "seq" => NodeKind::Seq(children),
            "branch" => match children.as_slice() {
                [t, e] => NodeKind::Branch(*t, *e),
                _ => {
                    return Err(IrError::BadOp {
                        node: id,
                        op: 0,
                        reason: format!(
                            "branch node needs exactly two children, got {}",
                            children.len()
                        ),
                    })
                }
            },
            "loop" => match children.as_slice() {
                [body] => NodeKind::Loop {
                    body: *body,
                    bound: match (node.bound_lo, node.bound_hi) {
                        (None, None) => LoopBound::Unbounded,
                        (lo, hi) => {
                            let lo = lo.unwrap_or(0);
                            let hi = hi.unwrap_or(lo);
                            if lo == hi {
                                LoopBound::Exact(lo)
                            } else {
                                LoopBound::Range(lo, hi)
                            }
                        }
                    },
                },
                _ => {
                    return Err(IrError::BadOp {
                        node: id,
                        op: 0,
                        reason: format!(
                            "loop node needs exactly one child, got {}",
                            children.len()
                        ),
                    })
                }
            },
            other => {
                return Err(IrError::BadOp {
                    node: id,
                    op: 0,
                    reason: format!("unknown node kind `{other}` (expected block/seq/branch/loop)"),
                })
            }
        };
        graph.nodes.push(crate::ir::Node {
            label: node.label.clone(),
            kind,
        });
    }
    graph.root = NodeId(dto.root);
    graph.validate()?;
    Ok(graph)
}

/// The largest resistance on the model's measured ESR curve — the figure
/// the worst-case dip `V_δ = I_peak · R_max` charges against.
#[must_use]
pub fn esr_max_ohms(model: &PowerSystemModel) -> f64 {
    model
        .esr_curve()
        .points()
        .iter()
        .map(|&(_, r)| r.get())
        .fold(0.0, f64::max)
}

/// Renders a certificate in wire form, deriving `V_δ` when a model is in
/// hand.
#[must_use]
pub fn certificate_dto(cert: &Certificate, model: Option<&PowerSystemModel>) -> CertificateDto {
    CertificateDto {
        task: cert.task.clone(),
        energy_mj_lo: cert.energy_mj_lo(),
        energy_mj_hi: cert.energy_mj_hi(),
        time_s_lo: cert.time_s.0,
        time_s_hi: cert.time_s.1,
        peak_ma: cert.peak_ma,
        v_delta_v: model.map(|m| cert.v_delta_at(esr_max_ohms(m))),
        paths: cert.paths,
        loops: cert.loops,
    }
}

/// Analyzes a batch of wire-form graphs and assembles the response the
/// CLI and `POST /v1/wcec` both return.
///
/// # Errors
///
/// [`IrError`] when any graph fails to decode or validate; per-task
/// `Unknown` verdicts are rows, not errors.
pub fn run_graphs(
    model: Option<&PowerSystemModel>,
    tasks: &[TaskGraphDto],
) -> Result<WcecResponse, IrError> {
    let mut rows = Vec::with_capacity(tasks.len());
    let mut certified = 0u64;
    let mut unknown = 0u64;
    for dto in tasks {
        let graph = from_dto(dto)?;
        match analyze(&graph)? {
            WcecVerdict::Certified(cert) => {
                certified += 1;
                rows.push(WcecTaskRow {
                    task: graph.name,
                    status: "certified".to_string(),
                    certificate: Some(certificate_dto(&cert, model)),
                    blocking: None,
                    reason: None,
                });
            }
            WcecVerdict::Unknown(blocked) => {
                unknown += 1;
                rows.push(WcecTaskRow {
                    task: graph.name,
                    status: "unknown".to_string(),
                    certificate: None,
                    blocking: Some(blocked.label),
                    reason: Some(blocked.reason),
                });
            }
        }
    }
    Ok(WcecResponse {
        schema_version: culpeo_api::SCHEMA_VERSION,
        tasks: rows,
        certified,
        unknown,
        exit_code: u32::from(unknown > 0),
    })
}

/// Derives certificates for every launch in `plan` whose task name maps
/// to a known workload model (see [`crate::workloads::named`]), in wire
/// form with `V_δ` charged against `model`'s worst-case ESR. Tasks with
/// no model, or whose analysis is `Unknown`, are skipped — certificate
/// substitution is strictly opt-in by name.
#[must_use]
pub fn certificates_for_plan(
    plan: &culpeo_api::PlanSpec,
    model: &PowerSystemModel,
) -> Vec<CertificateDto> {
    let mut certs: Vec<CertificateDto> = Vec::new();
    for launch in &plan.launches {
        if certs.iter().any(|c| c.task == launch.task) {
            continue;
        }
        let Some(graph) = crate::workloads::named(&launch.task, model.v_out()) else {
            continue;
        };
        if let Ok(WcecVerdict::Certified(cert)) = analyze(&graph) {
            certs.push(certificate_dto(&cert, Some(model)));
        }
    }
    certs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use culpeo_units::Volts;

    const V_OUT: Volts = Volts::new(2.55);

    #[test]
    fn dto_roundtrip_preserves_the_graph() {
        for graph in workloads::table3(V_OUT) {
            let back = from_dto(&to_dto(&graph)).unwrap();
            assert_eq!(back, graph);
        }
    }

    #[test]
    fn unbounded_loop_survives_the_roundtrip() {
        let mut g = TaskGraph::new("t");
        let body = g.block("poll", vec![OpCost::exact("p", 0.1, 0.5, 1.0)]);
        g.bounded_loop("wait", LoopBound::Unbounded, body);
        let back = from_dto(&to_dto(&g)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn run_graphs_counts_and_exit_codes() {
        let mut unknown = TaskGraph::new("spin");
        let body = unknown.block("poll", vec![OpCost::exact("p", 0.1, 0.5, 1.0)]);
        unknown.bounded_loop("wait", LoopBound::Unbounded, body);
        let dtos = vec![to_dto(&workloads::gesture(V_OUT)), to_dto(&unknown)];
        let resp = run_graphs(None, &dtos).unwrap();
        assert_eq!(resp.certified, 1);
        assert_eq!(resp.unknown, 1);
        assert_eq!(resp.exit_code, 1);
        assert_eq!(resp.tasks[0].status, "certified");
        assert!(resp.tasks[1].blocking.is_some());
        assert!(resp.tasks[0]
            .certificate
            .as_ref()
            .unwrap()
            .v_delta_v
            .is_none());
    }

    #[test]
    fn bad_kind_is_a_decode_error() {
        let dto = TaskGraphDto {
            name: "t".to_string(),
            root: 0,
            nodes: vec![NodeDto {
                label: "x".to_string(),
                kind: "goto".to_string(),
                ops: None,
                children: None,
                bound_lo: None,
                bound_hi: None,
            }],
        };
        assert!(from_dto(&dto).is_err());
    }

    /// Drift gate for `examples/wcec_tasks.json`: the committed example
    /// file is exactly the Table III roster in wire form (the README's
    /// `culpeo wcec` quick-start feeds it to the CLI). Regenerate with
    /// `CULPEO_REGEN_EXAMPLES=1 cargo test -p culpeo-wcec`.
    #[test]
    fn example_tasks_file_is_in_sync() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/wcec_tasks.json"
        );
        let req = culpeo_api::WcecRequest {
            schema_version: Some(culpeo_api::SCHEMA_VERSION),
            spec: None,
            tasks: workloads::table3(V_OUT).iter().map(to_dto).collect(),
        };
        let mut want = serde_json::to_string_pretty(
            &serde_json::parse_value_str(&serde_json::to_string(&req).unwrap()).unwrap(),
        )
        .unwrap();
        want.push('\n');
        if std::env::var_os("CULPEO_REGEN_EXAMPLES").is_some() {
            std::fs::write(path, &want).unwrap();
        }
        let got = std::fs::read_to_string(path)
            .expect("examples/wcec_tasks.json exists (CULPEO_REGEN_EXAMPLES=1 regenerates it)");
        assert_eq!(
            got, want,
            "examples/wcec_tasks.json drifted from the roster"
        );
    }

    #[test]
    fn certificates_for_plan_maps_known_names_only() {
        let model = culpeo::PowerSystemModel::capybara();
        let mut plan = culpeo_api::PlanSpec::verified_example();
        plan.launches[0].task = "gesture".to_string();
        let certs = certificates_for_plan(&plan, &model);
        assert_eq!(certs.len(), 1);
        assert_eq!(certs[0].task, "gesture");
        assert!(certs[0].v_delta_v.unwrap() > 0.0);
    }
}

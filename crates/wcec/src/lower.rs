//! Lowering a concrete path through a task graph to a powersim load
//! profile — the ground-truth side of the soundness battery.
//!
//! The analyzer's certificate claims to bracket *every* admissible
//! execution. To test that against the plant rather than against the
//! analyzer's own arithmetic, [`lower_path`] walks the graph resolving
//! each branch and loop-iteration choice from a seeded [`PathOracle`] and
//! sampling each op's concrete cost *within its declared band*, then
//! emits the path as a [`LoadProfile`] whose output-rail energy equals the
//! sampled total. Simulating that profile through `culpeo-powersim` and
//! metering the ledger's `delivered` energy gives an independent measured
//! consumption the static `hi` endpoint must dominate.

use culpeo_loadgen::LoadProfile;
use culpeo_units::{Amps, Seconds, Volts};

use crate::interp::Blocked;
use crate::ir::{NodeId, NodeKind, TaskGraph};

/// A deterministic decision stream: which branch arm, how many loop
/// iterations, where in each op's band the concrete cost lands.
#[derive(Debug, Clone)]
pub struct PathOracle {
    state: u64,
}

impl PathOracle {
    /// An oracle seeded for one path; equal seeds replay the same path.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw word (splitmix64).
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A branch decision.
    pub fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// A uniform pick in `0..n` (`0` when `n == 0`).
    pub fn pick(&mut self, n: u32) -> u32 {
        if n == 0 {
            0
        } else {
            #[allow(clippy::cast_possible_truncation)]
            {
                (self.next() % u64::from(n)) as u32
            }
        }
    }

    /// A uniform fraction in `[0, 1)`.
    pub fn fraction(&mut self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// One concrete path, lowered.
#[derive(Debug, Clone)]
pub struct LoweredPath {
    /// The path as a plant-ready load profile.
    pub profile: LoadProfile,
    /// Sampled output-rail energy of the path, millijoules. The profile
    /// integrates to exactly this at the lowering voltage.
    pub nominal_mj: f64,
    /// Sampled duration, milliseconds.
    pub nominal_ms: f64,
}

/// Lowers one oracle-chosen path through `graph` at rail voltage `v_out`.
///
/// Every op is lowered to a constant-current hold whose energy is the
/// oracle's sample inside the op's declared band, so by construction the
/// path's nominal energy lies inside any *correct* certificate — the
/// soundness battery then checks the analyzer actually delivers one, with
/// the plant in the loop.
///
/// # Errors
///
/// [`Blocked`] on unbounded loops or unstructured cycles — exactly the
/// graphs the analyzer refuses to certify.
pub fn lower_path(
    graph: &TaskGraph,
    v_out: Volts,
    oracle: &mut PathOracle,
) -> Result<LoweredPath, Blocked> {
    let mut segments: Vec<(f64, f64)> = Vec::new(); // (amps, seconds)
    let mut depth = 0usize;
    walk(graph, graph.root, v_out, oracle, &mut segments, &mut depth)?;
    let mut builder = LoadProfile::builder(graph.name.clone());
    let mut e_mj = 0.0;
    let mut t_ms = 0.0;
    for (amps, secs) in &segments {
        builder = builder.hold(Amps::new(*amps), Seconds::new(*secs));
        e_mj += amps * v_out.get() * secs * 1e3;
        t_ms += secs * 1e3;
    }
    Ok(LoweredPath {
        profile: builder.build(),
        nominal_mj: e_mj,
        nominal_ms: t_ms,
    })
}

fn walk(
    graph: &TaskGraph,
    id: NodeId,
    v_out: Volts,
    oracle: &mut PathOracle,
    segments: &mut Vec<(f64, f64)>,
    depth: &mut usize,
) -> Result<(), Blocked> {
    // A concrete walk cannot detect sharing-vs-cycle by a visiting set
    // (revisiting a shared merge block is legal), so bound the dynamic
    // nesting depth instead: any structured graph stays far below it.
    *depth += 1;
    if *depth > 10_000 {
        return Err(Blocked {
            node: id,
            label: graph.node(id).label.clone(),
            reason: "path walk exceeded depth bound; the graph likely cycles".into(),
        });
    }
    let result = walk_kind(graph, id, v_out, oracle, segments, depth);
    *depth -= 1;
    result
}

fn walk_kind(
    graph: &TaskGraph,
    id: NodeId,
    v_out: Volts,
    oracle: &mut PathOracle,
    segments: &mut Vec<(f64, f64)>,
    depth: &mut usize,
) -> Result<(), Blocked> {
    let node = graph.node(id);
    match &node.kind {
        NodeKind::Block(ops) => {
            for op in ops {
                let (e_lo, e_hi) = op.energy_mj;
                let (t_lo, t_hi) = op.time_ms;
                let e_mj = e_lo + oracle.fraction() * (e_hi - e_lo);
                let t_ms = (t_lo + oracle.fraction() * (t_hi - t_lo)).max(1e-6);
                let secs = t_ms * 1e-3;
                let amps = e_mj * 1e-3 / (v_out.get() * secs);
                segments.push((amps, secs));
            }
            Ok(())
        }
        NodeKind::Seq(children) => {
            for child in children {
                walk(graph, *child, v_out, oracle, segments, depth)?;
            }
            Ok(())
        }
        NodeKind::Branch(then_, else_) => {
            let chosen = if oracle.flip() { *then_ } else { *else_ };
            walk(graph, chosen, v_out, oracle, segments, depth)
        }
        NodeKind::Loop { body, bound } => match bound.bounds() {
            Some((lo, hi)) => {
                let n = lo + oracle.pick(hi - lo + 1);
                for _ in 0..n {
                    walk(graph, *body, v_out, oracle, segments, depth)?;
                }
                Ok(())
            }
            None => Err(Blocked {
                node: id,
                label: node.label.clone(),
                reason: "cannot lower an unbounded loop to a finite profile".into(),
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{analyze, WcecVerdict};
    use crate::ir::{LoopBound, OpCost};
    use crate::workloads;

    const V_OUT: Volts = Volts::new(2.55);

    #[test]
    fn lowered_nominal_stays_inside_the_certificate() {
        for graph in workloads::table3(V_OUT) {
            let cert = match analyze(&graph).unwrap() {
                WcecVerdict::Certified(c) => c,
                WcecVerdict::Unknown(b) => panic!("{b}"),
            };
            for seed in 0..64u64 {
                let mut oracle = PathOracle::new(seed);
                let path = lower_path(&graph, V_OUT, &mut oracle).unwrap();
                assert!(
                    path.nominal_mj <= cert.energy_mj_hi() + 1e-9,
                    "{}: path {seed} nominal {} mJ exceeds certified hi {} mJ",
                    graph.name,
                    path.nominal_mj,
                    cert.energy_mj_hi()
                );
                assert!(path.nominal_mj >= cert.energy_mj_lo() - 1e-9);
                assert!(path.nominal_ms * 1e-3 <= cert.time_s.1 + 1e-9);
            }
        }
    }

    #[test]
    fn profile_integrates_to_the_sampled_energy() {
        let graph = workloads::ble_report(V_OUT);
        let mut oracle = PathOracle::new(7);
        let path = lower_path(&graph, V_OUT, &mut oracle).unwrap();
        let integrated = path.profile.output_energy(V_OUT).get() * 1e3;
        assert!(
            (integrated - path.nominal_mj).abs() < 1e-6,
            "integrated {integrated} vs nominal {}",
            path.nominal_mj
        );
    }

    #[test]
    fn same_seed_replays_the_same_path() {
        let graph = workloads::mnist(V_OUT);
        let a = lower_path(&graph, V_OUT, &mut PathOracle::new(42)).unwrap();
        let b = lower_path(&graph, V_OUT, &mut PathOracle::new(42)).unwrap();
        assert_eq!(a.nominal_mj, b.nominal_mj);
        assert_eq!(a.profile.segments().len(), b.profile.segments().len());
    }

    #[test]
    fn unbounded_loop_refuses_to_lower() {
        let mut g = TaskGraph::new("t");
        let body = g.block("poll", vec![OpCost::exact("p", 0.1, 0.5, 1.0)]);
        let lp = g.bounded_loop("wait", LoopBound::Unbounded, body);
        g.set_root(lp);
        assert!(lower_path(&g, V_OUT, &mut PathOracle::new(0)).is_err());
    }
}

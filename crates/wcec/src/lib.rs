//! ETAP-style static worst-case energy analysis (`culpeo wcec`).
//!
//! Everything downstream of Theorem 1 — the interval verifier, the
//! scheduler's threshold derivation, the daemon's admission surfaces —
//! trusts the *declared* per-launch `(E, V_δ)`. Nothing in the stack
//! derives those figures from what a task actually does; a hand-declared
//! energy that undershoots the real draw silently voids the proof. ETAP
//! (Erata et al.) shows the missing piece is computable: worst-case
//! energy of an intermittent program falls out of a static analysis over
//! a costed program model.
//!
//! This crate is that analysis, in three movements:
//!
//! * [`ir`] — a bounded task IR: basic blocks of costed ops (energy/time
//!   *bands*, not scalars), sequencing, branches, and loops with declared
//!   iteration bounds, in a flat arena that doubles as the wire shape;
//! * [`interp`] — the path-sensitive analyzer: directed-rounding interval
//!   propagation through the CFG ([`culpeo_units::IntervalJ`]), symbolic
//!   loop-bound multiplication, lattice joins at merges, and a widening
//!   fallback that answers `Unknown` (naming the blocking node) for
//!   unbounded loops instead of inventing a finite number;
//! * [`workloads`] — Table III task models (gesture / BLE / MNIST) whose
//!   op costs are calibrated against the `culpeo-loadgen` peripheral
//!   profiles, each wrapped in an honest tolerance band.
//!
//! The product is a [`interp::Certificate`]: a sound worst-case
//! energy/latency bracket per task. Downstream, `culpeo-analyze` lints
//! declared-vs-derived mismatches (C050–C054), `culpeo-verify` accepts
//! certificates in place of declared energies, and `culpeo-sched`'s
//! admission test gates plans on `WCEC ≤ harvest credit`. Soundness is
//! not asserted but tested: [`lower`] turns oracle-chosen concrete paths
//! into powersim load profiles, and the workspace battery checks every
//! simulated path's metered consumption stays under the certificate.

#![forbid(unsafe_code)]

pub mod interp;
pub mod ir;
pub mod lower;
pub mod wire;
pub mod workloads;

pub use interp::{analyze, Blocked, Certificate, WcecVerdict};
pub use ir::{IrError, LoopBound, Node, NodeId, NodeKind, OpCost, TaskGraph};
pub use lower::{lower_path, LoweredPath, PathOracle};
pub use wire::{
    certificate_dto, certificates_for_plan, esr_max_ohms, from_dto, run_graphs, to_dto,
};

//! The path-sensitive interval analyzer producing worst-case certificates.
//!
//! One structural pass over the [`TaskGraph`], propagating a
//! directed-rounding energy interval ([`culpeo_units::IntervalJ`]) and a
//! latency interval through the CFG:
//!
//! * **blocks** sum their ops' bands (outward-rounded addition);
//! * **sequences** sum their children;
//! * **branches** are analyzed path-sensitively — each arm's interval is
//!   computed in full before the lattice *join* at the merge, so the
//!   certificate's `lo` is the cheapest path and its `hi` the dearest,
//!   never a mix;
//! * **bounded loops** multiply the body symbolically by the declared
//!   iteration interval ([`IntervalJ::repeat`]): the cheap endpoint takes
//!   the fewest iterations of the cheapest body, the dear endpoint the
//!   most of the dearest;
//! * **unbounded loops** fall back to widening. The transfer function
//!   adds a non-negative body cost every round, so the widened fixpoint
//!   is `+∞` unless the body is provably free — in which case the loop
//!   contributes nothing and analysis continues. A diverging widen yields
//!   [`WcecVerdict::Unknown`] carrying the *blocking node*, never a
//!   silently-unsound finite number.
//!
//! Sharing is handled by memoization (a diamond's merge block is analyzed
//! once) and unstructured cycles — a back-edge smuggled through `Seq`
//! indices — are detected with a visiting stack and reported as
//! [`WcecVerdict::Unknown`], same as a diverging widen.

use culpeo_units::{IntervalJ, Joules};

use crate::ir::{IrError, NodeId, NodeKind, TaskGraph};

/// A sound worst-case energy/latency certificate for one task.
///
/// Soundness contract (checked end-to-end by the workspace's wcec
/// soundness battery): for every concrete execution path admitted by the
/// graph, the output-rail energy actually consumed lies in `energy` and
/// the wall-clock latency in `time_s`.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// The task the certificate covers ([`TaskGraph::name`]).
    pub task: String,
    /// Output-rail energy across all paths, joules.
    pub energy: IntervalJ,
    /// Latency across all paths, seconds.
    pub time_s: (f64, f64),
    /// Worst-case instantaneous rail current, milliamps.
    pub peak_ma: f64,
    /// Distinct acyclic paths the interval covers (saturating count).
    pub paths: u64,
    /// Bounded loops multiplied through symbolically.
    pub loops: u32,
}

impl Certificate {
    /// Worst-case energy in millijoules — the figure a launch must
    /// declare for Theorem 1 to rest on analyzed rather than asserted
    /// consumption.
    #[must_use]
    pub fn energy_mj_hi(&self) -> f64 {
        self.energy.hi().get() * 1e3
    }

    /// Best-case energy in millijoules.
    #[must_use]
    pub fn energy_mj_lo(&self) -> f64 {
        self.energy.lo().get() * 1e3
    }

    /// The worst-case ESR dip `V_δ = I_peak · R` this task can cause on
    /// a buffer with series resistance `esr_ohms`.
    #[must_use]
    pub fn v_delta_at(&self, esr_ohms: f64) -> f64 {
        self.peak_ma * 1e-3 * esr_ohms
    }
}

/// Why analysis could not certify a task.
#[derive(Debug, Clone, PartialEq)]
pub struct Blocked {
    /// The node precision died at.
    pub node: NodeId,
    /// That node's label.
    pub label: String,
    /// What happened there.
    pub reason: String,
}

impl core::fmt::Display for Blocked {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "node {} ({}): {}", self.node.0, self.label, self.reason)
    }
}

/// The analyzer's verdict for one task.
#[derive(Debug, Clone, PartialEq)]
pub enum WcecVerdict {
    /// Every path's cost is bracketed by the certificate.
    Certified(Certificate),
    /// Analysis lost precision; the payload names the blocking node.
    Unknown(Blocked),
}

impl WcecVerdict {
    /// The certificate, when certified.
    #[must_use]
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            Self::Certified(c) => Some(c),
            Self::Unknown(_) => None,
        }
    }
}

/// In-flight interval state for one subgraph.
#[derive(Clone)]
struct Flow {
    energy: IntervalJ,
    /// Latency band in milliseconds.
    t_ms: (f64, f64),
    peak_ma: f64,
    paths: u64,
    loops: u32,
}

impl Flow {
    fn nothing() -> Self {
        Self {
            energy: IntervalJ::point(Joules::ZERO),
            t_ms: (0.0, 0.0),
            peak_ma: 0.0,
            paths: 1,
            loops: 0,
        }
    }

    /// Sequential composition, outward-rounded.
    fn then(&self, next: &Self) -> Self {
        Self {
            energy: self.energy + next.energy,
            t_ms: (
                (self.t_ms.0 + next.t_ms.0).next_down().max(0.0),
                (self.t_ms.1 + next.t_ms.1).next_up(),
            ),
            peak_ma: self.peak_ma.max(next.peak_ma),
            paths: self.paths.saturating_mul(next.paths),
            loops: self.loops + next.loops,
        }
    }

    /// Lattice join at a merge point.
    fn join(&self, other: &Self) -> Self {
        Self {
            energy: self.energy.join(other.energy),
            t_ms: (self.t_ms.0.min(other.t_ms.0), self.t_ms.1.max(other.t_ms.1)),
            peak_ma: self.peak_ma.max(other.peak_ma),
            paths: self.paths.saturating_add(other.paths),
            loops: self.loops + other.loops,
        }
    }

    /// Symbolic multiplication by an iteration interval.
    fn repeat(&self, lo_n: u32, hi_n: u32) -> Self {
        Self {
            energy: self.energy.repeat(lo_n, hi_n),
            t_ms: (
                (self.t_ms.0 * f64::from(lo_n)).next_down().max(0.0),
                (self.t_ms.1 * f64::from(hi_n)).next_up(),
            ),
            peak_ma: self.peak_ma,
            paths: saturating_path_power(self.paths, lo_n, hi_n),
            loops: self.loops + 1,
        }
    }
}

/// Paths through a loop of `p`-path body running `lo..=hi` times:
/// `Σ_{k=lo}^{hi} p^k`, saturating. Informational only — the energy
/// interval is what soundness rests on.
fn saturating_path_power(p: u64, lo: u32, hi: u32) -> u64 {
    let mut total: u64 = 0;
    for k in lo..=hi.min(lo.saturating_add(64)) {
        let term = p.checked_pow(k).unwrap_or(u64::MAX);
        total = total.saturating_add(term);
        if total == u64::MAX {
            break;
        }
    }
    total.max(1)
}

/// Analyzes `graph` with the default configuration.
///
/// # Errors
///
/// [`IrError`] when the graph fails structural validation; a structurally
/// valid graph always yields a verdict (possibly `Unknown`).
pub fn analyze(graph: &TaskGraph) -> Result<WcecVerdict, IrError> {
    graph.validate()?;
    let mut memo: Vec<Option<Flow>> = vec![None; graph.nodes.len()];
    let mut visiting = vec![false; graph.nodes.len()];
    Ok(match flow_of(graph, graph.root, &mut visiting, &mut memo) {
        Ok(flow) => WcecVerdict::Certified(Certificate {
            task: graph.name.clone(),
            energy: flow.energy,
            time_s: (
                (flow.t_ms.0 * 1e-3).next_down().max(0.0),
                (flow.t_ms.1 * 1e-3).next_up(),
            ),
            peak_ma: flow.peak_ma,
            paths: flow.paths,
            loops: flow.loops,
        }),
        Err(blocked) => WcecVerdict::Unknown(blocked),
    })
}

fn flow_of(
    graph: &TaskGraph,
    id: NodeId,
    visiting: &mut Vec<bool>,
    memo: &mut Vec<Option<Flow>>,
) -> Result<Flow, Blocked> {
    if let Some(flow) = &memo[id.index()] {
        return Ok(flow.clone());
    }
    if visiting[id.index()] {
        return Err(Blocked {
            node: id,
            label: graph.node(id).label.clone(),
            reason: "unstructured back-edge re-enters the node; express the cycle as a \
                     bounded loop"
                .into(),
        });
    }
    visiting[id.index()] = true;
    let result = transfer(graph, id, visiting, memo);
    visiting[id.index()] = false;
    if let Ok(flow) = &result {
        memo[id.index()] = Some(flow.clone());
    }
    result
}

fn transfer(
    graph: &TaskGraph,
    id: NodeId,
    visiting: &mut Vec<bool>,
    memo: &mut Vec<Option<Flow>>,
) -> Result<Flow, Blocked> {
    let node = graph.node(id);
    match &node.kind {
        NodeKind::Block(ops) => {
            let mut acc = Flow::nothing();
            for op in ops {
                let step = Flow {
                    energy: op.energy(),
                    t_ms: op.time_ms,
                    peak_ma: op.peak_ma,
                    paths: 1,
                    loops: 0,
                };
                acc = acc.then(&step);
            }
            Ok(acc)
        }
        NodeKind::Seq(children) => {
            let mut acc = Flow::nothing();
            for child in children {
                acc = acc.then(&flow_of(graph, *child, visiting, memo)?);
            }
            Ok(acc)
        }
        NodeKind::Branch(then_, else_) => {
            let t = flow_of(graph, *then_, visiting, memo)?;
            let e = flow_of(graph, *else_, visiting, memo)?;
            Ok(t.join(&e))
        }
        NodeKind::Loop { body, bound } => {
            let body_flow = flow_of(graph, *body, visiting, memo)?;
            match bound.bounds() {
                Some((lo, hi)) => Ok(body_flow.repeat(lo, hi)),
                // Widening fallback: the body re-enters with at least its
                // own cost added, so the only finite fixpoint is a free
                // body. Anything else diverges to +∞ — report Unknown
                // with this loop as the blocking node.
                None => {
                    if body_flow.energy.hi() == Joules::ZERO && body_flow.t_ms.1 == 0.0 {
                        Ok(Flow {
                            peak_ma: body_flow.peak_ma,
                            ..Flow::nothing()
                        })
                    } else {
                        Err(Blocked {
                            node: id,
                            label: node.label.clone(),
                            reason: format!(
                                "unbounded loop over a non-free body (ΔE ≤ {:.4} mJ, Δt ≤ {:.3} ms \
                                 per iteration); widening diverges — declare an iteration bound",
                                body_flow.energy.hi().get() * 1e3,
                                body_flow.t_ms.1
                            ),
                        })
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{LoopBound, OpCost};

    fn op(e_mj: f64, t_ms: f64, peak: f64) -> OpCost {
        OpCost::exact("op", e_mj, t_ms, peak)
    }

    fn cert(graph: &TaskGraph) -> Certificate {
        match analyze(graph).unwrap() {
            WcecVerdict::Certified(c) => c,
            WcecVerdict::Unknown(b) => panic!("expected certificate, got Unknown: {b}"),
        }
    }

    #[test]
    fn straight_line_sums_outward() {
        let mut g = TaskGraph::new("t");
        g.block("a", vec![op(1.0, 2.0, 5.0), op(2.0, 3.0, 8.0)]);
        let c = cert(&g);
        assert!(c.energy_mj_lo() <= 3.0 && 3.0 <= c.energy_mj_hi());
        assert!(c.time_s.0 <= 5.0e-3 && 5.0e-3 <= c.time_s.1);
        assert_eq!(c.peak_ma, 8.0);
        assert_eq!(c.paths, 1);
    }

    #[test]
    fn branch_joins_cheapest_and_dearest_paths() {
        let mut g = TaskGraph::new("t");
        let cheap = g.block("cheap", vec![op(1.0, 1.0, 2.0)]);
        let dear = g.block("dear", vec![op(5.0, 9.0, 20.0)]);
        g.branch("detect?", dear, cheap);
        let c = cert(&g);
        // Path-sensitive: lo is the whole cheap path, hi the whole dear
        // path — not a per-op mixture.
        assert!(c.energy_mj_lo() <= 1.0 && c.energy_mj_lo() > 0.9);
        assert!(c.energy_mj_hi() >= 5.0 && c.energy_mj_hi() < 5.1);
        assert_eq!(c.paths, 2);
        assert_eq!(c.peak_ma, 20.0);
    }

    #[test]
    fn nested_loops_multiply_symbolically() {
        let mut g = TaskGraph::new("t");
        let body = g.block("body", vec![op(0.5, 1.0, 3.0)]);
        let inner = g.bounded_loop("inner", LoopBound::Range(2, 4), body);
        let outer = g.bounded_loop("outer", LoopBound::Exact(3), inner);
        g.set_root(outer);
        let c = cert(&g);
        // lo = 0.5·2·3, hi = 0.5·4·3, with one-ulp outward slack.
        assert!((c.energy_mj_lo() - 3.0).abs() < 1e-9);
        assert!((c.energy_mj_hi() - 6.0).abs() < 1e-9);
        assert_eq!(c.loops, 2);
    }

    #[test]
    fn shared_merge_block_is_one_visit_two_paths() {
        let mut g = TaskGraph::new("t");
        let merge = g.block("merge", vec![op(1.0, 1.0, 1.0)]);
        let a = g.seq("a", vec![merge]);
        let b = g.seq("b", vec![merge]);
        g.branch("diamond", a, b);
        let c = cert(&g);
        assert_eq!(c.paths, 2);
        assert!((c.energy_mj_hi() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unbounded_loop_reports_blocking_node() {
        let mut g = TaskGraph::new("t");
        let body = g.block("poll", vec![op(0.1, 0.5, 1.0)]);
        let lp = g.bounded_loop("wait-irq", LoopBound::Unbounded, body);
        g.set_root(lp);
        match analyze(&g).unwrap() {
            WcecVerdict::Unknown(b) => {
                assert_eq!(b.node, lp);
                assert_eq!(b.label, "wait-irq");
                assert!(b.reason.contains("widening"), "{}", b.reason);
            }
            WcecVerdict::Certified(c) => panic!("unsound: certified {c:?}"),
        }
    }

    #[test]
    fn unbounded_loop_over_free_body_converges() {
        let mut g = TaskGraph::new("t");
        let free = g.block("nop", vec![]);
        let lp = g.bounded_loop("spin", LoopBound::Unbounded, free);
        let tail = g.block("tail", vec![op(2.0, 1.0, 4.0)]);
        g.seq("root", vec![lp, tail]);
        let c = cert(&g);
        assert!((c.energy_mj_hi() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unstructured_cycle_is_unknown_not_hang() {
        let mut g = TaskGraph::new("t");
        let a = g.seq("a", vec![]);
        let b = g.seq("b", vec![a]);
        // Rewire a to point back at b: a cycle no structured walk admits.
        g.nodes[a.index()].kind = NodeKind::Seq(vec![b]);
        g.set_root(b);
        match analyze(&g).unwrap() {
            WcecVerdict::Unknown(blocked) => {
                assert!(blocked.reason.contains("back-edge"), "{}", blocked.reason);
            }
            WcecVerdict::Certified(c) => panic!("unsound: certified {c:?}"),
        }
    }

    #[test]
    fn zero_iteration_floor_admits_skipping_the_loop() {
        let mut g = TaskGraph::new("t");
        let body = g.block("body", vec![op(1.0, 1.0, 1.0)]);
        let lp = g.bounded_loop("retry", LoopBound::Range(0, 2), body);
        g.set_root(lp);
        let c = cert(&g);
        assert_eq!(c.energy_mj_lo(), 0.0);
        assert!((c.energy_mj_hi() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_graph_is_an_error_not_a_verdict() {
        let g = TaskGraph::new("t");
        assert!(analyze(&g).is_err());
    }
}

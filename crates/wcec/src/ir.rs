//! The bounded task IR the worst-case analyzer runs over.
//!
//! A task is a flat arena of [`Node`]s — straight-line [`NodeKind::Block`]s
//! of costed operations, composed by sequencing, two-way branches, and
//! loops with declared iteration bounds — rooted at [`TaskGraph::root`].
//! The arena form (indices, not boxes) keeps the wire encoding trivial
//! (`culpeo_api::TaskGraphDto` is the same shape) and lets merge blocks be
//! *shared*: a diamond CFG references its join block from both arms, and
//! the analyzer memoizes per node, so joins cost one visit.
//!
//! Costs are intervals, not scalars. Every [`OpCost`] carries an energy
//! band `[lo, hi]` in millijoules at the regulated output rail and a time
//! band in milliseconds — calibrated ops (see [`crate::workloads`]) wrap
//! a measured peripheral profile in a tolerance band, so the analyzer's
//! certificate brackets calibration error instead of trusting a point
//! estimate.

use culpeo_units::{IntervalJ, Joules};

/// Index of a node in its [`TaskGraph`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena slot this id names.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One costed operation: a peripheral transaction or an MCU-active span.
#[derive(Debug, Clone, PartialEq)]
pub struct OpCost {
    /// What the op is, for diagnostics ("ble-tx", "feature-extract", …).
    pub name: String,
    /// Output-rail energy band `[lo, hi]` in millijoules.
    pub energy_mj: (f64, f64),
    /// Duration band `[lo, hi]` in milliseconds.
    pub time_ms: (f64, f64),
    /// Worst-case instantaneous rail current in milliamps (drives the
    /// ESR-dip `V_δ` when a consumer knows the buffer's resistance).
    pub peak_ma: f64,
}

impl OpCost {
    /// An op whose cost is known exactly (degenerate bands).
    #[must_use]
    pub fn exact(name: impl Into<String>, energy_mj: f64, time_ms: f64, peak_ma: f64) -> Self {
        Self {
            name: name.into(),
            energy_mj: (energy_mj, energy_mj),
            time_ms: (time_ms, time_ms),
            peak_ma,
        }
    }

    /// An op calibrated from a nominal measurement with a symmetric
    /// relative tolerance: bands `[x·(1−tol), x·(1+tol)]`.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not in `[0, 1)`.
    #[must_use]
    pub fn calibrated(
        name: impl Into<String>,
        energy_mj: f64,
        time_ms: f64,
        peak_ma: f64,
        tol: f64,
    ) -> Self {
        assert!((0.0..1.0).contains(&tol), "tolerance must be in [0, 1)");
        Self {
            name: name.into(),
            energy_mj: (energy_mj * (1.0 - tol), energy_mj * (1.0 + tol)),
            time_ms: (time_ms * (1.0 - tol), time_ms * (1.0 + tol)),
            peak_ma,
        }
    }

    /// The energy band as a directed-rounding interval in joules.
    #[must_use]
    pub fn energy(&self) -> IntervalJ {
        IntervalJ::new(
            Joules::new((self.energy_mj.0 * 1e-3).max(0.0)),
            Joules::new(self.energy_mj.1 * 1e-3),
        )
    }

    fn validate(&self, node: NodeId, index: usize) -> Result<(), IrError> {
        let band_ok =
            |(lo, hi): (f64, f64)| lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi;
        if self.name.is_empty() {
            return Err(IrError::BadOp {
                node,
                op: index,
                reason: "op name is empty".into(),
            });
        }
        if !band_ok(self.energy_mj) {
            return Err(IrError::BadOp {
                node,
                op: index,
                reason: format!(
                    "energy band must satisfy 0 ≤ lo ≤ hi and be finite; got [{}, {}] mJ",
                    self.energy_mj.0, self.energy_mj.1
                ),
            });
        }
        if !band_ok(self.time_ms) || self.time_ms.1 <= 0.0 {
            return Err(IrError::BadOp {
                node,
                op: index,
                reason: format!(
                    "time band must satisfy 0 ≤ lo ≤ hi, hi > 0, finite; got [{}, {}] ms",
                    self.time_ms.0, self.time_ms.1
                ),
            });
        }
        if !self.peak_ma.is_finite() || self.peak_ma < 0.0 {
            return Err(IrError::BadOp {
                node,
                op: index,
                reason: format!(
                    "peak current must be finite and ≥ 0; got {} mA",
                    self.peak_ma
                ),
            });
        }
        Ok(())
    }
}

/// Declared iteration bounds of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopBound {
    /// Exactly `n` iterations every execution.
    Exact(u32),
    /// Between `lo` and `hi` iterations, inclusive.
    Range(u32, u32),
    /// No static bound — the analyzer's widening fallback applies.
    Unbounded,
}

impl LoopBound {
    /// The `[lo, hi]` iteration interval, `None` when unbounded.
    #[must_use]
    pub fn bounds(self) -> Option<(u32, u32)> {
        match self {
            Self::Exact(n) => Some((n, n)),
            Self::Range(lo, hi) => Some((lo, hi)),
            Self::Unbounded => None,
        }
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A basic block: straight-line ops, executed in order.
    Block(Vec<OpCost>),
    /// Children executed in order.
    Seq(Vec<NodeId>),
    /// Two-way branch; control joins after either arm.
    Branch(NodeId, NodeId),
    /// A loop over `body` with declared `bound`.
    Loop {
        /// The loop body.
        body: NodeId,
        /// Declared iteration bounds.
        bound: LoopBound,
    },
}

/// One arena slot: a labelled [`NodeKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Diagnostic label ("frame-loop", "detect?", …).
    pub label: String,
    /// The node's structure.
    pub kind: NodeKind,
}

/// A whole task: an arena of nodes plus the entry node.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    /// Task name; certificates and lints key on it.
    pub name: String,
    /// The node arena.
    pub nodes: Vec<Node>,
    /// Entry node.
    pub root: NodeId,
}

impl TaskGraph {
    /// An empty graph; add nodes with the builder methods, then
    /// [`Self::set_root`]. The root defaults to the *last* node pushed,
    /// which is the natural top-level composition order.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            root: NodeId(0),
        }
    }

    fn push(&mut self, label: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("arena fits in u32"));
        self.nodes.push(Node {
            label: label.into(),
            kind,
        });
        self.root = id;
        id
    }

    /// Adds a basic block of ops.
    pub fn block(&mut self, label: impl Into<String>, ops: Vec<OpCost>) -> NodeId {
        self.push(label, NodeKind::Block(ops))
    }

    /// Adds a sequence node.
    pub fn seq(&mut self, label: impl Into<String>, children: Vec<NodeId>) -> NodeId {
        self.push(label, NodeKind::Seq(children))
    }

    /// Adds a two-way branch.
    pub fn branch(&mut self, label: impl Into<String>, then_: NodeId, else_: NodeId) -> NodeId {
        self.push(label, NodeKind::Branch(then_, else_))
    }

    /// Adds a loop with declared bounds.
    pub fn bounded_loop(
        &mut self,
        label: impl Into<String>,
        bound: LoopBound,
        body: NodeId,
    ) -> NodeId {
        self.push(label, NodeKind::Loop { body, bound })
    }

    /// Overrides the entry node.
    pub fn set_root(&mut self, id: NodeId) {
        self.root = id;
    }

    /// The node at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (validated graphs never do).
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Every child id a node references.
    #[must_use]
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        match &self.node(id).kind {
            NodeKind::Block(_) => Vec::new(),
            NodeKind::Seq(c) => c.clone(),
            NodeKind::Branch(t, e) => vec![*t, *e],
            NodeKind::Loop { body, .. } => vec![*body],
        }
    }

    /// Structural validation: non-empty, every referenced id in range,
    /// every op's bands well-formed, loop ranges ordered.
    ///
    /// # Errors
    ///
    /// The first structural defect found.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.name.is_empty() {
            return Err(IrError::Unnamed);
        }
        if self.nodes.is_empty() {
            return Err(IrError::Empty);
        }
        let in_range = |id: NodeId| id.index() < self.nodes.len();
        if !in_range(self.root) {
            return Err(IrError::DanglingNode {
                node: self.root,
                child: self.root,
            });
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(u32::try_from(i).expect("arena fits in u32"));
            match &node.kind {
                NodeKind::Block(ops) => {
                    for (j, op) in ops.iter().enumerate() {
                        op.validate(id, j)?;
                    }
                }
                NodeKind::Loop {
                    bound: LoopBound::Range(lo, hi),
                    ..
                } if lo > hi => {
                    return Err(IrError::BadBound {
                        node: id,
                        lo: *lo,
                        hi: *hi,
                    });
                }
                _ => {}
            }
            for child in self.children(id) {
                if !in_range(child) {
                    return Err(IrError::DanglingNode { node: id, child });
                }
            }
        }
        Ok(())
    }
}

/// A structural defect in a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// The graph has no name.
    Unnamed,
    /// The graph has no nodes.
    Empty,
    /// A node references an id outside the arena.
    DanglingNode {
        /// The referencing node (equal to `child` when the root dangles).
        node: NodeId,
        /// The out-of-range id.
        child: NodeId,
    },
    /// A loop's declared range is inverted.
    BadBound {
        /// The loop node.
        node: NodeId,
        /// Declared lower bound.
        lo: u32,
        /// Declared upper bound.
        hi: u32,
    },
    /// An op's cost bands are malformed.
    BadOp {
        /// The owning block.
        node: NodeId,
        /// Index of the op within the block.
        op: usize,
        /// What is wrong with it.
        reason: String,
    },
}

impl core::fmt::Display for IrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Unnamed => write!(f, "task graph has no name"),
            Self::Empty => write!(f, "task graph has no nodes"),
            Self::DanglingNode { node, child } => {
                write!(
                    f,
                    "node {} references out-of-range node {}",
                    node.0, child.0
                )
            }
            Self::BadBound { node, lo, hi } => {
                write!(
                    f,
                    "loop node {} declares inverted bounds [{lo}, {hi}]",
                    node.0
                )
            }
            Self::BadOp { node, op, reason } => {
                write!(f, "node {} op {op}: {reason}", node.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_and_validates() {
        let mut g = TaskGraph::new("t");
        let a = g.block("a", vec![OpCost::exact("x", 1.0, 2.0, 5.0)]);
        let b = g.block("b", vec![]);
        let br = g.branch("a-or-b", a, b);
        let lp = g.bounded_loop("spin", LoopBound::Exact(3), br);
        let root = g.seq("root", vec![lp, a]);
        assert_eq!(g.root, root);
        assert!(g.validate().is_ok());
        assert_eq!(g.children(br), vec![a, b]);
    }

    #[test]
    fn dangling_child_is_rejected() {
        let mut g = TaskGraph::new("t");
        let a = g.block("a", vec![]);
        g.seq("root", vec![a, NodeId(99)]);
        assert!(matches!(
            g.validate(),
            Err(IrError::DanglingNode {
                child: NodeId(99),
                ..
            })
        ));
    }

    #[test]
    fn malformed_op_band_is_rejected() {
        let mut g = TaskGraph::new("t");
        let mut op = OpCost::exact("x", 1.0, 2.0, 5.0);
        op.energy_mj = (2.0, 1.0);
        g.block("a", vec![op]);
        assert!(matches!(g.validate(), Err(IrError::BadOp { .. })));
    }

    #[test]
    fn calibrated_bands_bracket_the_nominal() {
        let op = OpCost::calibrated("x", 10.0, 4.0, 25.0, 0.05);
        assert!(op.energy_mj.0 < 10.0 && 10.0 < op.energy_mj.1);
        assert!(op.energy().lo().get() <= 10.0e-3);
        assert!(op.energy().hi().get() >= 10.0e-3);
    }
}

//! Task-graph models of the paper's Table III workloads, with per-op
//! costs calibrated against the `culpeo-loadgen` peripheral profiles.
//!
//! Three models cover the table's load spectrum: the APDS-9960 **gesture**
//! engine (short intense sensor bursts in a frame loop), the CC2650 **BLE**
//! report (multi-hump radio transaction with link-layer retries and a long
//! listen window), and the Cortex-M4 **MNIST** accelerator (seconds of
//! sustained compute). Calibration is honest about its own error: each
//! measured op is wrapped in a ±[`CALIB_TOLERANCE`] band, so certificates
//! bracket the profile rather than trusting it as a point.
//!
//! Op energies are taken at the regulated output rail
//! ([`LoadProfile::output_energy`] at the model's `v_out`), which is the
//! same rail `culpeo-powersim`'s ledger meters `delivered` on — the
//! soundness battery compares the two directly.

use culpeo_loadgen::peripheral::{BleRadio, GestureSensor, MnistAccelerator};
use culpeo_loadgen::LoadProfile;
use culpeo_units::{Seconds, Volts};

use crate::ir::{LoopBound, OpCost, TaskGraph};

/// Relative calibration tolerance wrapped around every measured op.
pub const CALIB_TOLERANCE: f64 = 0.05;

/// Calibrates an op from a measured peripheral profile at rail `v_out`.
#[must_use]
pub fn op_from_profile(name: &str, profile: &LoadProfile, v_out: Volts) -> OpCost {
    OpCost::calibrated(
        name,
        profile.output_energy(v_out).get() * 1e3,
        profile.duration().get() * 1e3,
        profile.peak().get() * 1e3,
        CALIB_TOLERANCE,
    )
}

/// An MCU-active span: `current_ma` at the rail for `time_ms`.
fn mcu(name: &str, current_ma: f64, time_ms: f64, v_out: Volts) -> OpCost {
    OpCost::calibrated(
        name,
        current_ma * 1e-3 * v_out.get() * time_ms,
        time_ms,
        current_ma,
        CALIB_TOLERANCE,
    )
}

/// **Gesture** (APDS-9960): a frame loop of eight sensor bursts each
/// followed by feature extraction, then a detection branch — the
/// classifier on a hit, a cheap idle tail otherwise.
#[must_use]
pub fn gesture(v_out: Volts) -> TaskGraph {
    let mut g = TaskGraph::new("gesture");
    let frame = g.block(
        "frame",
        vec![
            op_from_profile("apds-read", &GestureSensor::default().profile(), v_out),
            mcu("feature-extract", 3.0, 2.0, v_out),
        ],
    );
    let frames = g.bounded_loop("frame-loop", LoopBound::Exact(8), frame);
    let classify = g.block("classify", vec![mcu("classify", 4.0, 6.0, v_out)]);
    let idle = g.block("idle-tail", vec![mcu("idle-tail", 0.2, 1.0, v_out)]);
    let detect = g.branch("detect?", classify, idle);
    g.seq("gesture", vec![frames, detect]);
    g
}

/// **BLE report** (CC2650): stack wake, one to three transmit attempts
/// (link-layer retries), then a two-second listen window for the reply.
#[must_use]
pub fn ble_report(v_out: Volts) -> TaskGraph {
    let radio = BleRadio::default();
    let mut g = TaskGraph::new("ble-report");
    let wake = g.block("stack-wake", vec![mcu("stack-wake", 3.0, 2.0, v_out)]);
    let tx = g.block(
        "tx",
        vec![op_from_profile("ble-tx", &radio.profile(), v_out)],
    );
    let retries = g.bounded_loop("tx-retries", LoopBound::Range(1, 3), tx);
    let listen = g.block(
        "listen",
        vec![op_from_profile(
            "ble-listen",
            &radio.listen_profile(Seconds::new(2.0)),
            v_out,
        )],
    );
    g.seq("ble-report", vec![wake, retries, listen]);
    g
}

/// **MNIST** (Cortex-M4 accelerator): window load, four batched
/// inferences, and a report branch that transmits on a detection.
#[must_use]
pub fn mnist(v_out: Volts) -> TaskGraph {
    let mut g = TaskGraph::new("mnist");
    let load = g.block("load-window", vec![mcu("load-window", 2.5, 4.0, v_out)]);
    let infer = g.block(
        "infer",
        vec![op_from_profile(
            "mnist-infer",
            &MnistAccelerator::default().profile(),
            v_out,
        )],
    );
    let batch = g.bounded_loop("infer-batch", LoopBound::Exact(4), infer);
    let report = g.block(
        "report",
        vec![op_from_profile(
            "ble-tx",
            &BleRadio::default().profile(),
            v_out,
        )],
    );
    let skip = g.block("skip", vec![mcu("skip", 0.2, 0.5, v_out)]);
    let detect = g.branch("digit?", report, skip);
    g.seq("mnist", vec![load, batch, detect]);
    g
}

/// All three Table III workload models.
#[must_use]
pub fn table3(v_out: Volts) -> Vec<TaskGraph> {
    vec![gesture(v_out), ble_report(v_out), mnist(v_out)]
}

/// The workload model a launch task name maps to, if any. Lints and
/// certificate substitution key on exact names so hand-declared tasks
/// ("sense", "radio", …) stay out of the analyzer's jurisdiction.
#[must_use]
pub fn named(task: &str, v_out: Volts) -> Option<TaskGraph> {
    match task {
        "gesture" => Some(gesture(v_out)),
        "ble-report" => Some(ble_report(v_out)),
        "mnist" => Some(mnist(v_out)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{analyze, WcecVerdict};

    const V_OUT: Volts = Volts::new(2.55);

    #[test]
    fn all_three_models_get_finite_certificates() {
        for graph in table3(V_OUT) {
            match analyze(&graph).unwrap() {
                WcecVerdict::Certified(c) => {
                    assert!(
                        c.energy_mj_hi().is_finite() && c.energy_mj_hi() > 0.0,
                        "{}",
                        c.task
                    );
                    assert!(c.time_s.1.is_finite() && c.time_s.1 > 0.0, "{}", c.task);
                    assert!(c.peak_ma > 0.0, "{}", c.task);
                }
                WcecVerdict::Unknown(b) => panic!("{}: {b}", graph.name),
            }
        }
    }

    #[test]
    fn calibration_brackets_the_measured_profiles() {
        // The certified band must contain the nominal measured energy of
        // the dearest path, computed by hand from the same profiles.
        let radio = BleRadio::default();
        let tx = radio.profile().output_energy(V_OUT).get() * 1e3;
        let listen = radio
            .listen_profile(Seconds::new(2.0))
            .output_energy(V_OUT)
            .get()
            * 1e3;
        let wake = 3.0e-3 * V_OUT.get() * 2.0;
        let worst = wake + 3.0 * tx + listen;
        let best = wake + tx + listen;
        let c = match analyze(&ble_report(V_OUT)).unwrap() {
            WcecVerdict::Certified(c) => c,
            WcecVerdict::Unknown(b) => panic!("{b}"),
        };
        assert!(c.energy_mj_lo() <= best && best <= c.energy_mj_hi());
        assert!(c.energy_mj_hi() >= worst);
        assert!(c.energy_mj_hi() <= worst * (1.0 + 2.0 * CALIB_TOLERANCE));
    }

    #[test]
    fn named_maps_exact_names_only() {
        assert!(named("gesture", V_OUT).is_some());
        assert!(named("ble-report", V_OUT).is_some());
        assert!(named("mnist", V_OUT).is_some());
        assert!(named("sense", V_OUT).is_none());
        assert!(named("radio", V_OUT).is_none());
    }

    #[test]
    fn gesture_peak_matches_the_sensor_burst() {
        let c = match analyze(&gesture(V_OUT)).unwrap() {
            WcecVerdict::Certified(c) => c,
            WcecVerdict::Unknown(b) => panic!("{b}"),
        };
        let sensor_peak = GestureSensor::default().profile().peak().get() * 1e3;
        assert!((c.peak_ma - sensor_peak).abs() < 1e-9);
    }
}

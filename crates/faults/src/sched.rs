//! Scheduler-level faults: surprise brownouts and adversarial arrival
//! bursts thrown at the charge policies.
//!
//! Both faults reuse the real `culpeo-sched` trial machinery — the same
//! plant, monitor, and event engine the Figure 12/13 reproductions run —
//! so a chaos verdict here is a statement about the actual scheduler,
//! not a mock. The adversarial knobs are drawn from a seed:
//!
//! * **Arrival burst** — event interarrivals compressed by a seeded
//!   factor, so reports arrive faster than the harvester was budgeted
//!   for. The energy-only baseline launches doomed sequences; the
//!   Culpeo-thresholded policy must not brown out more than it does.
//! * **Surprise brownout** — the app's harvester replaced by a seeded
//!   square-wave dropout source, starving the plant mid-trial.

use culpeo_sched::{apps, run_trial, AppSpec, ChargePolicy, TrialResult};
use culpeo_units::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::physics;

/// Both policies run against the same faulted app and seed — the duel the
/// chaos battery judges.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDuel {
    /// The Culpeo-thresholded policy's trial.
    pub culpeo: TrialResult,
    /// The energy-only baseline's trial.
    pub catnap: TrialResult,
}

/// Runs the duel: both policies, same app, same duration, same arrival
/// seed (seeded trials generate identical event timelines per policy).
#[must_use]
pub fn duel(app: &AppSpec, duration: Seconds, seed: u64) -> PolicyDuel {
    PolicyDuel {
        culpeo: run_trial(app, ChargePolicy::Culpeo, duration, seed),
        catnap: run_trial(app, ChargePolicy::Catnap, duration, seed),
    }
}

/// Responsive Reporting with its interarrivals compressed by a seeded
/// factor in `[0.3, 0.7]` — events arrive ~1.4–3.3× faster than the
/// deployment was budgeted for.
#[must_use]
pub fn arrival_burst_app(seed: u64) -> AppSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let factor = rng.gen_range(0.3..0.7);
    apps::responsive_reporting().with_rate_scaled(factor)
}

/// Responsive Reporting powered by a seeded dropout harvester instead of
/// its budgeted constant-power source — the plant periodically starves.
#[must_use]
pub fn surprise_brownout_app(seed: u64) -> AppSpec {
    let mut app = apps::responsive_reporting();
    app.harvester = physics::dropout_harvester(seed);
    app
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_apps_are_deterministic_per_seed() {
        assert_eq!(arrival_burst_app(3), arrival_burst_app(3));
        assert_eq!(surprise_brownout_app(3), surprise_brownout_app(3));
        assert_ne!(
            arrival_burst_app(3).classes[0].source,
            arrival_burst_app(4).classes[0].source
        );
    }

    #[test]
    fn culpeo_survives_the_burst_no_worse_than_catnap() {
        let app = arrival_burst_app(17);
        let d = duel(&app, Seconds::new(120.0), 17);
        assert!(
            d.culpeo.brownouts <= d.catnap.brownouts,
            "culpeo {} vs catnap {}",
            d.culpeo.brownouts,
            d.catnap.brownouts
        );
    }

    #[test]
    fn duel_is_deterministic() {
        let app = surprise_brownout_app(5);
        assert_eq!(
            duel(&app, Seconds::new(60.0), 5),
            duel(&app, Seconds::new(60.0), 5)
        );
    }
}

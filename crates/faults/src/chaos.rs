//! The chaos battery: every fault level, one seeded deterministic run.
//!
//! [`scenarios`] is a fixed roster — each entry injects one fault at one
//! level and judges the stack's response against the paper's safety
//! claims. [`run_battery`] fans the roster out over a [`Sweep`] (the
//! same input-order-scatter executor the figure sweeps use), so the
//! report is byte-identical at any thread count: every scenario draws
//! all of its randomness from [`crate::sub_seed`]`(master, roster_index)`
//! and reports only deterministic facts — status codes, error kinds,
//! diagnostic codes, voltages rounded to millivolts. No scenario may put
//! a port number, a timing, or an OS error string in its detail.
//!
//! The battery's own promises, asserted per scenario:
//!
//! * nothing panics — a panic anywhere (caught per scenario) is a
//!   failure, full stop;
//! * `V_safe`-gated dispatch never browns out under in-envelope faults
//!   (harvester dropout, arrival bursts);
//! * the linter promotes out-of-envelope trace corruption to C0xx
//!   diagnostics instead of crashing or silently analyzing garbage;
//! * the daemon always answers abusive clients with well-formed JSON
//!   errors (408/413/503 carrying `Retry-After` where transient) and
//!   still drains cleanly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use culpeo_api::{
    ApiErrorKind, LintRequest, LintResponse, MetricsResponse, NamedTrace, SystemSpec, VsafeRequest,
    VsafeResponse,
};
use culpeo_device::intermittent::{run_to_completion_with, DispatchPolicy};
use culpeo_exec::Sweep;
use culpeo_powersim::{AgingState, Harvester, PowerSystem};
use culpeo_served::{handle, Server};
use culpeo_units::{Amps, Hertz, Seconds, Volts, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::service::{self, ServiceFault};
use crate::trace::{corrupt_csv, TraceFault};
use crate::{physics, sched, store, sub_seed};

/// Which layer of the stack a scenario attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Corrupted trace files into the linter and analyzer.
    Trace,
    /// Plant drift: ESR aging, capacitance derating, harvester dropout.
    Physics,
    /// Surprise brownouts and arrival bursts at the dispatch policies.
    Sched,
    /// Abusive TCP clients at the daemon.
    Service,
    /// Crash/torn-write/overload injections at the durable telemetry
    /// log.
    Store,
}

impl Level {
    /// Stable lower-case name used in reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Physics => "physics",
            Level::Sched => "sched",
            Level::Service => "service",
            Level::Store => "store",
        }
    }
}

/// One roster entry: a named fault injection plus its judgment.
///
/// The function receives the scenario's own sub-seed and returns
/// `Ok(detail)` on a passed judgment, `Err(detail)` on a failed one.
/// Details must be deterministic functions of the seed alone.
pub struct Scenario {
    /// Stable kebab-case identifier (also the table row name).
    pub id: &'static str,
    /// The layer attacked.
    pub level: Level,
    /// One-line statement of what passing means.
    pub expect: &'static str,
    /// The injection + judgment.
    pub run: fn(u64) -> Result<String, String>,
}

/// One scenario's verdict, reduced to deterministic facts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The scenario's roster id.
    pub id: String,
    /// The attacked level's name.
    pub level: String,
    /// Whether the judgment passed.
    pub passed: bool,
    /// Deterministic explanation (no ports, timings, or OS text).
    pub detail: String,
}

/// The whole battery's outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatteryReport {
    /// The master seed the battery ran under.
    pub seed: u64,
    /// Scenarios passed.
    pub passed: u64,
    /// Scenarios failed.
    pub failed: u64,
    /// Per-scenario verdicts, in roster order.
    pub results: Vec<ScenarioResult>,
}

impl BatteryReport {
    /// True when every scenario passed.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.failed == 0
    }

    /// The fixed-width human table (deterministic, diffable).
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("chaos battery  seed={}\n", self.seed));
        out.push_str(&format!(
            "{:-<6} {:-<8} {:-<30} {}\n",
            "", "", "", "--------"
        ));
        for r in &self.results {
            out.push_str(&format!(
                "{:<6} {:<8} {:<30} {}\n",
                if r.passed { "PASS" } else { "FAIL" },
                r.level,
                r.id,
                r.detail
            ));
        }
        out.push_str(&format!(
            "{:-<6} {:-<8} {:-<30} {}\n",
            "", "", "", "--------"
        ));
        out.push_str(&format!(
            "{} passed, {} failed, {} total\n",
            self.passed,
            self.failed,
            self.passed + self.failed
        ));
        out
    }

    /// The battery as pretty JSON (the `--format json` document).
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which would be a serde-stub bug.
    #[must_use]
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// The fixed scenario roster: every level represented, every entry
/// judged independently.
#[must_use]
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            id: "trace-nan-samples",
            level: Level::Trace,
            expect: "linter raises C010 on NaN currents",
            run: trace_nan_samples,
        },
        Scenario {
            id: "trace-negative-spikes",
            level: Level::Trace,
            expect: "linter raises C012 on negative spikes",
            run: trace_negative_spikes,
        },
        Scenario {
            id: "trace-dropped-samples",
            level: Level::Trace,
            expect: "linter raises C011 on a holey timebase",
            run: trace_dropped_samples,
        },
        Scenario {
            id: "trace-duplicated-samples",
            level: Level::Trace,
            expect: "linter raises C011 on a stuttered timebase",
            run: trace_duplicated_samples,
        },
        Scenario {
            id: "trace-truncated-mid-write",
            level: Level::Trace,
            expect: "analyzer answers truncation gracefully, never panics",
            run: trace_truncated_mid_write,
        },
        Scenario {
            id: "physics-esr-aging-step",
            level: Level::Physics,
            expect: "grown ESR strictly raises V_safe",
            run: physics_esr_aging_step,
        },
        Scenario {
            id: "physics-cap-derate",
            level: Level::Physics,
            expect: "derated capacitance strictly raises V_safe",
            run: physics_cap_derate,
        },
        Scenario {
            id: "physics-harvester-dropout",
            level: Level::Physics,
            expect: "V_safe-gated dispatch completes with zero failures",
            run: physics_harvester_dropout,
        },
        Scenario {
            id: "sched-arrival-burst",
            level: Level::Sched,
            expect: "culpeo thresholds brown out no more than energy-only",
            run: sched_arrival_burst,
        },
        Scenario {
            id: "sched-surprise-brownout",
            level: Level::Sched,
            expect: "culpeo thresholds brown out no more than energy-only",
            run: sched_surprise_brownout,
        },
        Scenario {
            id: "service-garbage-bytes",
            level: Level::Service,
            expect: "daemon answers 400 bad_request JSON",
            run: service_garbage_bytes,
        },
        Scenario {
            id: "service-slow-loris",
            level: Level::Service,
            expect: "daemon cuts the stall off with 408 + Retry-After",
            run: service_slow_loris,
        },
        Scenario {
            id: "service-lying-content-length",
            level: Level::Service,
            expect: "daemon answers the short body with 408 + Retry-After",
            run: service_lying_content_length,
        },
        Scenario {
            id: "service-oversized-body",
            level: Level::Service,
            expect: "daemon rejects the claim alone with 413 too_large",
            run: service_oversized_body,
        },
        Scenario {
            id: "service-mid-request-disconnect",
            level: Level::Service,
            expect: "daemon survives hang-ups and keeps serving",
            run: service_mid_request_disconnect,
        },
        Scenario {
            id: "service-handler-panic",
            level: Level::Service,
            expect: "500 answered, lock recovered, daemon keeps serving",
            run: service_handler_panic,
        },
        Scenario {
            id: "service-drain-under-chaos",
            level: Level::Service,
            expect: "daemon drains cleanly after absorbing the abuse",
            run: service_drain_under_chaos,
        },
        Scenario {
            id: "sched-verifier-refuted-duel",
            level: Level::Sched,
            expect: "a verifier-refuted schedule browns out on the plant",
            run: sched_verifier_refuted_duel,
        },
        Scenario {
            id: "store-kill-mid-append",
            level: Level::Store,
            expect: "recovery keeps the acked prefix and truncates the torn tail",
            run: store_kill_mid_append,
        },
        Scenario {
            id: "store-crc-corrupt-quarantine",
            level: Level::Store,
            expect: "a CRC-corrupt segment is quarantined, never fatal",
            run: store_crc_corrupt_quarantine,
        },
        Scenario {
            id: "store-overload-shed-no-loss",
            level: Level::Store,
            expect: "overload sheds new ingests; every acked record survives",
            run: store_overload_shed_no_loss,
        },
    ]
}

/// Runs the whole roster under `master_seed`, scattered over `sweep`.
///
/// Each scenario runs inside `catch_unwind` — a panic is a failed
/// scenario, not a dead battery — and the default panic hook is
/// silenced for the duration so injected panics do not spray backtraces
/// over the report. Results come back in roster order regardless of
/// thread count.
#[must_use]
pub fn run_battery(master_seed: u64, sweep: &Sweep) -> BatteryReport {
    let roster = scenarios();
    // Silence the hook while injected panics (scenario-level and the
    // daemon's own handler hook) are expected; restore it after.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let results: Vec<ScenarioResult> = sweep.map(&roster, |i, s| {
        let seed = sub_seed(master_seed, i as u64);
        let verdict = catch_unwind(AssertUnwindSafe(|| (s.run)(seed)));
        let (passed, detail) = match verdict {
            Ok(Ok(detail)) => (true, detail),
            Ok(Err(detail)) => (false, detail),
            Err(_) => (false, "panicked".to_string()),
        };
        ScenarioResult {
            id: s.id.to_string(),
            level: s.level.as_str().to_string(),
            passed,
            detail,
        }
    });
    std::panic::set_hook(prev_hook);
    let passed = results.iter().filter(|r| r.passed).count() as u64;
    let failed = results.len() as u64 - passed;
    BatteryReport {
        seed: master_seed,
        passed,
        failed,
        results,
    }
}

// ---------------------------------------------------------------------
// Trace level
// ---------------------------------------------------------------------

/// The clean reference trace every corruption starts from.
fn clean_csv() -> String {
    let trace = culpeo_loadgen::peripheral::BleRadio::default()
        .profile()
        .sample(Hertz::new(125_000.0));
    culpeo_loadgen::io::to_csv(&trace)
}

/// Lints one (possibly corrupted) CSV against the Capybara spec.
fn lint_csv(csv: String) -> Result<LintResponse, culpeo_api::ApiError> {
    handle::lint(&LintRequest {
        schema_version: None,
        spec: SystemSpec::capybara(),
        traces: vec![NamedTrace {
            name: "chaos.csv".to_string(),
            csv,
        }],
        plan: None,
        deny_warnings: false,
    })
}

/// Judges that the lint battery fired `code` on the corrupted trace.
fn expect_code(fault: &TraceFault, seed: u64, code: &str) -> Result<String, String> {
    let csv = corrupt_csv(&clean_csv(), fault, seed);
    let resp = lint_csv(csv)
        .map_err(|e| format!("{} refused outright: {}", fault.name(), e.kind.as_str()))?;
    let doc = serde_json::to_string(&resp.report).map_err(|e| format!("report: {e}"))?;
    if doc.contains(code) {
        Ok(format!("{} promoted to {code}", fault.name()))
    } else {
        Err(format!("{} missed {code}", fault.name()))
    }
}

fn trace_nan_samples(seed: u64) -> Result<String, String> {
    let count = StdRng::seed_from_u64(seed).gen_range(2..6);
    expect_code(&TraceFault::NanSamples { count }, seed, "C010")
}

fn trace_negative_spikes(seed: u64) -> Result<String, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let fault = TraceFault::NegativeSpikes {
        count: rng.gen_range(2..6),
        magnitude_a: rng.gen_range(0.01..0.2),
    };
    expect_code(&fault, seed, "C012")
}

fn trace_dropped_samples(seed: u64) -> Result<String, String> {
    let frac = StdRng::seed_from_u64(seed).gen_range(0.1..0.4);
    expect_code(&TraceFault::DropSamples { frac }, seed, "C011")
}

fn trace_duplicated_samples(seed: u64) -> Result<String, String> {
    let frac = StdRng::seed_from_u64(seed).gen_range(0.1..0.4);
    expect_code(&TraceFault::DuplicateSamples { frac }, seed, "C011")
}

fn trace_truncated_mid_write(seed: u64) -> Result<String, String> {
    let keep = StdRng::seed_from_u64(seed).gen_range(0.2..0.9);
    let csv = corrupt_csv(
        &clean_csv(),
        &TraceFault::TruncateMidWrite { keep_frac: keep },
        seed,
    );
    // Depending on where the cut lands the file is either a clean parse
    // error or a shorter-but-valid trace; both are graceful. A panic
    // (caught by the battery) or a non-trace error kind is the failure.
    match handle::vsafe(&VsafeRequest {
        schema_version: None,
        spec: None,
        trace_csv: csv,
    }) {
        Ok(_) => Ok("truncation still parsed; analyzed the shorter trace".to_string()),
        Err(e) if e.kind == ApiErrorKind::Trace => {
            Ok("truncation refused with a clean trace error".to_string())
        }
        Err(e) => Err(format!("wrong error kind: {}", e.kind.as_str())),
    }
}

// ---------------------------------------------------------------------
// Physics level
// ---------------------------------------------------------------------

/// `V_safe` of the clean reference trace under `spec`.
fn vsafe_of(spec: SystemSpec) -> Result<VsafeResponse, String> {
    handle::vsafe(&VsafeRequest {
        schema_version: None,
        spec: Some(spec),
        trace_csv: clean_csv(),
    })
    .map_err(|e| format!("vsafe refused: {}", e.kind.as_str()))
}

fn physics_esr_aging_step(seed: u64) -> Result<String, String> {
    let growth = StdRng::seed_from_u64(seed).gen_range(1.5..2.5);
    let aging = AgingState {
        capacitance_retention: 1.0,
        esr_growth: growth,
    };
    let fresh = vsafe_of(SystemSpec::capybara())?;
    let aged = vsafe_of(physics::aged_capybara_spec(aging))?;
    if aged.v_safe_v > fresh.v_safe_v {
        Ok(format!(
            "V_safe rose {:.3} V -> {:.3} V under ESR growth",
            fresh.v_safe_v, aged.v_safe_v
        ))
    } else {
        Err(format!(
            "V_safe did not rise: {:.3} V -> {:.3} V",
            fresh.v_safe_v, aged.v_safe_v
        ))
    }
}

fn physics_cap_derate(seed: u64) -> Result<String, String> {
    let retention = StdRng::seed_from_u64(seed).gen_range(0.5..0.8);
    let aging = AgingState {
        capacitance_retention: retention,
        esr_growth: 1.0,
    };
    let fresh = vsafe_of(SystemSpec::capybara())?;
    let aged = vsafe_of(physics::aged_capybara_spec(aging))?;
    if aged.v_safe_v > fresh.v_safe_v {
        Ok(format!(
            "V_safe rose {:.3} V -> {:.3} V under derating",
            fresh.v_safe_v, aged.v_safe_v
        ))
    } else {
        Err(format!(
            "V_safe did not rise: {:.3} V -> {:.3} V",
            fresh.v_safe_v, aged.v_safe_v
        ))
    }
}

fn physics_harvester_dropout(seed: u64) -> Result<String, String> {
    // Theorem 1 assumes zero harvest during the task, so a dropout can
    // only slow the wait, never doom a gated dispatch.
    let mut sys = PowerSystem::builder()
        .harvester(physics::dropout_harvester(seed))
        .build();
    sys.set_buffer_voltage(Volts::new(1.7));
    sys.force_output_enabled();
    let task = culpeo_loadgen::LoadProfile::constant(
        "lora",
        Amps::from_milli(50.0),
        Seconds::from_milli(100.0),
    );
    let stats = run_to_completion_with(
        &mut sys,
        &task,
        DispatchPolicy::VsafeGated(Volts::new(2.2)),
        5,
        Seconds::new(120.0),
    );
    if stats.completed && stats.failures == 0 && stats.attempts == 1 {
        Ok("gated dispatch completed first try, zero brownouts".to_string())
    } else {
        Err(format!(
            "attempts={} failures={} completed={}",
            stats.attempts, stats.failures, stats.completed
        ))
    }
}

// ---------------------------------------------------------------------
// Scheduler level
// ---------------------------------------------------------------------

fn judge_duel(d: &sched::PolicyDuel) -> Result<String, String> {
    if d.culpeo.brownouts <= d.catnap.brownouts {
        Ok(format!(
            "brownouts: culpeo {} <= energy-only {}",
            d.culpeo.brownouts, d.catnap.brownouts
        ))
    } else {
        Err(format!(
            "culpeo browned out more: {} > {}",
            d.culpeo.brownouts, d.catnap.brownouts
        ))
    }
}

fn sched_arrival_burst(seed: u64) -> Result<String, String> {
    let app = sched::arrival_burst_app(seed);
    judge_duel(&sched::duel(&app, Seconds::new(120.0), seed))
}

fn sched_surprise_brownout(seed: u64) -> Result<String, String> {
    let app = sched::surprise_brownout_app(seed);
    judge_duel(&sched::duel(&app, Seconds::new(120.0), seed))
}

/// The verifier and the plant must agree on doom: take the Figure 5
/// schedule, inflate its first launch until `culpeo-verify` refutes it,
/// then replay the counterexample prefix on the simulated plant and
/// demand a brownout at (or before) the launch the verifier blamed.
fn sched_verifier_refuted_duel(seed: u64) -> Result<String, String> {
    let spec = SystemSpec::capybara();
    let mut plan = culpeo_api::PlanSpec::figure5_example();
    plan.launches[0].energy_mj = 150.0 + (seed % 101) as f64;
    plan.launches[0].v_delta = 0.3;
    let model = spec
        .into_model()
        .map_err(|e| format!("spec rejected: {e:?}"))?;
    let outcome =
        culpeo_verify::verify_with_model(&model, &plan, &culpeo_verify::VerifyConfig::default());
    let culpeo_verify::Verdict::Refuted(cex) = &outcome.verdict else {
        return Err(format!(
            "expected refuted at {} mJ, got {}",
            plan.launches[0].energy_mj,
            outcome.verdict.tag()
        ));
    };
    let mut sys = culpeo_verify::plant_from_model(&model);
    sys.set_harvester(Harvester::ConstantPower(Watts::from_milli(
        plan.recharge_power_mw,
    )));
    let replay = culpeo_verify::replay_on(&mut sys, &model, &cex.prefix, cex.v_start);
    match replay.brownout_launch {
        Some(hit) if hit <= cex.failing_launch => Ok(format!(
            "refuted {} mJ in cycle {}, plant browned out at launch {hit}",
            plan.launches[0].energy_mj, cex.cycle
        )),
        Some(hit) => Err(format!(
            "plant browned out at launch {hit}, after the blamed launch {}",
            cex.failing_launch
        )),
        None => Err("verifier-refuted plan survived its own counterexample".to_string()),
    }
}

// ---------------------------------------------------------------------
// Service level
// ---------------------------------------------------------------------

/// Boots a chaos-configured daemon, runs `f` against it, always shuts
/// the daemon down before returning.
fn with_daemon<F>(f: F) -> Result<String, String>
where
    F: FnOnce(std::net::SocketAddr) -> Result<String, String>,
{
    let server =
        Server::start(&service::chaos_server_config()).map_err(|_| "daemon failed to boot")?;
    let addr = server.addr();
    let verdict = f(addr);
    server.shutdown_handle().request();
    let _ = server.join();
    verdict
}

/// Judges one abusive conversation: expected status, error kind, and
/// `Retry-After` seconds.
fn expect_answer(
    fault: &ServiceFault,
    seed: u64,
    status: u16,
    kind: ApiErrorKind,
    retry_after_s: Option<u32>,
) -> Result<String, String> {
    with_daemon(|addr| {
        let got = service::apply(addr, fault, seed).map_err(|_| "transport failed")?;
        if got.status != Some(status) {
            return Err(format!("{}: status {:?}", fault.name(), got.status));
        }
        if got.error_kind.as_deref() != Some(kind.as_str()) {
            return Err(format!("{}: kind {:?}", fault.name(), got.error_kind));
        }
        if got.retry_after_s != retry_after_s {
            return Err(format!("{}: retry {:?}", fault.name(), got.retry_after_s));
        }
        match retry_after_s {
            Some(s) => Ok(format!(
                "{} answered {status} {} with Retry-After {s}",
                fault.name(),
                kind.as_str()
            )),
            None => Ok(format!(
                "{} answered {status} {}",
                fault.name(),
                kind.as_str()
            )),
        }
    })
}

fn service_garbage_bytes(seed: u64) -> Result<String, String> {
    let len = StdRng::seed_from_u64(seed).gen_range(64..1024);
    expect_answer(
        &ServiceFault::GarbageBytes { len },
        seed,
        400,
        ApiErrorKind::BadRequest,
        None,
    )
}

fn service_slow_loris(seed: u64) -> Result<String, String> {
    expect_answer(
        &ServiceFault::SlowLoris,
        seed,
        408,
        ApiErrorKind::Timeout,
        Some(1),
    )
}

fn service_lying_content_length(seed: u64) -> Result<String, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let claimed = rng.gen_range(500..4000);
    let sent = rng.gen_range(0..100);
    expect_answer(
        &ServiceFault::LyingContentLength { claimed, sent },
        seed,
        408,
        ApiErrorKind::Timeout,
        Some(1),
    )
}

fn service_oversized_body(seed: u64) -> Result<String, String> {
    expect_answer(
        &ServiceFault::OversizedBody,
        seed,
        413,
        ApiErrorKind::TooLarge,
        None,
    )
}

fn service_mid_request_disconnect(seed: u64) -> Result<String, String> {
    with_daemon(|addr| {
        for k in 0..4u64 {
            let got = service::apply(addr, &ServiceFault::MidBodyDisconnect, sub_seed(seed, k))
                .map_err(|_| "transport failed")?;
            if got.status.is_some() {
                return Err("disconnect unexpectedly read an answer".to_string());
            }
        }
        let (health, _) = service::probe(addr, "/v1/health").map_err(|_| "probe failed")?;
        if health.status == Some(200) {
            Ok("4 hang-ups absorbed; health still 200".to_string())
        } else {
            Err(format!("health after hang-ups: {:?}", health.status))
        }
    })
}

fn service_handler_panic(seed: u64) -> Result<String, String> {
    with_daemon(|addr| {
        let got = service::apply(addr, &ServiceFault::HandlerPanic, seed)
            .map_err(|_| "transport failed")?;
        if got.status != Some(500) {
            return Err(format!("panic answered {:?}", got.status));
        }
        let (health, _) = service::probe(addr, "/v1/health").map_err(|_| "probe failed")?;
        if health.status != Some(200) {
            return Err(format!("health after panic: {:?}", health.status));
        }
        let (m, body) = service::probe(addr, "/v1/metrics").map_err(|_| "probe failed")?;
        if m.status != Some(200) {
            return Err(format!("metrics after panic: {:?}", m.status));
        }
        let doc: MetricsResponse =
            serde_json::from_str(&body).map_err(|_| "metrics body malformed")?;
        if doc.shed.handler_panics < 1 {
            return Err("panic not counted in shed metrics".to_string());
        }
        if doc.shed.lock_recoveries < 1 {
            return Err("poisoned cache lock was not recovered".to_string());
        }
        Ok("500 answered; lock recovered; panic counted; daemon healthy".to_string())
    })
}

fn service_drain_under_chaos(seed: u64) -> Result<String, String> {
    let server =
        Server::start(&service::chaos_server_config()).map_err(|_| "daemon failed to boot")?;
    let addr = server.addr();
    let abuse = [
        ServiceFault::GarbageBytes { len: 300 },
        ServiceFault::OversizedBody,
        ServiceFault::MidBodyDisconnect,
        ServiceFault::LyingContentLength {
            claimed: 900,
            sent: 9,
        },
    ];
    for (k, fault) in abuse.iter().enumerate() {
        service::apply(addr, fault, sub_seed(seed, k as u64)).map_err(|_| "transport failed")?;
    }
    let (health, _) = service::probe(addr, "/v1/health").map_err(|_| "probe failed")?;
    server.shutdown_handle().request();
    let summary = server.join(); // blocks until workers drain
    if health.status != Some(200) {
        return Err(format!("health under chaos: {:?}", health.status));
    }
    if summary.requests == 0 {
        return Err("summary counted no requests".to_string());
    }
    Ok("absorbed the abuse, answered health 200, drained cleanly".to_string())
}

// ---------------------------------------------------------------------
// Store level
// ---------------------------------------------------------------------

/// Kill -9 mid-append: write a seeded stream durably, cut the log at a
/// seeded byte offset, and demand recovery yields exactly the surviving
/// whole-frame prefix — twice (idempotence).
fn store_kill_mid_append(seed: u64) -> Result<String, String> {
    use culpeo_store::{Durability, FRAME_LEN};
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(6..14usize);
    let frame = FRAME_LEN as u64;
    let total = n as u64 * frame;
    let crash = rng.gen_range(0..total + 1);
    let dir = store::scratch_dir("kill", seed);
    let verdict = (|| {
        store::write_durable(
            &dir,
            store::tiny_config(3, Durability::Manual),
            &store::seeded_triples(seed, n),
        )
        .map_err(|_| "seed write failed".to_string())?;
        store::crash_at(&dir, crash).map_err(|_| "crash injection failed".to_string())?;
        let expected = crash / frame;
        let tail = crash % frame;
        let report = culpeo_store::recover(&dir).map_err(|_| "recovery errored".to_string())?;
        if report.records_recovered != expected {
            return Err(format!(
                "kill at frame {expected}+{tail}B of {n}: recovered {} records, wanted {expected}",
                report.records_recovered
            ));
        }
        if report.truncated_bytes != tail {
            return Err(format!(
                "truncated {} bytes, wanted the {tail}-byte torn tail",
                report.truncated_bytes
            ));
        }
        let again = culpeo_store::recover(&dir).map_err(|_| "re-recovery errored".to_string())?;
        if again.records_recovered != expected || again.truncated_bytes != 0 {
            return Err("recovery was not idempotent".to_string());
        }
        Ok(format!(
            "killed at frame {expected} (+{tail}B) of {n}; prefix recovered twice"
        ))
    })();
    let _ = std::fs::remove_dir_all(&dir);
    verdict
}

/// Bit-rot inside a sealed segment: flip one payload byte in the middle
/// segment and demand recovery quarantines that segment alone, keeping
/// every record around it — and keeps answering on the second pass.
fn store_crc_corrupt_quarantine(seed: u64) -> Result<String, String> {
    use culpeo_store::{Durability, FRAME_LEN, HEADER_LEN, PAYLOAD_LEN};
    let mut rng = StdRng::seed_from_u64(seed);
    // 9 records over 3-frame segments: segments 0,1 sealed, 2 live.
    let n = 9usize;
    let frame = FRAME_LEN as u64;
    // A payload byte of a seeded frame inside segment 1 (frames 3..6).
    let victim_frame = rng.gen_range(3..6u64);
    let within = HEADER_LEN as u64 + rng.gen_range(0..PAYLOAD_LEN as u64);
    let dir = store::scratch_dir("crc", seed);
    let verdict = (|| {
        store::write_durable(
            &dir,
            store::tiny_config(3, Durability::Manual),
            &store::seeded_triples(seed, n),
        )
        .map_err(|_| "seed write failed".to_string())?;
        store::flip_byte(&dir, victim_frame * frame + within)
            .map_err(|_| "flip injection failed".to_string())?;
        let report = culpeo_store::recover(&dir).map_err(|_| "recovery errored".to_string())?;
        if report.quarantined.len() != 1 {
            return Err(format!(
                "{} segments quarantined, wanted exactly the corrupt one",
                report.quarantined.len()
            ));
        }
        if report.records_recovered != 6 {
            return Err(format!(
                "recovered {} records, wanted the 6 outside the corrupt segment",
                report.records_recovered
            ));
        }
        // The second pass still *lists* the renamed-aside file but must
        // find nothing new to repair.
        let again = culpeo_store::recover(&dir).map_err(|_| "re-recovery errored".to_string())?;
        if again.records_recovered != 6
            || again.quarantined.len() != 1
            || again.truncated_bytes != 0
        {
            return Err("recovery was not idempotent after quarantine".to_string());
        }
        Ok(format!(
            "flipped a byte in frame {victim_frame}; 1 segment quarantined, 6 of 9 records kept"
        ))
    })();
    let _ = std::fs::remove_dir_all(&dir);
    verdict
}

/// Fsync-backlog overload: with the backlog cap at zero every new
/// ingest must shed with `Overloaded` *before* writing a byte, so the
/// acked records on disk survive recovery untouched.
fn store_overload_shed_no_loss(seed: u64) -> Result<String, String> {
    use culpeo_store::{Durability, Store, StoreConfig, StoreError};
    let mut rng = StdRng::seed_from_u64(seed);
    let acked = rng.gen_range(4..9usize);
    let shed_attempts = rng.gen_range(3..7usize);
    let dir = store::scratch_dir("shed", seed);
    let verdict = (|| {
        store::write_durable(
            &dir,
            store::tiny_config(3, Durability::Manual),
            &store::seeded_triples(seed, acked),
        )
        .map_err(|_| "seed write failed".to_string())?;
        {
            let config = StoreConfig {
                max_pending: 0,
                durability: Durability::Fsync,
                ..store::tiny_config(3, Durability::Fsync)
            };
            let (full, _) = Store::open(&dir, config).map_err(|_| "reopen failed".to_string())?;
            for k in 0..shed_attempts {
                match full.append(1, 2.3, 2.2, 2.28) {
                    Err(StoreError::Overloaded { .. }) => {}
                    Err(e) => return Err(format!("shed {k} failed oddly: {e}")),
                    Ok(_) => return Err("a full backlog acked an ingest".to_string()),
                }
            }
        }
        let report = culpeo_store::recover(&dir).map_err(|_| "recovery errored".to_string())?;
        if report.records_recovered != acked as u64 {
            return Err(format!(
                "recovered {} records, wanted all {acked} acked ones",
                report.records_recovered
            ));
        }
        if report.truncated_bytes != 0 {
            return Err("shed ingests leaked bytes into the log".to_string());
        }
        Ok(format!(
            "shed {shed_attempts} ingests at a full backlog; all {acked} acked records survived"
        ))
    })();
    let _ = std::fs::remove_dir_all(&dir);
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_every_level_with_at_least_twelve_scenarios() {
        let roster = scenarios();
        assert!(roster.len() >= 12, "only {} scenarios", roster.len());
        for level in [
            Level::Trace,
            Level::Physics,
            Level::Sched,
            Level::Service,
            Level::Store,
        ] {
            assert!(
                roster.iter().filter(|s| s.level == level).count() >= 2,
                "level {} under-covered",
                level.as_str()
            );
        }
        let mut ids: Vec<&str> = roster.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), roster.len(), "duplicate scenario ids");
    }

    #[test]
    fn battery_passes_and_is_byte_deterministic_across_thread_counts() {
        let serial = run_battery(42, &Sweep::serial());
        assert!(
            serial.all_passed(),
            "failed scenarios:\n{}",
            serial.render_table()
        );
        let threaded = run_battery(42, &Sweep::with_threads(4));
        assert_eq!(
            serial.render_json(),
            threaded.render_json(),
            "report must be byte-identical at any thread count"
        );
        assert_eq!(serial.render_table(), threaded.render_table());
    }

    #[test]
    fn different_seeds_change_details_not_verdicts() {
        let a = run_battery(1, &Sweep::with_threads(4));
        let b = run_battery(2, &Sweep::with_threads(4));
        assert!(a.all_passed(), "seed 1:\n{}", a.render_table());
        assert!(b.all_passed(), "seed 2:\n{}", b.render_table());
        assert_ne!(
            a.render_json(),
            b.render_json(),
            "seeded randomness must actually vary"
        );
    }
}

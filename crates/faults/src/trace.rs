//! Deterministic corruption of `culpeo-trace v1` CSV text.
//!
//! Each injector models a real capture failure: an instrument that
//! skipped samples, a logger that stuttered and wrote rows twice, an ADC
//! that glitched to NaN or rang negative, a file that was cut off
//! mid-write. All of them operate on the *textual* CSV so the corruption
//! flows through the same `parse_raw` path a real corrupted file would,
//! and all of them are pure functions of `(csv, fault, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One way to corrupt a trace file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceFault {
    /// Delete roughly `frac` of the data rows (timestamps of the
    /// survivors keep their original values, so the file's timebase now
    /// disagrees with `dt_us` — the C011 sampling lint's territory).
    DropSamples {
        /// Fraction of rows to delete, in `(0, 1)`.
        frac: f64,
    },
    /// Write roughly `frac` of the data rows twice (a stuttering logger;
    /// duplicate timestamps also violate the `dt_us` timebase → C011).
    DuplicateSamples {
        /// Fraction of rows to duplicate, in `(0, 1)`.
        frac: f64,
    },
    /// Replace `count` random samples' current values with `NaN` (an ADC
    /// glitch → C010).
    NanSamples {
        /// How many samples to corrupt.
        count: usize,
    },
    /// Replace `count` random samples with a negative spike of the given
    /// magnitude (instrument ringing → C012).
    NegativeSpikes {
        /// How many samples to corrupt.
        count: usize,
        /// Spike magnitude in amps (written as its negation).
        magnitude_a: f64,
    },
    /// Cut the file off mid-write at roughly `keep_frac` of its bytes —
    /// not at a line boundary, the way a crashed logger really truncates.
    TruncateMidWrite {
        /// Fraction of the byte length to keep, in `(0, 1)`.
        keep_frac: f64,
    },
}

impl TraceFault {
    /// A short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceFault::DropSamples { .. } => "drop-samples",
            TraceFault::DuplicateSamples { .. } => "duplicate-samples",
            TraceFault::NanSamples { .. } => "nan-samples",
            TraceFault::NegativeSpikes { .. } => "negative-spikes",
            TraceFault::TruncateMidWrite { .. } => "truncate-mid-write",
        }
    }
}

/// Applies `fault` to the CSV text, deterministically under `seed`.
///
/// Header lines (`# …` and the `time_s,current_a` column header) are
/// preserved; only data rows are touched. At least one row is always
/// corrupted even when a fractional fault rounds to zero victims.
#[must_use]
pub fn corrupt_csv(csv: &str, fault: &TraceFault, seed: u64) -> String {
    if let TraceFault::TruncateMidWrite { keep_frac } = fault {
        let keep = truncation_point(csv, *keep_frac);
        return csv[..keep].to_string();
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut header: Vec<&str> = Vec::new();
    let mut rows: Vec<String> = Vec::new();
    for line in csv.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with('#') || trimmed == "time_s,current_a" || trimmed.is_empty() {
            header.push(line);
        } else {
            rows.push(line.to_string());
        }
    }
    if rows.is_empty() {
        return csv.to_string();
    }

    match *fault {
        TraceFault::DropSamples { frac } => {
            let victims = pick_victims(&mut rng, rows.len(), frac);
            let mut kept = Vec::with_capacity(rows.len());
            for (i, row) in rows.into_iter().enumerate() {
                if !victims.contains(&i) {
                    kept.push(row);
                }
            }
            // Never drop everything: an empty body is a different fault.
            if kept.is_empty() {
                kept.push("0.0,0.0".to_string());
            }
            rows = kept;
        }
        TraceFault::DuplicateSamples { frac } => {
            let victims = pick_victims(&mut rng, rows.len(), frac);
            let mut doubled = Vec::with_capacity(rows.len() + victims.len());
            for (i, row) in rows.into_iter().enumerate() {
                doubled.push(row.clone());
                if victims.contains(&i) {
                    doubled.push(row);
                }
            }
            rows = doubled;
        }
        TraceFault::NanSamples { count } => {
            for _ in 0..count.max(1) {
                let i = rng.gen_range(0..rows.len());
                rows[i] = rewrite_current(&rows[i], "NaN");
            }
        }
        TraceFault::NegativeSpikes { count, magnitude_a } => {
            for _ in 0..count.max(1) {
                let i = rng.gen_range(0..rows.len());
                rows[i] = rewrite_current(&rows[i], &format!("{}", -magnitude_a.abs()));
            }
        }
        TraceFault::TruncateMidWrite { .. } => unreachable!("handled above"),
    }

    let mut out = String::with_capacity(csv.len());
    for line in header {
        out.push_str(line);
        out.push('\n');
    }
    for row in rows {
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Picks a deterministic set of distinct victim row indices covering
/// roughly `frac` of `len` rows, always at least one.
fn pick_victims(rng: &mut StdRng, len: usize, frac: f64) -> Vec<usize> {
    let want = ((len as f64 * frac.clamp(0.0, 1.0)).round() as usize)
        .max(1)
        .min(len);
    let mut victims: Vec<usize> = Vec::with_capacity(want);
    while victims.len() < want {
        let i = rng.gen_range(0..len);
        if !victims.contains(&i) {
            victims.push(i);
        }
    }
    victims
}

/// Replaces the current column of one `time_s,current_a` row.
fn rewrite_current(row: &str, new_current: &str) -> String {
    match row.split_once(',') {
        Some((t, _)) => format!("{t},{new_current}"),
        None => row.to_string(),
    }
}

/// A cut point that lands strictly inside the data body (past the column
/// header, before the last byte) so truncation is structural, not a
/// shorter-but-valid file.
fn truncation_point(csv: &str, keep_frac: f64) -> usize {
    let body_start = csv
        .find("time_s,current_a")
        .map_or(0, |p| p + "time_s,current_a\n".len());
    let raw = (csv.len() as f64 * keep_frac.clamp(0.0, 1.0)) as usize;
    let cut = raw.clamp(body_start + 1, csv.len().saturating_sub(1));
    // Land on a char boundary (the dialect is ASCII, but stay correct).
    let mut cut = cut;
    while cut > 0 && !csv.is_char_boundary(cut) {
        cut -= 1;
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_loadgen::io;

    fn clean_csv() -> String {
        let trace = culpeo_loadgen::peripheral::BleRadio::default()
            .profile()
            .sample(culpeo_units::Hertz::new(125_000.0));
        io::to_csv(&trace)
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let csv = clean_csv();
        let f = TraceFault::NanSamples { count: 3 };
        assert_eq!(corrupt_csv(&csv, &f, 7), corrupt_csv(&csv, &f, 7));
        assert_ne!(corrupt_csv(&csv, &f, 7), corrupt_csv(&csv, &f, 8));
    }

    #[test]
    fn nan_injection_parses_raw_with_nan_samples() {
        let csv = corrupt_csv(&clean_csv(), &TraceFault::NanSamples { count: 2 }, 3);
        let raw = io::parse_raw(&csv).expect("still structurally valid");
        assert!(raw.currents().iter().any(|c| c.is_nan()));
        assert!(io::from_csv(&csv).is_err(), "strict parser must refuse");
    }

    #[test]
    fn negative_spike_injection_goes_negative() {
        let f = TraceFault::NegativeSpikes {
            count: 2,
            magnitude_a: 0.05,
        };
        let csv = corrupt_csv(&clean_csv(), &f, 11);
        let raw = io::parse_raw(&csv).unwrap();
        assert!(raw.currents().iter().any(|&c| c < 0.0));
    }

    #[test]
    fn dropped_samples_shrink_the_row_count() {
        let clean = clean_csv();
        let before = io::parse_raw(&clean).unwrap().rows.len();
        let csv = corrupt_csv(&clean, &TraceFault::DropSamples { frac: 0.25 }, 5);
        let after = io::parse_raw(&csv).unwrap().rows.len();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn duplicated_samples_grow_the_row_count() {
        let clean = clean_csv();
        let before = io::parse_raw(&clean).unwrap().rows.len();
        let csv = corrupt_csv(&clean, &TraceFault::DuplicateSamples { frac: 0.25 }, 5);
        let after = io::parse_raw(&csv).unwrap().rows.len();
        assert!(after > before, "{after} !> {before}");
    }

    #[test]
    fn truncation_cuts_mid_row() {
        let clean = clean_csv();
        let csv = corrupt_csv(&clean, &TraceFault::TruncateMidWrite { keep_frac: 0.5 }, 0);
        assert!(csv.len() < clean.len());
        assert!(!csv.ends_with('\n'), "cut must land mid-line");
    }
}

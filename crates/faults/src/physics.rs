//! Physics-level faults: the plant itself drifts out from under the
//! analysis.
//!
//! Three drifts the paper's §IV-C re-profiling story worries about, each
//! seeded and deterministic:
//!
//! * **ESR aging** — the supercapacitor's series resistance grows over
//!   its lifetime (2× at datasheet end-of-life), which raises the true
//!   `V_safe` of every task.
//! * **Capacitance derating** — the same lifetime drift shrinks the
//!   buffer (80 % retention at end-of-life), so less energy hides behind
//!   the same terminal voltage.
//! * **Harvester dropout** — the ambient source disappears for a window
//!   of every cycle. Theorem 1's guarantee assumes *zero* harvest during
//!   a task, so this fault is always in-envelope for `V_safe`-gated
//!   dispatch: it slows charging, never dooms a launched task.

use culpeo_api::SystemSpec;
use culpeo_powersim::{AgingState, Harvester, PowerSystem};
use culpeo_units::{Amps, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Capybara reference spec aged to the given state: capacitance
/// derated by the retention factor, flat ESR grown by the growth factor.
///
/// Feeding this through the same `/v1/vsafe` pipeline as the fresh spec
/// shows the aged plant demanding a strictly higher safe voltage — the
/// drift the linter and re-profiling exist to catch.
#[must_use]
pub fn aged_capybara_spec(aging: AgingState) -> SystemSpec {
    let mut spec = SystemSpec::capybara();
    spec.capacitance_mf *= aging.capacitance_retention;
    spec.esr_ohms = spec.esr_ohms.map(|r| r * aging.esr_growth);
    spec.esr_curve = spec.esr_curve.map(|pts| {
        pts.into_iter()
            .map(|(hz, r)| (hz, r * aging.esr_growth))
            .collect()
    });
    spec
}

/// Ages every branch of a live plant in place, preserving each branch's
/// present internal voltage — an ESR step mid-run, not a rebuild.
pub fn age_plant(sys: &mut PowerSystem, aging: AgingState) {
    for branch in sys.buffer_mut().branches_mut() {
        *branch = branch.aged(aging);
    }
}

/// A seeded harvester-dropout fault: a square-wave source whose current,
/// period, duty cycle, and phase are drawn deterministically from `seed`.
///
/// The ranges keep the fault in-envelope: the source always returns
/// (duty ≥ 0.3) and always charges faster than leakage while present.
#[must_use]
pub fn dropout_harvester(seed: u64) -> Harvester {
    let mut rng = StdRng::seed_from_u64(seed);
    let i_ma = rng.gen_range(3.0..8.0);
    let period_s = rng.gen_range(1.0..3.0);
    let duty = rng.gen_range(0.3..0.7);
    let phase_s = rng.gen_range(0.0..period_s);
    Harvester::Windowed {
        i: Amps::from_milli(i_ma),
        period: Seconds::new(period_s),
        duty,
        phase: Seconds::new(phase_s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_units::Volts;

    #[test]
    fn aged_spec_scales_both_knobs() {
        let fresh = SystemSpec::capybara();
        let aged = aged_capybara_spec(AgingState::END_OF_LIFE);
        assert!((aged.capacitance_mf - fresh.capacitance_mf * 0.8).abs() < 1e-9);
        assert!((aged.esr_ohms.unwrap() - fresh.esr_ohms.unwrap() * 2.0).abs() < 1e-9);
    }

    #[test]
    fn aging_a_plant_preserves_its_voltage() {
        let mut sys = PowerSystem::capybara();
        sys.set_buffer_voltage(Volts::new(2.1));
        let before = sys.v_node();
        age_plant(&mut sys, AgingState::at_fraction(0.5));
        // ESR grew, capacitance shrank, but the stored state survived.
        assert!((sys.v_node().get() - before.get()).abs() < 1e-6);
    }

    #[test]
    fn dropout_harvester_is_deterministic_and_in_envelope() {
        assert_eq!(dropout_harvester(9), dropout_harvester(9));
        assert_ne!(dropout_harvester(9), dropout_harvester(10));
        for seed in 0..16 {
            let h = dropout_harvester(seed);
            assert!(!h.is_off(), "seed {seed} produced a dead source: {h:?}");
        }
    }
}

//! Service-level faults: abusive TCP clients thrown at a live daemon.
//!
//! Each fault is a real socket conversation with a real `culpeo-served`
//! instance — no mocked streams — and each returns a [`FaultOutcome`]
//! containing only deterministic facts (status code, `Retry-After`
//! seconds, API error kind). Ports, timings, and OS error strings never
//! leave this module, so a chaos verdict built from an outcome is
//! byte-identical across runs and machines.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use culpeo_api::ApiError;
use culpeo_served::ServerConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One abusive client behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFault {
    /// Write `len` pseudo-random bytes (plus a head terminator) and read
    /// the answer — the daemon must say 400, not crash.
    GarbageBytes {
        /// How many garbage bytes to send.
        len: usize,
    },
    /// Write one byte, then stall past the read timeout — the daemon
    /// must cut the connection off with a 408.
    SlowLoris,
    /// Claim `claimed` body bytes, send only `sent`, then stall — the
    /// daemon must blame the client with a 408, not hang.
    LyingContentLength {
        /// The `Content-Length` value claimed.
        claimed: usize,
        /// Bytes actually sent.
        sent: usize,
    },
    /// Claim a body far beyond the daemon's cap — rejected as 413 on the
    /// claim alone, before any body bytes are read.
    OversizedBody,
    /// Hang up mid-request without reading the answer; the daemon must
    /// survive and keep serving the next client.
    MidBodyDisconnect,
    /// Ask the handler to panic via the `x-culpeo-fault` test hook
    /// (honored only when [`chaos_server_config`] sets `test_faults`) —
    /// the worker must answer 500 and the daemon must keep serving.
    HandlerPanic,
}

impl ServiceFault {
    /// A short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ServiceFault::GarbageBytes { .. } => "garbage-bytes",
            ServiceFault::SlowLoris => "slow-loris",
            ServiceFault::LyingContentLength { .. } => "lying-content-length",
            ServiceFault::OversizedBody => "oversized-body",
            ServiceFault::MidBodyDisconnect => "mid-body-disconnect",
            ServiceFault::HandlerPanic => "handler-panic",
        }
    }
}

/// What the daemon answered, reduced to deterministic facts only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultOutcome {
    /// HTTP status of the answer, or `None` when the fault hangs up
    /// without reading one (mid-body disconnect).
    pub status: Option<u16>,
    /// The `Retry-After` header's seconds, when present.
    pub retry_after_s: Option<u32>,
    /// The wire name of the `ApiError` kind in the JSON body, when the
    /// body parsed as one.
    pub error_kind: Option<String>,
}

/// The daemon configuration the chaos battery boots: ephemeral port, two
/// workers, short timeouts (so loris/lying faults resolve in ~1 s), and
/// the panic test hook armed.
#[must_use]
pub fn chaos_server_config() -> ServerConfig {
    ServerConfig {
        port: 0,
        threads: 2,
        read_timeout_ms: 250,
        write_timeout_ms: 250,
        deadline_ms: 2_000,
        test_faults: true,
        ..ServerConfig::default()
    }
}

/// Runs one abusive conversation against the daemon at `addr`.
///
/// # Errors
///
/// Returns `Err` only for transport failures establishing or using the
/// connection in ways the fault did not intend (e.g. the daemon is not
/// listening at all). An intentional hang-up is `Ok`.
pub fn apply(addr: SocketAddr, fault: &ServiceFault, seed: u64) -> std::io::Result<FaultOutcome> {
    let mut s = TcpStream::connect(addr)?;
    // A generous client-side ceiling so a misbehaving daemon fails the
    // scenario instead of wedging the battery.
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    match *fault {
        ServiceFault::GarbageBytes { len } => {
            let mut bytes = garbage_bytes(seed, len);
            bytes.extend_from_slice(b"\r\n\r\n");
            s.write_all(&bytes)?;
            read_outcome(&mut s)
        }
        ServiceFault::SlowLoris => {
            s.write_all(b"P")?;
            std::thread::sleep(Duration::from_millis(600));
            read_outcome(&mut s)
        }
        ServiceFault::LyingContentLength { claimed, sent } => {
            let head = format!("POST /v1/vsafe HTTP/1.1\r\nContent-Length: {claimed}\r\n\r\n");
            s.write_all(head.as_bytes())?;
            s.write_all(&garbage_bytes(seed, sent.min(claimed)))?;
            read_outcome(&mut s)
        }
        ServiceFault::OversizedBody => {
            s.write_all(b"POST /v1/vsafe HTTP/1.1\r\nContent-Length: 10737418240\r\n\r\n")?;
            read_outcome(&mut s)
        }
        ServiceFault::MidBodyDisconnect => {
            let cuts: [&[u8]; 4] = [
                b"POST",
                b"POST /v1/vsafe HTTP/1.1\r\n",
                b"POST /v1/vsafe HTTP/1.1\r\nContent-Length: 50\r\n\r\n",
                b"POST /v1/vsafe HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"trace",
            ];
            let pick = StdRng::seed_from_u64(seed).gen_range(0..cuts.len());
            s.write_all(cuts[pick])?;
            drop(s); // hang up without reading
            Ok(FaultOutcome {
                status: None,
                retry_after_s: None,
                error_kind: None,
            })
        }
        ServiceFault::HandlerPanic => {
            s.write_all(b"GET /v1/health HTTP/1.1\r\nx-culpeo-fault: panic\r\n\r\n")?;
            read_outcome(&mut s)
        }
    }
}

/// A plain well-formed request, used to prove the daemon still serves
/// after a fault (and to fetch `/v1/metrics` for shed counters).
///
/// # Errors
///
/// Propagates transport failures; a daemon that stopped answering is the
/// scenario's failure to report.
pub fn probe(addr: SocketAddr, path: &str) -> std::io::Result<(FaultOutcome, String)> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    s.write_all(format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes())?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)?;
    let outcome = parse_outcome(&raw);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| unenvelope(b).to_string())
        .unwrap_or_default();
    Ok((outcome, body))
}

/// Deterministic pseudo-random bytes from a seed (the workspace-wide
/// splitmix64 stream, [`culpeo_units::seed::byte_stream`]).
#[must_use]
pub fn garbage_bytes(seed: u64, len: usize) -> Vec<u8> {
    culpeo_units::seed::byte_stream(seed, len)
}

fn read_outcome(s: &mut TcpStream) -> std::io::Result<FaultOutcome> {
    let mut raw = String::new();
    s.read_to_string(&mut raw)?;
    Ok(parse_outcome(&raw))
}

/// Reduces a raw HTTP response to its deterministic facts.
fn parse_outcome(raw: &str) -> FaultOutcome {
    let status = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse::<u16>().ok());
    let retry_after_s = raw.lines().take_while(|l| !l.is_empty()).find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("retry-after")
            .then(|| value.trim().parse::<u32>().ok())?
    });
    let error_kind = raw
        .split_once("\r\n\r\n")
        .and_then(|(_, body)| serde_json::from_str::<ApiError>(unenvelope(body)).ok())
        .map(|e| e.kind.as_str().to_string());
    FaultOutcome {
        status,
        retry_after_s,
        error_kind,
    }
}

/// Strips the schema-2 response envelope when present, returning the
/// inner `data` document (serialised last, so it runs to the closing
/// brace). Pre-envelope and non-JSON bodies pass through untouched.
fn unenvelope(body: &str) -> &str {
    let marker = "\"data\":";
    match body.find(marker) {
        Some(i) if body.starts_with("{\"schema_version\"") && body.ends_with('}') => {
            &body[i + marker.len()..body.len() - 1]
        }
        _ => body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culpeo_served::Server;

    #[test]
    fn garbage_is_deterministic() {
        assert_eq!(garbage_bytes(1, 64), garbage_bytes(1, 64));
        assert_ne!(garbage_bytes(1, 64), garbage_bytes(2, 64));
    }

    #[test]
    fn outcome_parsing_extracts_the_facts() {
        let raw = "HTTP/1.1 408 Request Timeout\r\nContent-Type: application/json\r\n\
                   Retry-After: 1\r\nContent-Length: 2\r\n\r\n{}";
        let o = parse_outcome(raw);
        assert_eq!(o.status, Some(408));
        assert_eq!(o.retry_after_s, Some(1));
        assert_eq!(o.error_kind, None, "{{}} is not an ApiError");
    }

    #[test]
    fn every_fault_resolves_against_a_live_daemon() {
        let server = Server::start(&chaos_server_config()).unwrap();
        let addr = server.addr();
        let faults = [
            ServiceFault::GarbageBytes { len: 256 },
            ServiceFault::LyingContentLength {
                claimed: 1_000,
                sent: 10,
            },
            ServiceFault::OversizedBody,
            ServiceFault::MidBodyDisconnect,
            ServiceFault::HandlerPanic,
        ];
        for (i, fault) in faults.iter().enumerate() {
            let outcome = apply(addr, fault, i as u64).unwrap();
            match fault {
                ServiceFault::GarbageBytes { .. } => assert_eq!(outcome.status, Some(400)),
                ServiceFault::LyingContentLength { .. } => {
                    assert_eq!(outcome.status, Some(408));
                    assert_eq!(outcome.retry_after_s, Some(1));
                }
                ServiceFault::OversizedBody => assert_eq!(outcome.status, Some(413)),
                ServiceFault::MidBodyDisconnect => assert_eq!(outcome.status, None),
                ServiceFault::HandlerPanic => assert_eq!(outcome.status, Some(500)),
                ServiceFault::SlowLoris => unreachable!(),
            }
        }
        // The daemon took everything above and still serves.
        let (health, _) = probe(addr, "/v1/health").unwrap();
        assert_eq!(health.status, Some(200));
        server.shutdown_handle().request();
        let _ = server.join();
    }
}

//! `culpeo-faults`: seeded, deterministic fault injection for the whole
//! Culpeo stack, plus the chaos battery that drives it.
//!
//! Real energy-harvesting deployments fail constantly — that is the
//! premise of the paper — and every layer of this reproduction makes a
//! safety claim worth attacking:
//!
//! * [`trace`] corrupts captured current traces the way real instruments
//!   do (dropped/duplicated samples, NaN readings, negative spikes,
//!   mid-file truncation); the C0xx lint battery must *diagnose* these,
//!   never crash on them.
//! * [`physics`] drifts the plant itself (ESR aging, capacitance
//!   derating, harvester dropout windows); `V_safe`-gated dispatch must
//!   stay brownout-free whenever the fault is inside the modeled
//!   envelope (Theorem 1 assumes zero harvest, so losing the harvester
//!   can slow a task down but never doom it).
//! * [`sched`] throws surprise brownouts and adversarial arrival bursts
//!   at the dispatch policies; the gated policy's attempt count must
//!   stay bounded while the opportunistic baseline pays in failures.
//! * [`service`] abuses the daemon over real TCP (slow-loris writers,
//!   lying `Content-Length`, oversized bodies, mid-request disconnects,
//!   injected handler panics); the daemon must always answer well-formed
//!   JSON errors and still drain cleanly.
//! * [`store`] attacks the durable telemetry log the way a `kill -9`
//!   or bit-rot would (mid-append truncation, CRC-invalidating byte
//!   flips, fsync-backlog overload); recovery must keep every acked
//!   record, truncate torn tails, and quarantine — never die on —
//!   corruption.
//!
//! [`chaos`] assembles all of it into one seeded battery
//! (`culpeo chaos --seed S`) whose report is byte-identical across runs
//! and thread counts: every injector draws from a [`sub_seed`] derived
//! from the master seed and the scenario's fixed roster position, and no
//! timing, port number, or OS error text leaks into a verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod physics;
pub mod sched;
pub mod service;
pub mod store;
pub mod trace;

pub use chaos::{run_battery, scenarios, Level, Scenario, ScenarioResult};

/// Derives the `index`-th deterministic sub-seed from a master seed.
///
/// Every scenario gets its own stream: re-ordering or skipping scenarios
/// must not shift the randomness any other scenario sees. The
/// implementation is the workspace-wide [`culpeo_units::seed::sub_seed`]
/// (its historical home was here; the seed stream is pinned bit-for-bit
/// by a test in `culpeo-units`).
pub use culpeo_units::seed::sub_seed;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_seeds_are_deterministic_and_distinct() {
        assert_eq!(sub_seed(42, 0), sub_seed(42, 0));
        let seeds: Vec<u64> = (0..32).map(|i| sub_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "sub-seeds must not collide");
        assert_ne!(sub_seed(1, 0), sub_seed(2, 0), "master seed must matter");
    }
}

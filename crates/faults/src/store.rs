//! Crash and torn-write injectors for the durable telemetry store.
//!
//! Everything here manipulates a real on-disk segment directory the way
//! a `kill -9` (or a decaying flash sector) would: truncating the byte
//! stream at an arbitrary offset, deleting the segments written after
//! it, or flipping a single payload byte so the frame's CRC no longer
//! matches. The chaos battery then asserts the store's recovery
//! invariant — every acked record survives, torn tails are truncated,
//! corrupt segments are quarantined, and nothing is ever fatal.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use culpeo_store::{segment_files, Durability, Store, StoreConfig, StoreError, FRAME_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A store configuration with tiny segments (`frames` records each) so
/// scenarios exercise rotation and multi-segment recovery cheaply.
#[must_use]
pub fn tiny_config(frames: u64, durability: Durability) -> StoreConfig {
    StoreConfig {
        segment_bytes: frames * FRAME_LEN as u64,
        ring_capacity: 64,
        durability,
        max_pending: 4096,
    }
}

/// A fresh scratch directory for one scenario run. The caller removes
/// it; the name never appears in a detail string.
#[must_use]
pub fn scratch_dir(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "culpeo-chaos-store-{tag}-{seed:016x}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Draws `n` seeded, estimator-valid observation triples over a few
/// devices.
#[must_use]
pub fn seeded_triples(seed: u64, n: usize) -> Vec<(u64, f64, f64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let device = rng.gen_range(1..4u64);
            let v_start = rng.gen_range(2.2..2.5f64);
            let v_min = rng.gen_range(1.9..2.2f64);
            let v_final = rng.gen_range(v_min..2.4f64);
            (device, v_start, v_min, v_final)
        })
        .collect()
}

/// Writes `triples` into a fresh store under `dir`, syncs, and closes —
/// after this every record is acked-durable on disk.
///
/// # Errors
///
/// Propagates any store error (the scenario converts it to a failure).
pub fn write_durable(
    dir: &Path,
    config: StoreConfig,
    triples: &[(u64, f64, f64, f64)],
) -> Result<(), StoreError> {
    let (store, _) = Store::open(dir, config)?;
    for &(device, vs, vm, vf) in triples {
        store.append(device, vs, vm, vf)?;
    }
    store.sync()?;
    Ok(())
}

/// Emulates `kill -9` at byte offset `crash_at` of the cumulative log:
/// segments entirely before the offset survive, the segment containing
/// it is truncated there, and everything written after it is removed
/// (those bytes never reached the disk).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn crash_at(dir: &Path, crash_at: u64) -> std::io::Result<()> {
    let mut cum = 0u64;
    for path in segment_files(dir)? {
        let len = std::fs::metadata(&path)?.len();
        if cum + len <= crash_at {
            cum += len;
            continue;
        }
        if cum >= crash_at {
            std::fs::remove_file(&path)?;
        } else {
            let keep = crash_at - cum;
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)?
                .set_len(keep)?;
            cum += len;
        }
    }
    Ok(())
}

/// Flips one bit of the byte at `offset` into the cumulative log — a
/// torn-write / bit-rot injection that invalidates exactly one frame's
/// CRC.
///
/// # Errors
///
/// Propagates filesystem errors; fails if `offset` is past the log end.
pub fn flip_byte(dir: &Path, offset: u64) -> std::io::Result<()> {
    let mut cum = 0u64;
    for path in segment_files(dir)? {
        let len = std::fs::metadata(&path)?.len();
        if cum + len <= offset {
            cum += len;
            continue;
        }
        let within = offset - cum;
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)?;
        f.seek(SeekFrom::Start(within))?;
        let mut b = [0u8; 1];
        f.read_exact(&mut b)?;
        b[0] ^= 0x40;
        f.seek(SeekFrom::Start(within))?;
        f.write_all(&b)?;
        return Ok(());
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "offset past end of log",
    ))
}

/// Total bytes across live (non-quarantined) segments.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn log_bytes(dir: &Path) -> std::io::Result<u64> {
    let mut total = 0u64;
    for path in segment_files(dir)? {
        total += std::fs::metadata(&path)?.len();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_at_keeps_exactly_the_prefix() {
        let dir = scratch_dir("unit-crash", 7);
        let triples = seeded_triples(7, 7);
        write_durable(&dir, tiny_config(3, Durability::Manual), &triples).unwrap();
        let frame = FRAME_LEN as u64;
        crash_at(&dir, 4 * frame + 13).unwrap();
        assert_eq!(log_bytes(&dir).unwrap(), 4 * frame + 13);
        let report = culpeo_store::recover(&dir).unwrap();
        assert_eq!(report.records_recovered, 4);
        assert_eq!(report.truncated_bytes, 13);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flip_byte_changes_exactly_one_byte() {
        let dir = scratch_dir("unit-flip", 8);
        write_durable(
            &dir,
            tiny_config(3, Durability::Manual),
            &seeded_triples(8, 3),
        )
        .unwrap();
        let before = std::fs::read(segment_files(&dir).unwrap()[0].clone()).unwrap();
        flip_byte(&dir, 60).unwrap();
        let after = std::fs::read(segment_files(&dir).unwrap()[0].clone()).unwrap();
        let diffs = before
            .iter()
            .zip(after.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

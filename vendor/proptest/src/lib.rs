//! Offline stub of `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), range and tuple strategies, [`Strategy::prop_map`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted for an offline stub:
//! no shrinking (a failing case panics with the failure message only), and
//! case generation is seeded deterministically from the test's name, so
//! runs are reproducible without regression files (`proptest-regressions/`
//! directories are ignored).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the stub trades coverage for suite
        // speed since heavy simulations sit behind several properties.
        Self { cases: 32 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// `prop_assert!`-family failure; the test fails.
    Fail(String),
}

/// Result alias used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The stub's deterministic generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (the test name), so
    /// every run of a given test draws the same cases.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// A strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_strategies {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (self.start as i128 + offset) as $ty
            }
        }
    )+};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($idx:tt $name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// A strategy choosing uniformly among boxed alternative strategies; built
/// by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Wraps the alternatives; `prop_oneof!` is the intended constructor.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (0..self.arms.len()).generate(rng);
        self.arms[idx].generate(rng)
    }
}

/// Collection strategies (the upstream module of the same name).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with length drawn from `len` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    /// The result of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Chooses uniformly among the listed strategies (upstream weights are not
/// supported; every arm is equally likely).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property; failure fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bound first so `!<partial-ord comparison>` never appears
        // syntactically at expansion sites (clippy::neg_cmp_op_on_partial_ord).
        let cond: bool = $cond;
        if !cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(64);
                while passed < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed at case {}: {}",
                                stringify!($name),
                                passed + 1,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn halves() -> impl Strategy<Value = f64> {
        (0.0..1.0f64).prop_map(|v| v / 2.0)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 1.0..2.0f64, n in 3usize..7) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn mapped_strategy_applies_function(h in halves()) {
            prop_assert!(h < 0.5, "h = {}", h);
        }

        #[test]
        fn tuples_and_assume(pair in (0u64..10, 0u64..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn configured_case_count_runs(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }

    proptest! {
        #[test]
        fn oneof_draws_every_arm(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(v == 1u8 || v == 2u8 || v == 5u8 || v == 6u8, "v = {}", v);
        }

        #[test]
        fn collection_vec_respects_length_range(
            v in crate::collection::vec(0.0..1.0f64, 2..5usize)
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn deterministic_rng_is_stable_across_calls() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}

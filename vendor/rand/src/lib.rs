//! Offline stub of `rand`.
//!
//! Implements the slice of the rand 0.8 API this workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`] over `f64`/integer ranges,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The generator is
//! xorshift64\* seeded through splitmix64 — deterministic per seed, with
//! statistics comfortably good enough for simulation noise and jitter.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The object-safe core: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the type's standard distribution
    /// (`f64` ∈ [0, 1)).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        #[allow(clippy::cast_precision_loss)]
        let v = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_range_impls {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift keeps bias below 2⁻⁶⁴ for any span here.
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (self.start as i128 + offset) as $ty
            }
        }
    )+};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The stub's standard generator: xorshift64\* over a
    /// splitmix64-scrambled seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 guarantees a well-mixed, nonzero state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self {
                state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna 2016).
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_standard_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }
}

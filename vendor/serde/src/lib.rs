//! Offline stub of `serde`.
//!
//! Instead of upstream serde's visitor-based data model, this stub routes
//! everything through one owned JSON-like [`Value`]: [`Serialize`] renders
//! into a `Value`, [`Deserialize`] reads back out of one. The derive macros
//! (re-exported from `serde_derive`) generate impls of these simplified
//! traits for named-field structs. `serde_json` (the sibling stub) supplies
//! the text layer.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON value — the single data model every (de)serialisation in
/// this workspace passes through.
///
/// Objects are kept as insertion-ordered `(key, value)` pairs so rendered
/// JSON is stable and matches struct declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => Self::obj_get(fields, key),
            _ => None,
        }
    }

    /// Lookup in an already-borrowed object field list (used by derives).
    #[must_use]
    pub fn obj_get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The number payload, if this is a finite JSON number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if any.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// The single error type for both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_value(&self) -> Value;
}

/// Types reconstructable from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` out of a JSON value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived impls when an object field is absent. Overridden
    /// by `Option<T>` to yield `None`; everything else errors.
    ///
    /// # Errors
    ///
    /// Returns a "missing field" error by default.
    fn absent(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(*self)
        } else {
            Value::Null // serde_json renders non-finite floats as null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        #[allow(clippy::cast_possible_truncation)]
        f64::from_value(v).map(|n| n as f32)
    }
}

macro_rules! integer_impls {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                #[allow(clippy::cast_precision_loss)]
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| Error::custom("expected number"))?;
                #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::float_cmp)]
                if n.fract() == 0.0 && n >= <$ty>::MIN as f64 && n <= <$ty>::MAX as f64 {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    Ok(n as $ty)
                } else {
                    Err(Error::custom(concat!("expected ", stringify!($ty))))
                }
            }
        }
    )+};
}

integer_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $name:ident),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_absent_yields_none() {
        assert_eq!(<Option<f64>>::absent("x"), Ok(None));
        assert!(f64::absent("x").is_err());
    }

    #[test]
    fn vec_of_pairs_round_trips() {
        let pairs: Vec<(f64, f64)> = vec![(1.0, 2.0), (3.0, 4.5)];
        let v = pairs.to_value();
        assert_eq!(<Vec<(f64, f64)>>::from_value(&v).unwrap(), pairs);
    }

    #[test]
    fn integers_reject_fractional_numbers() {
        assert!(usize::from_value(&Value::Number(1.5)).is_err());
        assert_eq!(usize::from_value(&Value::Number(3.0)), Ok(3));
    }

    #[test]
    fn object_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(obj.get("a"), Some(&Value::Bool(true)));
        assert_eq!(obj.get("b"), None);
    }
}

//! Offline stub of `serde_derive`.
//!
//! Derives the stub `serde::Serialize` / `serde::Deserialize` traits (which
//! route through `serde::Value`) for **named-field structs** — the only
//! shape this workspace serialises. Tuple structs, enums, and generics are
//! rejected with a compile error naming the limitation.
//!
//! Supported field attributes (matching upstream syntax):
//!
//! * `#[serde(default)]` — absent fields fall back to `Default::default()`;
//! * `#[serde(skip_serializing_if = "path")]` — the field is omitted from
//!   output when `path(&field)` is true.
//!
//! No `syn`/`quote`: the struct is parsed straight off the token stream and
//! the impls are emitted as formatted source text.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// One parsed named field.
struct Field {
    name: String,
    default: bool,
    skip_serializing_if: Option<String>,
}

struct Input {
    name: String,
    fields: Vec<Field>,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_struct(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    let mut body = String::new();
    for f in &parsed.fields {
        let push = format!(
            "fields.push(({n:?}.to_string(), ::serde::Serialize::to_value(&self.{n})));",
            n = f.name
        );
        if let Some(skip) = &f.skip_serializing_if {
            let _ = writeln!(body, "if !{skip}(&self.{}) {{ {push} }}", f.name);
        } else {
            let _ = writeln!(body, "{push}");
        }
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {body}\n\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}",
        name = parsed.name,
    );
    out.parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_struct(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    let mut body = String::new();
    for f in &parsed.fields {
        let missing = if f.default {
            "::core::default::Default::default()".to_string()
        } else {
            format!("::serde::Deserialize::absent({:?})?", f.name)
        };
        let _ = writeln!(
            body,
            "{n}: match ::serde::Value::obj_get(obj, {n:?}) {{\n\
                 Some(val) => ::serde::Deserialize::from_value(val)?,\n\
                 None => {missing},\n\
             }},",
            n = f.name,
        );
    }
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 let ::serde::Value::Object(obj) = v else {{\n\
                     return Err(::serde::Error::custom(concat!(\"expected object for \", {name:?})));\n\
                 }};\n\
                 let obj: &[(String, ::serde::Value)] = obj;\n\
                 Ok(Self {{\n{body}\n}})\n\
             }}\n\
         }}",
        name = parsed.name,
    );
    out.parse().expect("generated Deserialize impl must parse")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal")
}

/// Parses `[attrs] [pub] struct Name { fields… }` from the derive input.
fn parse_struct(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip leading attributes and visibility until the `struct` keyword.
    loop {
        match tokens.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(_) => continue,
            None => return Err("serde stub derive: no `struct` found".into()),
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stub derive: missing struct name".into()),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "serde stub derive: generic struct `{name}` is not supported"
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde stub derive: tuple struct `{name}` is not supported"
                ));
            }
            Some(_) => continue,
            None => {
                return Err(format!(
                    "serde stub derive: struct `{name}` has no braced field list \
                     (enums/tuple structs are not supported)"
                ));
            }
        }
    };
    Ok(Input {
        name,
        fields: parse_fields(body.stream())?,
    })
}

fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Gather this field's attributes.
        let mut default = false;
        let mut skip_serializing_if = None;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    let Some(TokenTree::Group(attr)) = tokens.next() else {
                        return Err("serde stub derive: malformed attribute".into());
                    };
                    parse_serde_attr(attr.stream(), &mut default, &mut skip_serializing_if)?;
                }
                _ => break,
            }
        }
        // Skip visibility.
        match tokens.peek() {
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => {}
        }
        // Field name (or end of struct).
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Err(format!("serde stub derive: unexpected token `{other}`"));
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("serde stub derive: field `{name}` missing `:`")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
                None => break,
            }
        }
        fields.push(Field {
            name,
            default,
            skip_serializing_if,
        });
    }
    Ok(fields)
}

/// Inspects one `[...]` attribute body; extracts serde options, ignores the
/// rest (doc comments and other derives' helpers).
fn parse_serde_attr(
    stream: TokenStream,
    default: &mut bool,
    skip_serializing_if: &mut Option<String>,
) -> Result<(), String> {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(()), // #[doc = "..."] and friends
    }
    let Some(TokenTree::Group(args)) = tokens.next() else {
        return Ok(()); // bare `#[serde]` — nothing to do
    };
    let mut inner = args.stream().into_iter().peekable();
    while let Some(tree) = inner.next() {
        match tree {
            TokenTree::Ident(id) => {
                let key = id.to_string();
                match key.as_str() {
                    "default" => *default = true,
                    "skip_serializing_if" => match (inner.next(), inner.next()) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                            if eq.as_char() == '=' =>
                        {
                            let raw = lit.to_string();
                            let path = raw.trim_matches('"').to_string();
                            *skip_serializing_if = Some(path);
                        }
                        _ => {
                            return Err("serde stub derive: skip_serializing_if needs a \
                                     quoted path"
                                .into());
                        }
                    },
                    other => {
                        return Err(format!(
                            "serde stub derive: unsupported serde attribute `{other}`"
                        ));
                    }
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => {
                return Err(format!(
                    "serde stub derive: unexpected token in serde attribute: `{other}`"
                ));
            }
        }
    }
    Ok(())
}

//! Offline stub of `serde_json`: renders the serde stub's [`Value`] model
//! to JSON text and parses it back with a recursive-descent parser.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serialises any [`Serialize`] type to compact JSON.
///
/// # Errors
///
/// Infallible in this stub; the `Result` mirrors upstream's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises any [`Serialize`] type to 2-space-indented JSON.
///
/// # Errors
///
/// Infallible in this stub; the `Result` mirrors upstream's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Renders any [`Serialize`] type into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax or shape problem.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse_value_str(text)?)
}

/// Parses JSON text into a raw [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem.
pub fn parse_value_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.len(), indent, depth, '[', ']', |out, i, d| {
                write_value(out, &items[i], indent, d);
            });
        }
        Value::Object(fields) => {
            write_seq(out, fields.len(), indent, depth, '{', '}', |out, i, d| {
                let (k, val) = &fields[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, d);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Decode a UTF-16 surrogate pair if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.eat_keyword("\\u") {
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::custom("bad \\u escape"))?);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar as-is.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| Error::custom("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| Error::custom("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "3.25", "-17", "\"hi\\n\""] {
            let v = parse_value_str(text).unwrap();
            let back = to_string(&v).unwrap();
            assert_eq!(parse_value_str(&back).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a": [1, 2.5, {"b": null}], "c": "x\"y"}"#;
        let v = parse_value_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value_str(&compact).unwrap(), v);
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn float_precision_survives() {
        let v = Value::Number(0.1 + 0.2);
        let back = parse_value_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_value_str("[1, ?]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value_str(r#""é😀""#).unwrap();
        assert_eq!(v, Value::String("é😀".to_string()));
    }
}

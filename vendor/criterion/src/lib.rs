//! Offline stub of `criterion`.
//!
//! Provides the macro and builder surface the workspace's benches use —
//! [`Criterion::bench_function`], benchmark groups with
//! `bench_with_input`, [`Bencher::iter`], [`criterion_group!`] /
//! [`criterion_main!`] — backed by a simple warm-up + timed-batch loop
//! printing mean wall-clock time per iteration. No statistics, plots, or
//! saved baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_FOR: Duration = Duration::from_millis(200);
const WARMUP_ITERS: u64 = 3;
const MAX_ITERS: u64 = 1_000_000;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the stub's
    /// fixed time budget governs the iteration count instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility; the
    /// stub's fixed time budget applies).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Finishes the group (upstream flushes reports here; the stub reports
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier built from function and/or parameter parts.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with distinct function and parameter parts.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: Option<f64>,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        // Time batches, doubling until the total passes the target budget.
        let mut batch: u64 = 1;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < MEASURE_FOR && iters < MAX_ITERS {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(MAX_ITERS - iters).max(1);
            if iters >= MAX_ITERS {
                break;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let mean = total.as_nanos() as f64 / iters.max(1) as f64;
        self.mean_ns = Some(mean);
        self.iters = iters;
    }

    fn report(&self, id: &str) {
        match self.mean_ns {
            Some(ns) => println!(
                "{id:<48} time: {:>12} ({} iterations)",
                format_ns(ns),
                self.iters
            ),
            None => println!("{id:<48} time: (no measurement)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.bench_function("direct", |b| b.iter(|| black_box(3)));
        g.finish();
        assert_eq!(BenchmarkId::new("f", 7).0, "f/7");
    }

    #[test]
    fn ns_formatting() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("µs"));
        assert!(format_ns(12_300_000.0).contains("ms"));
        assert!(format_ns(2e9).contains(" s"));
    }
}

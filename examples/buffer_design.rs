//! Sizing an energy buffer with `V_safe` in the loop: the quantitative
//! version of Figure 3's corner-picking.
//!
//! ```text
//! cargo run -p culpeo-examples --example buffer_design
//! ```

use culpeo::design::{minimum_capacitance, sweep_designs, BufferDesign};
use culpeo_loadgen::peripheral::{BleRadio, GestureSensor, LoRaRadio};
use culpeo_units::{Farads, Ohms};

fn main() {
    let tasks = vec![
        GestureSensor::default().profile(),
        BleRadio::default().profile(),
        LoRaRadio::default().profile(),
    ];
    println!("application tasks: gesture, BLE TX, LoRa TX\n");

    // Sweep bank sizes within the supercapacitor family (R·C ≈ 0.15 Ω·F:
    // stacking parts multiplies C and divides R).
    const RC: f64 = 0.15;
    let designs: Vec<BufferDesign> = [7.5, 15.0, 22.5, 30.0, 45.0, 60.0]
        .into_iter()
        .map(|mf| {
            let c = Farads::from_milli(mf);
            BufferDesign {
                capacitance: c,
                esr: Ohms::new(RC / c.get()),
            }
        })
        .collect();

    println!(
        "{:>10} {:>10} {:>12} {:>14} {:>10}",
        "C", "ESR", "worst V_safe", "binding task", "feasible"
    );
    for eval in sweep_designs(&designs, &tasks) {
        println!(
            "{:>10} {:>10} {:>12} {:>14} {:>10}",
            format!("{}", eval.design.capacitance),
            format!("{}", eval.design.esr),
            format!("{}", eval.worst_vsafe),
            eval.binding_task,
            eval.feasible()
        );
    }

    let c_min = minimum_capacitance(
        &tasks,
        RC,
        Farads::from_milli(1.0),
        Farads::from_milli(100.0),
    )
    .expect("this task set fits below 100 mF");
    println!(
        "\nsmallest bank in this part family that supports the whole app: {c_min}\n\
         (that is {} parts of 7.5 mF)",
        (c_min.get() / 7.5e-3).ceil()
    );
}

//! Examples-only crate: see the `[[example]]` targets beside this file.

#![forbid(unsafe_code)]

//! Quickstart: compute an ESR-aware safe starting voltage for a radio
//! task and see why the energy-only answer is wrong.
//!
//! ```text
//! cargo run -p culpeo-examples --example quickstart
//! ```

use culpeo::baseline::energy_direct;
use culpeo::{pg, PowerSystemModel};
use culpeo_loadgen::peripheral::BleRadio;
use culpeo_powersim::{PowerSystem, RunConfig};
use culpeo_units::{Hertz, Volts};

fn main() {
    // 1. Characterise the power system once, offline. On real hardware
    //    this is datasheet values plus a measured ESR-vs-frequency curve;
    //    here the "hardware" is the simulated Capybara plant.
    let make_plant = PowerSystem::capybara_two_branch;
    let model = PowerSystemModel::characterize(&make_plant);
    println!(
        "power system: C = {}, V_off = {}",
        model.capacitance(),
        model.v_off()
    );

    // 2. Profile the task's current draw (a BLE transmission) and run the
    //    Culpeo-PG analysis (Algorithm 1).
    let radio = BleRadio::default().profile();
    let trace = radio.sample(Hertz::new(125_000.0));
    let culpeo = pg::compute_vsafe(&trace, &model);
    println!(
        "Culpeo-PG   : V_safe = {}, V_δ = {}",
        culpeo.v_safe, culpeo.v_delta
    );

    // 3. The energy-only answer for comparison.
    let energy_only = energy_direct(&trace, &model);
    println!("Energy-only : V_safe = {energy_only}");

    // 4. Validate both on the plant: dispatch the radio at each estimate.
    for (label, v_start) in [("Culpeo-PG", culpeo.v_safe), ("Energy-only", energy_only)] {
        let mut sys = make_plant();
        sys.set_buffer_voltage(v_start + Volts::from_milli(5.0));
        sys.force_output_enabled();
        let out = sys.run_profile(&radio, RunConfig::default());
        println!(
            "dispatch at {label} estimate ({v_start}): {} (V_min = {})",
            if out.completed() {
                "completed"
            } else {
                "POWER FAILURE"
            },
            out.v_min
        );
    }
}

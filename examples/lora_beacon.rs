//! The Figure 4 scenario as an application: an intermittent LoRa beacon
//! that must retransmit after every power failure.
//!
//! Opportunistic dispatch (run whenever the monitor allows) wastes whole
//! recharge cycles on doomed attempts; gating on Culpeo's `V_safe` waits
//! exactly long enough.
//!
//! ```text
//! cargo run -p culpeo-examples --example lora_beacon
//! ```

use culpeo::{pg, PowerSystemModel};
use culpeo_device::intermittent::{run_to_completion, DispatchPolicy};
use culpeo_loadgen::peripheral::LoRaRadio;
use culpeo_powersim::{Harvester, PowerSystem};
use culpeo_units::{Amps, Volts};

fn plant() -> PowerSystem {
    let mut sys = PowerSystem::builder()
        .harvester(Harvester::ConstantCurrent(Amps::from_milli(5.0)))
        .initial_voltage(Volts::new(1.75))
        .build();
    sys.force_output_enabled();
    sys
}

fn main() {
    let packet = LoRaRadio::default().profile();
    let model = PowerSystemModel::capybara();
    let v_safe = pg::compute_vsafe_for_profile(&packet, &model).v_safe;
    println!(
        "LoRa packet: {} peak for {}",
        packet.peak(),
        packet.duration()
    );
    println!("Culpeo V_safe for the packet: {v_safe}\n");

    // The device wakes at 1.75 V — above V_off, with plenty of stored
    // energy, but below the packet's safe voltage.
    let mut opportunistic = plant();
    let naive = run_to_completion(
        &mut opportunistic,
        &packet,
        DispatchPolicy::Opportunistic,
        10,
    );
    println!(
        "opportunistic: {} attempts, {} power failures, {:.1} s to deliver",
        naive.attempts,
        naive.failures,
        naive.elapsed.get()
    );

    // Gate at V_safe plus the 5 mV granularity of the validation search —
    // dispatching at the exact knife edge is a coin flip by construction.
    let gate = v_safe + Volts::from_milli(5.0);
    let mut gated = plant();
    let safe = run_to_completion(&mut gated, &packet, DispatchPolicy::VsafeGated(gate), 10);
    println!(
        "V_safe-gated : {} attempts, {} power failures, {:.1} s to deliver",
        safe.attempts,
        safe.failures,
        safe.elapsed.get()
    );

    assert!(safe.failures < naive.failures || safe.elapsed < naive.elapsed);
}

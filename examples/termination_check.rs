//! Termination checking with `V_safe` (§VIII/§IX): which tasks can a
//! given power system ever complete, and can splitting rescue the rest?
//!
//! ```text
//! cargo run -p culpeo-examples --example termination_check
//! ```

use culpeo::termination::{check_program, required_splits, TerminationVerdict};
use culpeo::PowerSystemModel;
use culpeo_loadgen::peripheral::{BleRadio, GestureSensor, LoRaRadio, MnistAccelerator};
use culpeo_powersim::EfficiencyCurve;
use culpeo_units::{Farads, Ohms, Volts};

fn main() {
    // A deliberately small, high-ESR deployment: a single 10 mF part.
    let model = PowerSystemModel::with_flat_esr(
        Farads::from_milli(10.0),
        Ohms::new(15.0),
        Volts::new(2.55),
        EfficiencyCurve::tps61200_like(),
        Volts::new(1.6),
        Volts::new(2.56),
    );
    println!(
        "device: C = {}, ESR = 15 Ω, operating range {} … {}\n",
        model.capacitance(),
        model.v_off(),
        model.v_high()
    );

    let tasks = vec![
        GestureSensor::default().profile(),
        BleRadio::default().profile(),
        MnistAccelerator::default().profile(),
        LoRaRadio::default().profile(),
    ];

    println!("{:<12} {:>10} {:>12} verdict", "task", "V_safe", "ESR drop");
    for check in check_program(&tasks, &model) {
        let verdict = match check.verdict {
            TerminationVerdict::Terminates { headroom } => {
                format!("terminates ({headroom} headroom)")
            }
            TerminationVerdict::Marginal { headroom } => {
                format!("MARGINAL ({headroom} headroom)")
            }
            TerminationVerdict::NonTerminating { deficit } => {
                format!("NON-TERMINATING (needs {deficit} more)")
            }
        };
        println!(
            "{:<12} {:>10} {:>12} {}",
            check.task, check.estimate.v_safe, check.estimate.v_delta, verdict
        );
    }

    // The MNIST inference is pure computation: splitting rescues it.
    println!();
    let mnist = MnistAccelerator::default().profile();
    match required_splits(&mnist, &model, 64) {
        Some(1) => println!("MNIST fits whole."),
        Some(n) => println!("MNIST fits when split into {n} checkpointed pieces."),
        None => println!("MNIST cannot fit at any granularity."),
    }
    // The LoRa packet is atomic — and its problem is *current*, so no
    // split count helps.
    match required_splits(&LoRaRadio::default().profile(), &model, 64) {
        None => println!(
            "LoRa TX can NEVER fit here: its ESR drop exceeds the headroom.\n\
             No task division fixes a current problem — pick a lower-ESR\n\
             buffer (see the capacitor_selection example)."
        ),
        Some(n) => println!("LoRa TX fits split {n} ways (unexpected!)"),
    }
}

//! Rescue a failing scheduler: the Responsive Reporting app under
//! CatNap's energy-only thresholds versus Culpeo's ESR-aware ones.
//!
//! ```text
//! cargo run -p culpeo-examples --example scheduler_rescue
//! ```

use culpeo_sched::{apps, derive_thresholds, run_trial, ChargePolicy};
use culpeo_units::Seconds;

fn main() {
    let app = apps::responsive_reporting();
    let model = apps::model_for(&app);

    println!(
        "application: {} (Poisson reports, 3 s deadline)\n",
        app.name
    );
    for policy in [ChargePolicy::Catnap, ChargePolicy::Culpeo] {
        let thresholds = derive_thresholds(&app, policy, &model);
        println!("{} thresholds:", policy.label());
        println!(
            "  report sequence V_safe = {}",
            thresholds.class_vsafe["report"]
        );
        println!("  background threshold   = {}", thresholds.lp_threshold);

        let result = run_trial(&app, policy, Seconds::new(300.0), 7);
        let s = result.class("report");
        println!(
            "  5-minute trial: {}/{} reports captured ({:.0} %), {} brownouts\n",
            s.captured,
            s.generated,
            s.capture_rate() * 100.0,
            result.brownouts
        );
    }
}

//! Designing an energy buffer with Culpeo in the loop: shortlist 45 mF
//! banks from the parts catalog, then check which ones can actually power
//! a radio task — the Figure 3 trade-off made operational.
//!
//! ```text
//! cargo run -p culpeo-examples --example capacitor_selection
//! ```

use culpeo::{pg, PowerSystemModel};
use culpeo_capbank::{Catalog, Technology};
use culpeo_loadgen::peripheral::BleRadio;
use culpeo_powersim::{EfficiencyCurve, PowerSystem};
use culpeo_units::{Farads, Hertz, Volts};

fn main() {
    let catalog = Catalog::synthetic();
    let target = Farads::from_milli(45.0);
    let radio = BleRadio::default().profile();
    let trace = radio.sample(Hertz::new(125_000.0));

    println!(
        "{:<16} {:>8} {:>14} {:>10} {:>10} {:>10}",
        "technology", "parts", "volume (mm³)", "ESR (Ω)", "V_safe", "feasible"
    );
    for bank in catalog.smallest_per_technology(target) {
        // Model the power system this bank would produce.
        let model = PowerSystemModel::with_flat_esr(
            bank.capacitance(),
            bank.esr(),
            Volts::new(2.55),
            EfficiencyCurve::tps61200_like(),
            Volts::new(1.6),
            Volts::new(2.56),
        );
        let est = pg::compute_vsafe(&trace, &model);
        // Feasible if the safe voltage fits under the full-charge level —
        // and double-checked on the simulated plant.
        let mut sys = PowerSystem::capybara_with_bank(bank.capacitance(), bank.esr());
        sys.set_buffer_voltage(Volts::new(2.56));
        sys.force_output_enabled();
        let runs = sys
            .run_profile(&radio, culpeo_powersim::RunConfig::default())
            .completed();
        let feasible = est.v_safe < model.v_high() && runs;
        println!(
            "{:<16} {:>8} {:>14.1} {:>10.4} {:>10} {:>10}",
            bank.technology().label(),
            bank.part_count(),
            bank.volume().get(),
            bank.esr().get(),
            est.v_safe,
            feasible
        );
        if bank.technology() == Technology::Supercapacitor {
            assert!(feasible, "the supercap bank must power the radio");
        }
    }
    println!(
        "\nCulpeo turns Figure 3's volume/ESR trade-off into a pass/fail\n\
         check: the smallest (supercapacitor) bank works *because* V_safe\n\
         accounts for its ESR, not despite it."
    );
}

//! Soundness battery for the static verifier: `culpeo-verify`'s verdicts
//! must be *physically* meaningful on the simulated plant.
//!
//! Two directions, both property-based:
//!
//! * **`Proved` is safe** — a plan the interpreter proves must survive a
//!   seeded harvester-dropout fault (from `culpeo-faults`) whose delivery
//!   floor matches the plan's declared recharge power, replayed over
//!   several hyperperiods on the worst-case plant. A single brownout
//!   would falsify Theorem 1's static proof.
//! * **`Refuted` is honest** — the concrete counterexample the verifier
//!   returns must actually brown the plant out when its prefix is
//!   replayed under the plan's own declared harvest, at or before the
//!   launch the verifier blamed.

use culpeo::PowerSystemModel;
use culpeo_api::PlanSpec;
use culpeo_faults::physics::dropout_harvester;
use culpeo_powersim::Harvester;
use culpeo_units::{Volts, Watts};
use culpeo_verify::{plant_from_model, replay_on, verify_with_model, Verdict, VerifyConfig};
use proptest::prelude::*;

fn model() -> PowerSystemModel {
    PowerSystemModel::capybara()
}

/// Unrolls a periodic plan's launch list over `cycles` hyperperiods into
/// absolute start times.
fn unroll(plan: &PlanSpec, cycles: usize) -> Vec<culpeo_api::LaunchSpec> {
    let period = plan.period_s.expect("unroll needs a periodic plan");
    let mut prefix = Vec::new();
    for k in 0..cycles {
        for launch in &plan.launches {
            let mut l = launch.clone();
            l.start_s += k as f64 * period;
            prefix.push(l);
        }
    }
    prefix
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Proved` ⇒ zero brownouts under an in-envelope harvester-dropout
    /// fault. The dropout source is seeded from `culpeo-faults` (duty ≥
    /// 0.3, outage < 3 s — inside the envelope the interpreter's harvest
    /// floor assumes), and the plan declares exactly the fault's
    /// worst-case delivery floor `V_off · i` so the proof obligation and
    /// the injected fault line up.
    #[test]
    fn proved_plans_survive_harvester_dropout(seed in 0u64..512) {
        let m = model();
        let fault = dropout_harvester(seed);
        let Harvester::Windowed { i, .. } = fault else {
            panic!("dropout_harvester changed shape");
        };
        let mut plan = PlanSpec::verified_example();
        plan.recharge_power_mw = i.get() * m.v_off().get() * 1e3;
        let outcome = verify_with_model(&m, &plan, &VerifyConfig::default());
        prop_assert_eq!(
            outcome.verdict.tag(), "proved",
            "seed {} (P = {:.2} mW) should stay provable: {:?}",
            seed, plan.recharge_power_mw, outcome.verdict
        );
        let prefix = unroll(&plan, 3);
        let mut sys = plant_from_model(&m);
        sys.set_harvester(fault);
        let v_start = Volts::new(plan.v_start.unwrap_or(m.v_high().get()));
        let replay = replay_on(&mut sys, &m, &prefix, v_start);
        prop_assert!(
            replay.completed(),
            "proved plan browned out at launch {:?} under seed {} (v_final {})",
            replay.brownout_launch, seed, replay.v_final
        );
        prop_assert_eq!(replay.launches_run, prefix.len());
    }

    /// `Refuted` ⇒ the returned counterexample reproduces: replaying its
    /// prefix under the plan's declared harvest browns the plant out no
    /// later than the blamed launch, across the whole overdraw range.
    #[test]
    fn refuted_witnesses_reproduce_on_the_plant(overdraw_mj in 150.0f64..250.0) {
        let m = model();
        let mut plan = PlanSpec::figure5_example();
        plan.launches[0].energy_mj = overdraw_mj;
        plan.launches[0].v_delta = 0.3;
        let outcome = verify_with_model(&m, &plan, &VerifyConfig::default());
        prop_assert!(
            matches!(outcome.verdict, Verdict::Refuted(_)),
            "{} mJ should refute: {:?}", overdraw_mj, outcome.verdict
        );
        let Verdict::Refuted(cex) = outcome.verdict else { unreachable!() };
        let mut sys = plant_from_model(&m);
        sys.set_harvester(Harvester::ConstantPower(Watts::from_milli(
            plan.recharge_power_mw,
        )));
        let replay = replay_on(&mut sys, &m, &cex.prefix, cex.v_start);
        let hit = replay.brownout_launch;
        prop_assert!(hit.is_some(), "witness at {} mJ survived replay", overdraw_mj);
        prop_assert!(
            hit.unwrap() <= cex.failing_launch,
            "browned out at launch {} but the verifier blamed {}",
            hit.unwrap(), cex.failing_launch
        );
    }
}

//! Integration of the Table I API object with device profiling and
//! scheduler-style dispatch decisions.

use culpeo::{Culpeo, PowerSystemModel, TaskId};
use culpeo_device::{profile_task, Profiler, UArchProfiler};
use culpeo_harness::reference_plant;
use culpeo_loadgen::peripheral::{BleRadio, GestureSensor};
use culpeo_powersim::RunConfig;
use culpeo_units::Volts;

const RADIO: TaskId = TaskId(1);
const GESTURE: TaskId = TaskId(2);

/// Drives the Table I call sequence with observations from the simulated
/// µArch profiler, then uses `get_vsafe` the way a scheduler would.
#[test]
fn api_profile_compute_dispatch_cycle() {
    let model = PowerSystemModel::characterize(&reference_plant);
    let mut culpeo = Culpeo::new(model.clone());

    for (id, load) in [
        (RADIO, BleRadio::default().profile()),
        (GESTURE, GestureSensor::default().profile()),
    ] {
        // profile_start / observe / profile_end / rebound_end, with the
        // voltages coming from an actual profiled run on the plant.
        let mut sys = reference_plant();
        sys.set_buffer_voltage(model.v_high());
        let run = profile_task(&mut sys, &load, &Profiler::UArch(UArchProfiler::default()))
            .expect("profiling from V_high completes");
        culpeo.profile_start(run.observation.v_start);
        culpeo.observe(run.observation.v_min);
        assert!(culpeo.profile_end(id, run.observation.v_min.max(run.observation.v_final)));
        assert!(culpeo.rebound_end(id, run.observation.v_final));
        culpeo.compute_vsafe(id);
    }

    // A scheduler consults the table before dispatch.
    let radio_vsafe = culpeo.get_vsafe(RADIO).expect("radio has a V_safe");
    let gesture_vsafe = culpeo.get_vsafe(GESTURE).expect("gesture has a V_safe");
    assert!(radio_vsafe > model.v_off());
    assert!(gesture_vsafe > model.v_off());
    assert!(culpeo.get_vdrop(RADIO).unwrap().get() > 0.0);

    // Dispatch each task at its V_safe (+ the 5 mV search granularity) on
    // a fresh plant: both complete.
    for (id, load) in [
        (RADIO, BleRadio::default().profile()),
        (GESTURE, GestureSensor::default().profile()),
    ] {
        let v = culpeo.get_vsafe(id).unwrap() + Volts::from_milli(5.0);
        let mut sys = reference_plant();
        sys.set_buffer_voltage(v);
        sys.force_output_enabled();
        let out = sys.run_profile(&load, RunConfig::default());
        assert!(out.completed(), "task {id:?} failed from {v}");
    }

    // An unprofiled task falls back to the paper's defaults.
    let unknown = TaskId(99);
    assert_eq!(culpeo.get_vsafe(unknown), None);
    assert_eq!(culpeo.get_vsafe_or_default(unknown), model.v_high());
    assert_eq!(culpeo.get_vdrop_or_default(unknown), Volts::new(-1.0));
}

/// Re-profiling after invalidation (harvesting-condition change) produces
/// fresh values rather than stale ones.
#[test]
fn invalidate_and_reprofile() {
    let model = PowerSystemModel::characterize(&reference_plant);
    let mut culpeo = Culpeo::new(model.clone());

    culpeo.profile_start(Volts::new(2.5));
    culpeo.observe(Volts::new(2.3));
    culpeo.profile_end(RADIO, Volts::new(2.4));
    culpeo.rebound_end(RADIO, Volts::new(2.45));
    culpeo.compute_vsafe(RADIO);
    let first = culpeo.get_vsafe(RADIO).unwrap();

    culpeo.invalidate_config();
    assert!(culpeo.get_vsafe(RADIO).is_none());

    // New conditions: a deeper dip (weaker harvest during the task).
    culpeo.profile_start(Volts::new(2.5));
    culpeo.observe(Volts::new(2.1));
    culpeo.profile_end(RADIO, Volts::new(2.35));
    culpeo.rebound_end(RADIO, Volts::new(2.42));
    culpeo.compute_vsafe(RADIO);
    let second = culpeo.get_vsafe(RADIO).unwrap();
    assert!(second > first, "deeper dip must raise V_safe");
}

//! Soundness battery for the WCEC analyzer: `culpeo-wcec`'s certificates
//! must dominate what the simulated plant *actually* consumes, not just
//! the analyzer's own arithmetic.
//!
//! Three legs:
//!
//! * **Certificates upper-bound the plant** — property-based: random
//!   bounded task graphs are analyzed, then concrete paths through them
//!   (branch arms, loop trip counts, and per-op costs all resolved by a
//!   seeded oracle) are lowered to load profiles and simulated through
//!   `culpeo-powersim`; the ledger's metered `delivered` energy must stay
//!   at or below the static `hi` endpoint on every explored path.
//! * **Table III certifies** — the gesture/BLE/MNIST workload models all
//!   get finite certificates with a positive worst-case ESR dip.
//! * **Admission beats declared verification** — the acceptance scenario:
//!   a plan whose declared `(E, V_δ)` figures *prove*, but whose
//!   certificates make the WCEC admission test reject — and the
//!   rejection is justified end-to-end by a certificate-substituted
//!   refutation whose counterexample browns the plant out on replay.

use culpeo::PowerSystemModel;
use culpeo_powersim::{Harvester, RunConfig};
use culpeo_sched::{ArenaPolicy, WcecAdmission};
use culpeo_units::{Seconds, Watts};
use culpeo_verify::{
    plant_from_model, replay_on, verify_certified, verify_with_model, Verdict, VerifyConfig,
};
use culpeo_wcec::{
    analyze, certificates_for_plan, lower_path, workloads, LoopBound, OpCost, PathOracle,
    TaskGraph, WcecVerdict,
};
use proptest::prelude::*;

fn model() -> PowerSystemModel {
    PowerSystemModel::capybara()
}

/// Adds a random basic block whose op cost bands are small enough that
/// even the deepest generated nesting stays far inside the capybara
/// buffer's usable swing (so the simulated path completes and the
/// delivered-energy meter is exercised in full).
fn gen_block(g: &mut TaskGraph, o: &mut PathOracle, n: &mut u32) -> culpeo_wcec::NodeId {
    *n += 1;
    let ops = (0..1 + o.pick(2))
        .map(|i| {
            let e_lo = 0.01 + o.fraction() * 0.2;
            let t_lo = 2.0 + o.fraction() * 8.0;
            OpCost {
                name: format!("op{i}"),
                energy_mj: (e_lo, e_lo + o.fraction() * 0.15),
                time_ms: (t_lo, t_lo + o.fraction() * 5.0),
                peak_ma: 1.0 + o.fraction() * 14.0,
            }
        })
        .collect();
    g.block(format!("n{n}"), ops)
}

/// Adds a random subtree: nesting depth ≤ `depth`, loop trip counts ≤ 2,
/// so path enumeration stays cheap and worst-case totals stay simulable.
fn gen_shape(
    g: &mut TaskGraph,
    o: &mut PathOracle,
    depth: u32,
    n: &mut u32,
) -> culpeo_wcec::NodeId {
    if depth == 0 {
        return gen_block(g, o, n);
    }
    match o.pick(4) {
        0 => gen_block(g, o, n),
        1 => {
            let children = (0..1 + o.pick(3))
                .map(|_| gen_shape(g, o, depth - 1, n))
                .collect();
            *n += 1;
            g.seq(format!("n{n}"), children)
        }
        2 => {
            let t = gen_shape(g, o, depth - 1, n);
            let e = gen_shape(g, o, depth - 1, n);
            *n += 1;
            g.branch(format!("n{n}"), t, e)
        }
        _ => {
            let body = gen_shape(g, o, depth - 1, n);
            let lo = 1 + o.pick(2);
            let hi = (lo + o.pick(2)).min(2);
            *n += 1;
            let bound = if lo >= hi {
                LoopBound::Exact(lo)
            } else {
                LoopBound::Range(lo, hi)
            };
            g.bounded_loop(format!("n{n}"), bound, body)
        }
    }
}

/// Deterministically grows a random bounded task graph from `seed`.
fn random_graph(seed: u64) -> TaskGraph {
    let mut g = TaskGraph::new(format!("generated-{seed}"));
    let mut o = PathOracle::new(seed);
    let mut n = 0;
    let root = gen_shape(&mut g, &mut o, 2, &mut n);
    g.set_root(root);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Static WCEC upper-bounds simulated consumption on every explored
    /// path: lower a handful of oracle-chosen paths per graph, run each
    /// through the worst-case plant, and check the ledger's delivered
    /// energy against the certificate's `hi` endpoint — allowing only the
    /// grid-quantization slack of the integrator (one `dt` of current per
    /// profile segment).
    #[test]
    fn certificates_dominate_the_plant(graph_seed in 0u64..1_000_000, seed in 0u64..1024) {
        let m = model();
        let graph = random_graph(graph_seed);
        let cert = match analyze(&graph).expect("generated graphs are structurally valid") {
            WcecVerdict::Certified(c) => c,
            WcecVerdict::Unknown(b) => {
                return Err(proptest::TestCaseError::Fail(format!(
                    "bounded graph failed to certify: {b}"
                )));
            }
        };
        let cfg = RunConfig::coarse().without_trace();
        for k in 0..3u64 {
            let mut oracle = PathOracle::new(seed.wrapping_mul(3).wrapping_add(k));
            let path = lower_path(&graph, m.v_out(), &mut oracle)
                .expect("bounded graphs always lower");
            prop_assert!(path.nominal_mj <= cert.energy_mj_hi() + 1e-9);
            prop_assert!(path.nominal_ms * 1e-3 <= cert.time_s.1 + 1e-9);

            let mut sys = plant_from_model(&m);
            sys.set_buffer_voltage(m.v_high());
            sys.force_output_enabled();
            let before = sys.ledger().delivered;
            let out = sys.run_profile(&path.profile, cfg);
            prop_assert!(
                out.brownout.is_none() && !out.collapsed,
                "generated path browned out — totals outgrew the buffer sizing"
            );
            let delivered_mj = (sys.ledger().delivered - before).get() * 1e3;
            // Left-Riemann stepping can credit each constant hold with up
            // to one extra dt of its own current.
            let slack_mj: f64 = path
                .profile
                .segments()
                .iter()
                .map(|s| s.current_at(Seconds::ZERO).get() * m.v_out().get() * cfg.dt.get() * 1e3)
                .sum();
            prop_assert!(
                delivered_mj <= cert.energy_mj_hi() + slack_mj + 1e-9,
                "plant delivered {delivered_mj} mJ > certified hi {} mJ (+ {slack_mj} mJ slack) \
                 on path seed {seed}/{k}",
                cert.energy_mj_hi(),
            );
        }
    }
}

/// All three Table III workload models earn finite certificates, and the
/// model-derived worst-case dip is strictly positive.
#[test]
fn table3_workloads_all_certify() {
    let m = model();
    for graph in workloads::table3(m.v_out()) {
        let cert = match analyze(&graph).unwrap() {
            WcecVerdict::Certified(c) => c,
            WcecVerdict::Unknown(b) => panic!("{}: {b}", graph.name),
        };
        assert!(
            cert.energy_mj_hi().is_finite() && cert.energy_mj_hi() > 0.0,
            "{}: {:?}",
            graph.name,
            cert
        );
        assert!(cert.energy_mj_lo() <= cert.energy_mj_hi());
        assert!(cert.time_s.1.is_finite() && cert.time_s.1 > 0.0);
        assert!(cert.v_delta_at(culpeo_wcec::esr_max_ohms(&m)) > 0.0);
        assert!(cert.paths >= 1);
    }
}

/// The acceptance scenario: declared figures prove, certificates reject —
/// and the rejection carries a replayable brownout witness.
#[test]
fn admission_rejects_an_under_declared_plan_that_declared_verification_proves() {
    let m = model();
    let plan = culpeo_harness::wcec::under_declared_plan();
    let cfg = VerifyConfig::default();

    // Leg 1: on its declared (E, V_δ) figures the plan is a theorem.
    let declared = verify_with_model(&m, &plan, &cfg);
    assert_eq!(declared.verdict.tag(), "proved", "{:?}", declared.verdict);

    // Leg 2: charging certificates instead, the admission test rejects.
    let certs = certificates_for_plan(&plan, &m);
    assert_eq!(certs.len(), 1, "one certified task (mnist) in the plan");
    let report = WcecAdmission::default().admit(&m, &plan, &certs);
    assert!(!report.admitted(), "{report:?}");
    assert!(report.demand_mj > report.credit_mj);
    assert!(report.failing_launch.is_some());
    assert_eq!(report.certified_launches, plan.launches.len());

    // Leg 3: the rejection is physically justified — substituting the
    // certificates refutes the plan, and the counterexample browns the
    // plant out when replayed under the plan's own declared harvest.
    let certified = verify_certified(&m, &plan, &certs, &cfg);
    let Verdict::Refuted(cex) = &certified.verdict else {
        panic!(
            "expected certificate-substituted refutation, got {:?}",
            certified.verdict
        );
    };
    let mut sys = plant_from_model(&m);
    sys.set_harvester(Harvester::ConstantPower(Watts::from_milli(
        plan.recharge_power_mw,
    )));
    let replay = replay_on(&mut sys, &m, &cex.prefix, cex.v_start);
    let hit = replay
        .brownout_launch
        .expect("witness must reproduce on the plant");
    assert!(
        hit <= cex.failing_launch,
        "browned out at launch {hit} but the verifier blamed {}",
        cex.failing_launch
    );
}

/// The oracle's decisions are total: even a degenerate single-block graph
/// lowers, simulates, and stays inside its certificate.
#[test]
fn degenerate_single_block_graph_round_trips() {
    let m = model();
    let mut g = TaskGraph::new("single");
    g.block("only", vec![OpCost::exact("op", 0.5, 5.0, 10.0)]);
    let WcecVerdict::Certified(cert) = analyze(&g).unwrap() else {
        panic!("single block must certify");
    };
    let path = lower_path(&g, m.v_out(), &mut PathOracle::new(0)).unwrap();
    assert!((path.nominal_mj - 0.5).abs() < 1e-9);
    assert!(path.nominal_mj <= cert.energy_mj_hi() + 1e-12);
    let mut sys = plant_from_model(&m);
    sys.set_buffer_voltage(m.v_high());
    sys.force_output_enabled();
    let out = sys.run_profile(&path.profile, RunConfig::coarse().without_trace());
    assert!(out.brownout.is_none() && !out.collapsed);
}

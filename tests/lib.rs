//! Integration-tests-only crate: see the `[[test]]` targets beside this
//! file.

#![forbid(unsafe_code)]

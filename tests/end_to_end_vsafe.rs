//! End-to-end integration: characterise → estimate → validate, across
//! every crate boundary.

use culpeo::{pg, runtime, PowerSystemModel};
use culpeo_device::{profile_task, IsrProfiler, Profiler, UArchProfiler};
use culpeo_harness::ground_truth::{completes_from, true_vsafe, TOLERANCE};
use culpeo_harness::reference_plant;
use culpeo_loadgen::peripheral::{BleRadio, GestureSensor, MnistAccelerator};
use culpeo_loadgen::synthetic::PulseLoad;
use culpeo_loadgen::LoadProfile;
use culpeo_units::{Amps, Hertz, Seconds, Volts};

fn model() -> PowerSystemModel {
    PowerSystemModel::characterize(&reference_plant)
}

fn workloads() -> Vec<LoadProfile> {
    vec![
        GestureSensor::default().profile(),
        BleRadio::default().profile(),
        MnistAccelerator::default().profile(),
        PulseLoad::new(Amps::from_milli(25.0), Seconds::from_milli(10.0)).profile(),
        PulseLoad::new(Amps::from_milli(50.0), Seconds::from_milli(10.0)).profile(),
    ]
}

/// Culpeo-PG's estimate, dispatched with the paper's 5 mV search
/// granularity, completes on the plant for every workload.
#[test]
fn pg_estimates_are_dispatchable() {
    let m = model();
    for load in workloads() {
        let est = pg::compute_vsafe_for_profile(&load, &m);
        let v = (est.v_safe + TOLERANCE).min(m.v_high());
        assert!(
            completes_from(&reference_plant, &load, v),
            "{}: dispatch at {} failed",
            load.label(),
            v
        );
    }
}

/// Culpeo-R estimates (through both device implementations) are
/// dispatchable and within a tight band of the true V_safe.
#[test]
fn culpeo_r_estimates_are_dispatchable_and_tight() {
    let m = model();
    for load in workloads() {
        let truth = true_vsafe(&reference_plant, &load).expect("feasible");
        for profiler in [
            Profiler::Isr(IsrProfiler::msp430()),
            Profiler::UArch(UArchProfiler::default()),
        ] {
            let mut sys = reference_plant();
            sys.set_buffer_voltage(m.v_high());
            let run = profile_task(&mut sys, &load, &profiler).expect("profiling completes");
            let est = runtime::compute_vsafe(&run.observation, &m);
            let err = est.v_safe - truth;
            // Within −2 % … +10 % of the operating range (the paper's
            // correctness and performance bars).
            let range = m.operating_range().get();
            assert!(
                err.get() > -0.02 * range && err.get() < 0.10 * range,
                "{} via {:?}: err = {}",
                load.label(),
                profiler.kind(),
                err
            );
        }
    }
}

/// The full-text quickstart flow: model + trace + estimate, then a
/// ground-truth cross-check that the estimate is no more than ~25 mV
/// conservative for a simple pulse.
#[test]
fn quickstart_flow_is_accurate() {
    let m = model();
    let load = PulseLoad::new(Amps::from_milli(10.0), Seconds::from_milli(10.0)).profile();
    let trace = load.sample(Hertz::new(125_000.0));
    let est = pg::compute_vsafe(&trace, &m);
    let truth = true_vsafe(&reference_plant, &load).unwrap();
    assert!(
        est.v_safe.approx_eq(truth, 0.025),
        "pred {} vs true {}",
        est.v_safe,
        truth
    );
}

/// The two Culpeo implementations agree with each other across workloads
/// (they observe the same physics through different samplers).
#[test]
fn isr_and_uarch_agree() {
    let m = model();
    for load in workloads() {
        let mut a = reference_plant();
        a.set_buffer_voltage(m.v_high());
        let isr = profile_task(&mut a, &load, &Profiler::Isr(IsrProfiler::msp430()))
            .map(|r| runtime::compute_vsafe(&r.observation, &m).v_safe)
            .unwrap();
        let mut b = reference_plant();
        b.set_buffer_voltage(m.v_high());
        let ua = profile_task(&mut b, &load, &Profiler::UArch(UArchProfiler::default()))
            .map(|r| runtime::compute_vsafe(&r.observation, &m).v_safe)
            .unwrap();
        assert!(
            isr.approx_eq(ua, 0.05),
            "{}: ISR {} vs µArch {}",
            load.label(),
            isr,
            ua
        );
    }
}

/// Dispatching 20 mV below the true V_safe reliably fails — the paper's
/// validation of its own brute-force search.
#[test]
fn below_true_vsafe_reliably_fails() {
    let load = PulseLoad::new(Amps::from_milli(25.0), Seconds::from_milli(10.0)).profile();
    let truth = true_vsafe(&reference_plant, &load).unwrap();
    assert!(!completes_from(
        &reference_plant,
        &load,
        truth - Volts::from_milli(25.0)
    ));
    assert!(completes_from(
        &reference_plant,
        &load,
        truth + Volts::from_milli(5.0)
    ));
}

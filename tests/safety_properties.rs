//! Property-based safety tests spanning the whole stack: for randomly
//! drawn workloads, Culpeo's estimates must be *safe* on the plant — the
//! paper's central correctness claim.

use culpeo::compose::{vsafe_multi, TaskRequirement};
use culpeo::{pg, runtime, PowerSystemModel};
use culpeo_device::{profile_task, Profiler, UArchProfiler};
use culpeo_harness::ground_truth::completes_from;
use culpeo_harness::reference_plant;
use culpeo_loadgen::LoadProfile;
use culpeo_powersim::{PowerSystem, RunConfig};
use culpeo_units::{Amps, Seconds, Volts};
use proptest::prelude::*;

fn model() -> PowerSystemModel {
    // Characterisation is expensive; do it once.
    use std::sync::OnceLock;
    static MODEL: OnceLock<PowerSystemModel> = OnceLock::new();
    MODEL
        .get_or_init(|| PowerSystemModel::characterize(&reference_plant))
        .clone()
}

/// A single-branch plant whose physics the analytic model captures almost
/// exactly — used to test the *composition rule* in isolation from the
/// two-branch model-mismatch the per-task accuracy tests already cover.
fn single_branch_plant() -> PowerSystem {
    let mut sys = PowerSystem::capybara();
    sys.force_output_enabled();
    sys
}

fn single_branch_model() -> PowerSystemModel {
    use std::sync::OnceLock;
    static MODEL: OnceLock<PowerSystemModel> = OnceLock::new();
    MODEL
        .get_or_init(|| PowerSystemModel::characterize(&single_branch_plant))
        .clone()
}

/// A random two-phase workload: a pulse followed by a lighter tail.
fn arbitrary_load() -> impl Strategy<Value = LoadProfile> {
    (2.0..45.0f64, 1.0..40.0f64, 0.5..3.0f64, 10.0..150.0f64).prop_map(
        |(i_pulse, w_pulse, i_tail, w_tail)| {
            LoadProfile::builder("random")
                .hold(Amps::from_milli(i_pulse), Seconds::from_milli(w_pulse))
                .hold(Amps::from_milli(i_tail), Seconds::from_milli(w_tail))
                .build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Culpeo-PG's V_safe (plus the 5 mV search granularity) is always
    /// dispatchable on the plant.
    #[test]
    fn pg_vsafe_is_safe(load in arbitrary_load()) {
        let m = model();
        let est = pg::compute_vsafe_for_profile(&load, &m);
        prop_assume!(est.v_safe < m.v_high());
        let v = est.v_safe + Volts::from_milli(5.0);
        prop_assert!(
            completes_from(&reference_plant, &load, v),
            "dispatch at {} failed for {:?}", v, load
        );
    }

    /// Culpeo-R (µArch sampling) estimates are dispatchable too.
    #[test]
    fn culpeo_r_vsafe_is_safe(load in arbitrary_load()) {
        let m = model();
        let mut sys = reference_plant();
        sys.set_buffer_voltage(m.v_high());
        let run = profile_task(&mut sys, &load, &Profiler::UArch(UArchProfiler::default()));
        prop_assume!(run.is_some());
        let est = runtime::compute_vsafe(&run.unwrap().observation, &m);
        prop_assume!(est.v_safe < m.v_high());
        let v = est.v_safe + Volts::from_milli(5.0);
        prop_assert!(
            completes_from(&reference_plant, &load, v),
            "dispatch at {} failed for {:?}", v, load
        );
    }

    /// V_safe_multi safety (the §IV-A proof, checked on the plant): a
    /// back-to-back sequence started at the composed V_safe never browns
    /// out.
    #[test]
    fn vsafe_multi_is_safe_for_sequences(
        a in arbitrary_load(),
        b in arbitrary_load(),
    ) {
        let m = single_branch_model();
        let reqs = [
            TaskRequirement::from_estimate(&pg::compute_vsafe_for_profile(&a, &m)),
            TaskRequirement::from_estimate(&pg::compute_vsafe_for_profile(&b, &m)),
        ];
        let v_multi = vsafe_multi(&reqs, m.capacitance(), m.v_off());
        prop_assume!(v_multi < m.v_high());
        let combined = a.then(&b);
        let v = v_multi + Volts::from_milli(5.0);
        prop_assert!(
            completes_from(&single_branch_plant, &combined, v),
            "sequence dispatch at {} failed", v
        );
    }
}

/// Deterministic regression companion to the properties above: the
/// scheduler-facing invariant that V_safe-gated dispatch never browns out
/// while opportunistic dispatch does, on a mid-range buffer state.
#[test]
fn gated_dispatch_beats_opportunistic_from_mid_charge() {
    let m = model();
    let load = LoadProfile::builder("radio-ish")
        .hold(Amps::from_milli(40.0), Seconds::from_milli(20.0))
        .build();
    let est = pg::compute_vsafe_for_profile(&load, &m);

    // Opportunistic: dispatch at 1.7 V (allowed by the monitor) fails.
    let mut sys: PowerSystem = reference_plant();
    sys.set_buffer_voltage(Volts::new(1.7));
    let out = sys.run_profile(&load, RunConfig::default());
    assert!(!out.completed());

    // Gated: waiting for the estimate succeeds.
    assert!(completes_from(
        &reference_plant,
        &load,
        est.v_safe + Volts::from_milli(5.0)
    ));
}

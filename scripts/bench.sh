#!/usr/bin/env bash
# Performance receipts for the sweep executor + hot-loop work.
#
# Full mode (default):
#   1. Builds the repo's seed revision (the root commit) in a detached
#      worktree under target/seed-baseline, with its crates.io
#      dependencies re-pointed at vendor/ so the build stays offline.
#   2. Times the seed's own fig10_vsafe_error binary (median of three).
#   3. Runs perf_summary with that measurement as --baseline-seconds and
#      CULPEO_THREADS workers, producing results/perf_summary.json.
#   4. Reports the event-kernel vs fixed-step speedup from the JSON.
#   5. Compiles and runs the criterion micro-benches.
#
# Quick mode (--quick):
#   Skips the seed build and the criterion benches; runs perf_summary
#   --quick against the in-process execution-layer baseline only.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

THREADS="${CULPEO_THREADS:-4}"
QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "usage: scripts/bench.sh [--quick]" >&2; exit 2 ;;
    esac
done

cargo build --release --workspace

if [ "$QUICK" -eq 1 ]; then
    CULPEO_THREADS="$THREADS" ./target/release/perf_summary --quick
    exit 0
fi

# --- 1. Seed worktree -------------------------------------------------------
SEED_DIR="$ROOT/target/seed-baseline"
SEED_REV="$(git rev-list --max-parents=0 HEAD)"
if [ ! -f "$SEED_DIR/Cargo.toml" ]; then
    git worktree add --detach "$SEED_DIR" "$SEED_REV"
fi
# The seed tree predates vendor/; point its crates.io deps at our vendored
# stubs so the build needs no network.
if grep -q 'rand = "0.8"' "$SEED_DIR/Cargo.toml"; then
    sed -i \
        -e "s|^rand = \"0.8\"|rand = { path = \"$ROOT/vendor/rand\" }|" \
        -e "s|^proptest = \"1\"|proptest = { path = \"$ROOT/vendor/proptest\" }|" \
        -e "s|^criterion = \"0.5\"|criterion = { path = \"$ROOT/vendor/criterion\" }|" \
        -e "s|^serde = { version = \"1\", features = \[\"derive\"\] }|serde = { path = \"$ROOT/vendor/serde\", features = [\"derive\"] }|" \
        -e "s|^serde_json = \"1\"|serde_json = { path = \"$ROOT/vendor/serde_json\" }|" \
        "$SEED_DIR/Cargo.toml"
fi
SEED_BIN="$SEED_DIR/target/release/fig10_vsafe_error"
(cd "$SEED_DIR" && cargo build --release -p culpeo-bench --bin fig10_vsafe_error)

# --- 2. Time the seed binary (median of three) ------------------------------
now_ns() { date +%s%N; }
runs=()
for _ in 1 2 3; do
    t0="$(now_ns)"
    (cd "$SEED_DIR" && "$SEED_BIN" >/dev/null)
    t1="$(now_ns)"
    runs+=($(( t1 - t0 )))
done
BASELINE_NS="$(printf '%s\n' "${runs[@]}" | sort -n | sed -n 2p)"
BASELINE_S="$(awk -v ns="$BASELINE_NS" 'BEGIN { printf "%.6f", ns / 1e9 }')"
echo "seed fig10_vsafe_error: ${BASELINE_S}s (median of 3)"

# --- 3. perf_summary with the measured baseline -----------------------------
CULPEO_THREADS="$THREADS" ./target/release/perf_summary --baseline-seconds "$BASELINE_S"

# --- 4. Event-kernel receipt -------------------------------------------------
# perf_summary records the §VI-A ground-truth bisection under both stepping
# kernels; surface the ratio so the receipt is visible without opening the
# JSON.
EVENT_SPEEDUP="$(sed -n 's/.*"event_kernel_speedup": *\([0-9.]*\).*/\1/p' results/perf_summary.json)"
echo "event kernel vs fixed step (ground-truth bisection): ${EVENT_SPEEDUP}x"

# --- 5. Criterion micro-benches ---------------------------------------------
cargo bench -p culpeo-bench

#!/usr/bin/env bash
# Race gate: run the `culpeo race` interleaving battery and prove the
# determinism claims the model checker makes:
#   1. same (seed, preemptions), same report — byte-identical JSON
#      across repeated runs (no wall-clock, thread ids, or pointer
#      values may leak into it);
#   2. seed independence of *verdicts* — a different exploration-order
#      seed may walk (and prune) the schedule tree differently, but
#      every invariant/mutant verdict must be identical.
# Exits non-zero if any invariant is violated, any mutant is missed, or
# either determinism claim breaks.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${CULPEO_BIN:-target/release/culpeo}
if [[ ! -x "$BIN" ]]; then
    echo "== building $BIN"
    cargo build --release -p culpeo-cli
fi

SEED=${CULPEO_RACE_SEED:-3223177982}   # 0xC01DCAFE, the battery default
ALT_SEED=$((SEED + 1))
WORK=$(mktemp -d)
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

# The seed-independent projection of a report: identities and verdicts,
# not exploration statistics (counts and traces legitimately vary with
# the walk order).
verdicts() {
    grep -E '"(name|holds|caught|expected|observed|all_proved|all_refuted)"' "$1"
}

echo "== culpeo race --seed $SEED (run 1)"
"$BIN" race --seed "$SEED" --format json >"$WORK/run1.json"

echo "== culpeo race --seed $SEED (run 2 — must be byte-identical)"
"$BIN" race --seed "$SEED" --format json >"$WORK/run2.json"
if ! cmp -s "$WORK/run1.json" "$WORK/run2.json"; then
    echo "race: repeated runs differ for seed $SEED" >&2
    diff "$WORK/run1.json" "$WORK/run2.json" >&2 || true
    exit 1
fi

echo "== culpeo race --seed $ALT_SEED (verdicts must not depend on the seed)"
"$BIN" race --seed "$ALT_SEED" --format json >"$WORK/alt.json"
verdicts "$WORK/run1.json" >"$WORK/run1.verdicts"
verdicts "$WORK/alt.json" >"$WORK/alt.verdicts"
if ! cmp -s "$WORK/run1.verdicts" "$WORK/alt.verdicts"; then
    echo "race: verdicts differ between seeds $SEED and $ALT_SEED" >&2
    diff "$WORK/run1.verdicts" "$WORK/alt.verdicts" >&2 || true
    exit 1
fi

# Usage errors must exit 2, not masquerade as verdicts.
if "$BIN" race --bogus-flag >/dev/null 2>&1; then
    echo "race: a usage error exited 0" >&2
    exit 1
fi

# Human table for the log, and the pass/fail verdict via exit code.
echo "== culpeo race --seed $SEED (human table)"
"$BIN" race --seed "$SEED"

echo "race: deterministic and green (seed $SEED)"

#!/usr/bin/env bash
# Smoke test for the `culpeo serve` daemon: boot on an ephemeral port,
# check /v1/health, fire one /v1/vsafe request twice (the repeat must be
# a cache hit per /v1/metrics), then drain via POST /v1/shutdown and
# confirm a clean exit. Pure bash + /dev/tcp — no curl dependency.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${CULPEO_BIN:-target/release/culpeo}
if [[ ! -x "$BIN" ]]; then
    echo "== building $BIN"
    cargo build --release -p culpeo-cli
fi

LOG=$(mktemp)
"$BIN" serve --port 0 --workers 2 >"$LOG" &
PID=$!
cleanup() {
    kill "$PID" 2>/dev/null || true
    rm -f "$LOG"
}
trap cleanup EXIT

# Scrape the bound ephemeral port from the startup line.
PORT=""
for _ in $(seq 1 100); do
    PORT=$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$LOG")
    [[ -n "$PORT" ]] && break
    sleep 0.05
done
if [[ -z "$PORT" ]]; then
    echo "smoke_serve: daemon never reported its port" >&2
    cat "$LOG" >&2
    exit 1
fi
echo "== daemon up on port $PORT"

# Minimal HTTP/1.1 client; `Connection: close` makes the keep-alive
# daemon hang up after answering, so `cat` sees EOF.
http() { # METHOD PATH [BODY]
    local method=$1 path=$2 body=${3:-}
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    printf '%s %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\nContent-Length: %s\r\n\r\n%s' \
        "$method" "$path" "${#body}" "$body" >&3
    cat <&3
    exec 3>&- 3<&-
}

expect() { # LABEL NEEDLE HAYSTACK
    if [[ "$3" != *"$2"* ]]; then
        echo "smoke_serve: $1 — expected to find $2 in: $3" >&2
        exit 1
    fi
}

HEALTH=$(http GET /v1/health)
expect "health" '"status":"ok"' "$HEALTH"

VSAFE_BODY='{"schema_version": 1, "trace_csv": "# dt_us: 8\n0.0,0.010\n0.000008,0.025\n0.000016,0.010\n"}'
FIRST=$(http POST /v1/vsafe "$VSAFE_BODY")
expect "vsafe" '"v_safe_v":' "$FIRST"
SECOND=$(http POST /v1/vsafe "$VSAFE_BODY")
expect "vsafe repeat" '"v_safe_v":' "$SECOND"

METRICS=$(http GET /v1/metrics)
expect "metrics cache hit" '"hits":1' "$METRICS"

SHUTDOWN=$(http POST /v1/shutdown)
expect "shutdown" '"status":"draining"' "$SHUTDOWN"

# The daemon must now drain and exit on its own.
for _ in $(seq 1 100); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.05
done
if kill -0 "$PID" 2>/dev/null; then
    echo "smoke_serve: daemon did not exit after /v1/shutdown" >&2
    exit 1
fi
wait "$PID" || true
grep -q "culpeo-served drained" "$LOG" || {
    echo "smoke_serve: missing drain summary" >&2
    cat "$LOG" >&2
    exit 1
}

echo "smoke_serve: clean"

#!/usr/bin/env bash
# Load test for the reactor daemon: pipelined keep-alive connections via
# the culpeo-loadtest generator (in-process daemon + real TCP clients).
# Full mode runs both batch endpoints for 2s each, writes
# results/loadtest.json, and gates on sustained throughput; --smoke runs
# a sub-second pass that only checks the harness end-to-end.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
[[ "${1:-}" == "--smoke" ]] && SMOKE=1

BIN=target/release/culpeo-loadtest
if [[ ! -x "$BIN" ]]; then
    echo "== building $BIN"
    cargo build --release -p culpeo-served
fi

rps_of() { # JSON_LINE
    local rps
    rps=$(grep -o '"req_per_s":[0-9]*' <<<"$1" | cut -d: -f2)
    [[ -n "$rps" ]] || { echo "loadtest: no req_per_s in: $1" >&2; exit 1; }
    echo "$rps"
}

if [[ "$SMOKE" == 1 ]]; then
    OUT=$("$BIN" --connections 2 --pipeline 16 --millis 200)
    echo "$OUT"
    rps_of "$OUT" >/dev/null
    echo "loadtest: smoke clean"
    exit 0
fi

MIN_RPS=${LOADTEST_MIN_RPS:-50000}
HEALTH=$("$BIN" --endpoint /v1/health --connections 4 --pipeline 64 --millis 2000)
echo "$HEALTH"
VSAFE=$("$BIN" --endpoint /v1/vsafe --connections 4 --pipeline 64 --millis 2000)
echo "$VSAFE"

mkdir -p results
{
    printf '{"schema_version":2,"generated_by":"scripts/loadtest.sh","min_rps_gate":%s,"runs":[\n' "$MIN_RPS"
    printf '%s,\n' "$HEALTH"
    printf '%s\n' "$VSAFE"
    printf ']}\n'
} >results/loadtest.json
echo "== wrote results/loadtest.json"

for RUN in "$HEALTH" "$VSAFE"; do
    RPS=$(rps_of "$RUN")
    if (( RPS < MIN_RPS )); then
        echo "loadtest: sustained $RPS req/s is below the $MIN_RPS gate" >&2
        exit 1
    fi
done
echo "loadtest: clean (gate: ${MIN_RPS} req/s)"

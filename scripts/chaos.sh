#!/usr/bin/env bash
# Chaos gate: run the seeded `culpeo chaos` battery and prove the two
# determinism claims the fault-injection design makes:
#   1. same seed, same report — byte-identical across repeated runs;
#   2. thread-count independence — byte-identical at 1, 2, and 8 workers.
# Exits non-zero if any scenario fails or any pair of reports differs.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${CULPEO_BIN:-target/release/culpeo}
if [[ ! -x "$BIN" ]]; then
    echo "== building $BIN"
    cargo build --release -p culpeo-cli
fi

SEED=${CULPEO_CHAOS_SEED:-42}
WORK=$(mktemp -d)
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

echo "== culpeo chaos --seed $SEED (run 1, 2 threads)"
"$BIN" chaos --seed "$SEED" --threads 2 --format json >"$WORK/run1.json"

echo "== culpeo chaos --seed $SEED (run 2, 2 threads — must be byte-identical)"
"$BIN" chaos --seed "$SEED" --threads 2 --format json >"$WORK/run2.json"
if ! cmp -s "$WORK/run1.json" "$WORK/run2.json"; then
    echo "chaos: repeated runs differ for seed $SEED" >&2
    diff "$WORK/run1.json" "$WORK/run2.json" >&2 || true
    exit 1
fi

for THREADS in 1 8; do
    echo "== culpeo chaos --seed $SEED ($THREADS threads — must be byte-identical)"
    "$BIN" chaos --seed "$SEED" --threads "$THREADS" --format json >"$WORK/t$THREADS.json"
    if ! cmp -s "$WORK/run1.json" "$WORK/t$THREADS.json"; then
        echo "chaos: report differs at $THREADS threads" >&2
        diff "$WORK/run1.json" "$WORK/t$THREADS.json" >&2 || true
        exit 1
    fi
done

# CULPEO_THREADS must steer the default the same way --threads does.
echo "== CULPEO_THREADS=4 culpeo chaos --seed $SEED (env-steered)"
CULPEO_THREADS=4 "$BIN" chaos --seed "$SEED" --format json >"$WORK/env.json"
if ! cmp -s "$WORK/run1.json" "$WORK/env.json"; then
    echo "chaos: report differs under CULPEO_THREADS=4" >&2
    exit 1
fi

# Human table for the log, and the pass/fail verdict via exit code.
echo "== culpeo chaos --seed $SEED (human table)"
"$BIN" chaos --seed "$SEED" --threads 2

echo "chaos: deterministic and green (seed $SEED)"

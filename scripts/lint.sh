#!/usr/bin/env bash
# Static quality gate: clippy (deny warnings) + rustfmt check over the
# whole workspace, including benches, tests, and the vendored stubs.
# CI and pre-commit both call this; it must stay green.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --all -- --check"
cargo fmt --all -- --check

# Rendered API docs are part of the deliverable: broken intra-doc links
# and malformed doc comments fail the gate, not just the nightly build.
echo "== cargo doc --workspace --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo bench --workspace --no-run"
cargo bench --workspace --no-run

# The static verifier must prove the seed Capybara schedule: a regression
# here means either the interpreter lost precision or the reference plan
# stopped being provable — both block the gate.
echo "== culpeo verify examples/capybara_spec.json --plan examples/verified_plan.json"
BIN=${CULPEO_BIN:-target/release/culpeo}
if [[ ! -x "$BIN" ]]; then
    cargo build --release -p culpeo-cli
fi
VERIFY_OUT=$("$BIN" verify examples/capybara_spec.json --plan examples/verified_plan.json)
echo "$VERIFY_OUT"
if [[ "$VERIFY_OUT" != *"proved"* ]]; then
    echo "lint: the reference schedule is no longer statically proved" >&2
    exit 1
fi

# The event kernel is only allowed to exist because it is provably the
# same simulation: the kernel-equivalence proptests, the lanes bitwise
# identity suite, and the fig10 byte-identity tests gate here so a
# regression in any of them blocks the merge, not just the nightly run.
echo "== event-kernel equivalence + fig10 byte-identity gate"
cargo test -q -p culpeo-powersim --test event_equiv
cargo test -q -p culpeo-powersim --lib lanes::
cargo test -q -p culpeo-harness --test determinism

echo "== scripts/smoke_serve.sh"
scripts/smoke_serve.sh

echo "== scripts/loadtest.sh --smoke"
scripts/loadtest.sh --smoke

echo "== scripts/chaos.sh"
scripts/chaos.sh

echo "== scripts/race.sh"
scripts/race.sh

echo "== scripts/store.sh"
scripts/store.sh

echo "== scripts/wcec.sh"
scripts/wcec.sh

echo "lint: clean"

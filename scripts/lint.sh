#!/usr/bin/env bash
# Static quality gate: clippy (deny warnings) + rustfmt check over the
# whole workspace, including benches, tests, and the vendored stubs.
# CI and pre-commit both call this; it must stay green.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "== cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "== scripts/smoke_serve.sh"
scripts/smoke_serve.sh

echo "== scripts/chaos.sh"
scripts/chaos.sh

echo "lint: clean"

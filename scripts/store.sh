#!/usr/bin/env bash
# Durability gate: prove the telemetry store's two headline claims from
# the outside, with the real binary and a real filesystem:
#   1. determinism — two `culpeo store fill` runs of the same seed
#      produce byte-identical segment files (no wall-clock, pid, or
#      allocation order leaks into the log);
#   2. crash safety — tearing the log mid-frame (what a `kill -9`
#      leaves behind) is repaired by `store recover`, exactly once:
#      the acked prefix survives, `store stat` flips back to clean,
#      and a second recovery finds nothing to do.
# The in-process version of claim 2 (arbitrary crash offsets, proptest)
# runs in `cargo test -p culpeo-store`, which gates here too.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${CULPEO_BIN:-target/release/culpeo}
if [[ ! -x "$BIN" ]]; then
    echo "== building $BIN"
    cargo build --release -p culpeo-cli
fi

SEED=${CULPEO_STORE_SEED:-42}
RECORDS=${CULPEO_STORE_RECORDS:-64}
WORK=$(mktemp -d)
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

echo "== culpeo store fill x2 --seed $SEED (must be byte-identical)"
"$BIN" store fill "$WORK/a" --records "$RECORDS" --seed "$SEED"
"$BIN" store fill "$WORK/b" --records "$RECORDS" --seed "$SEED"
for seg in "$WORK"/a/seg-*.log; do
    twin="$WORK/b/$(basename "$seg")"
    if ! cmp -s "$seg" "$twin"; then
        echo "store: fill is not deterministic: $(basename "$seg") differs" >&2
        exit 1
    fi
done

echo "== tearing the log tail mid-frame (kill -9 residue)"
LAST=$(ls "$WORK"/a/seg-*.log | sort | tail -n 1)
LEN=$(wc -c <"$LAST")
truncate -s $((LEN - 11)) "$LAST"

if "$BIN" store stat "$WORK/a" >/dev/null; then
    echo "store: stat exited 0 on a torn log" >&2
    exit 1
fi

echo "== culpeo store recover (must repair the tear)"
"$BIN" store recover "$WORK/a"

echo "== culpeo store stat (must be clean again)"
"$BIN" store stat "$WORK/a"

# Idempotence: a second recovery finds nothing to truncate or
# quarantine.
AGAIN=$("$BIN" store recover "$WORK/a" --format json)
if [[ "$AGAIN" != *'"truncated_bytes":0'* ]]; then
    echo "store: recovery was not idempotent: $AGAIN" >&2
    exit 1
fi

# Usage errors must exit 2, not masquerade as verdicts.
if "$BIN" store frobnicate "$WORK/a" >/dev/null 2>&1; then
    echo "store: a usage error exited 0" >&2
    exit 1
fi

# The in-process batteries: torn-tail units + the arbitrary-crash-offset
# proptest ("recovery yields exactly the acked prefix, idempotent").
echo "== cargo test -q -p culpeo-store"
cargo test -q -p culpeo-store

echo "store: durable and deterministic (seed $SEED, $RECORDS records)"

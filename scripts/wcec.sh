#!/usr/bin/env bash
# WCEC gate: the static worst-case-energy analyzer's two public claims,
# proven from outside with the real binaries:
#   1. determinism — the wcec battery report (certificates + the
#      admission-gate scenario) is byte-identical at 1, 2, and 8
#      threads; a diff means wall-clock, thread ids, or map order leaked
#      into a certificate;
#   2. exit-code contract — `culpeo wcec` exits 0 when every task
#      certifies, 1 when any task is uncertifiable, 2 on usage errors.
# Exits non-zero if any battery case misses its pinned verdict, the
# admission gate loses a leg, or either claim breaks.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${CULPEO_BIN:-target/release/culpeo}
BATTERY=${CULPEO_WCEC_BATTERY:-target/release/wcec_battery}
if [[ ! -x "$BIN" ]]; then
    echo "== building $BIN"
    cargo build --release -p culpeo-cli
fi
if [[ ! -x "$BATTERY" ]]; then
    echo "== building $BATTERY"
    cargo build --release -p culpeo-bench --bin wcec_battery
fi

WORK=$(mktemp -d)
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

# The thread-independent projection of the battery artifact: everything
# except the telemetry block's wall-clock readings ("seconds",
# "total_seconds") and its thread count, which differs across
# CULPEO_THREADS by construction. Every certificate value, verdict, and
# admission number must survive byte-for-byte.
report() {
    grep -vE '"(seconds|total_seconds|threads)":' "$1"
}

# 1. Same-seed byte-identity of results/wcec_battery.json across thread
# counts. The battery exits non-zero on any missed pin, which trips
# `set -e` here.
for threads in 1 2 8; do
    echo "== wcec_battery (CULPEO_THREADS=$threads)"
    CULPEO_THREADS=$threads "$BATTERY" >/dev/null
    report results/wcec_battery.json >"$WORK/battery.$threads.json"
done
for threads in 2 8; do
    if ! cmp -s "$WORK/battery.1.json" "$WORK/battery.$threads.json"; then
        echo "wcec: battery report differs between 1 and $threads threads" >&2
        diff "$WORK/battery.1.json" "$WORK/battery.$threads.json" >&2 || true
        exit 1
    fi
done

# 2. CLI exit-code contract. All three Table III workloads certify …
echo "== culpeo wcec (all certified -> exit 0)"
"$BIN" wcec examples/capybara_spec.json --tasks examples/wcec_tasks.json

# … an unbounded loop is uncertifiable (exit 1, still a report) …
cat >"$WORK/spin.json" <<'EOF'
{
  "schema_version": 2,
  "tasks": [
    {
      "name": "spin",
      "root": 1,
      "nodes": [
        {
          "label": "poll",
          "kind": "block",
          "ops": [
            {
              "name": "poll",
              "energy_mj_lo": 0.05,
              "energy_mj_hi": 0.05,
              "time_ms_lo": 0.5,
              "time_ms_hi": 0.5,
              "peak_ma": 2.0
            }
          ]
        },
        { "label": "spin", "kind": "loop", "children": [0] }
      ]
    }
  ]
}
EOF
echo "== culpeo wcec (unbounded loop -> exit 1)"
set +e
"$BIN" wcec examples/capybara_spec.json --tasks "$WORK/spin.json" >"$WORK/spin.out"
code=$?
set -e
if [[ $code -ne 1 ]]; then
    echo "wcec: uncertifiable task exited $code, want 1" >&2
    cat "$WORK/spin.out" >&2
    exit 1
fi
if ! grep -q "unknown" "$WORK/spin.out"; then
    echo "wcec: uncertifiable task's report names no unknown row" >&2
    cat "$WORK/spin.out" >&2
    exit 1
fi

# … and usage errors exit 2, not masquerading as verdicts.
echo "== culpeo wcec (usage error -> exit 2)"
set +e
"$BIN" wcec examples/capybara_spec.json >/dev/null 2>&1
code=$?
set -e
if [[ $code -ne 2 ]]; then
    echo "wcec: a usage error exited $code, want 2" >&2
    exit 1
fi

echo "wcec: deterministic and green"
